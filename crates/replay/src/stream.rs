//! Streaming trace ingestion: event sources that feed the replay
//! engine one event at a time, so peak memory is bounded by the number
//! of *ranks*, not by the total number of events in the trace.
//!
//! The replay engine consumes events through the [`EventSource`]
//! abstraction — a per-rank peek/advance cursor. Three implementations
//! exist:
//!
//! * [`TraceSource`] — cursors over an in-memory [`Trace`] (the legacy
//!   path; [`crate::run_once`] wraps it);
//! * [`TraceReader`] — incremental JSON-lines parsing over any
//!   [`BufRead`], holding only the events read ahead of the engine's
//!   cursors (bounded for iteration-interleaved traces such as those
//!   the lazy generators write);
//! * [`crate::generate::GenSource`] — lazy synthetic generators that
//!   never materialize a trace at all.
//!
//! ## Stream grammar
//!
//! A streamed trace is the JSON-lines trace grammar of [`crate::trace`]
//! prefixed by one mandatory header line declaring the world size:
//!
//! ```text
//! {"ranks":4}
//! {"rank":0,"event":"compute","numa":0,"cores":4,"bytes":268435456}
//! ...
//! ```
//!
//! The header is required because a streaming reader cannot learn the
//! rank count by scanning the whole file first. [`Trace::from_json_lines`]
//! tolerates the same header, so streamed files remain valid eager
//! inputs.

use std::collections::VecDeque;
use std::io::BufRead;

use mc_json::{parse_lines, LineError, ParsedLines};

use crate::trace::{header_ranks, parse_event_line, EventKind, Trace, TraceError};

/// A per-rank cursor over an event program, the replay engine's input
/// abstraction. `peek` returns rank `r`'s next event without consuming
/// it (`None` once `r`'s program is exhausted); `advance` consumes it.
/// The engine always advances the event it last peeked, so sources need
/// only one event of lookahead per rank.
pub trait EventSource {
    /// Number of ranks in the world this source describes (≥ 2).
    fn ranks(&self) -> usize;

    /// The next event of `rank`'s program, or `None` when the program
    /// is exhausted. Streaming sources may fail here with a parse or
    /// I/O error attributed to the offending line.
    fn peek(&mut self, rank: usize) -> Result<Option<EventKind>, TraceError>;

    /// Consume the event last returned by [`peek`](EventSource::peek).
    fn advance(&mut self, rank: usize);
}

/// [`EventSource`] over an in-memory [`Trace`]: one integer cursor per
/// rank.
pub struct TraceSource<'a> {
    trace: &'a Trace,
    cursors: Vec<usize>,
}

impl<'a> TraceSource<'a> {
    /// Wrap a trace. The trace should already be
    /// [validated](Trace::validate).
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource {
            trace,
            cursors: vec![0; trace.ranks()],
        }
    }
}

impl EventSource for TraceSource<'_> {
    fn ranks(&self) -> usize {
        self.trace.ranks()
    }

    fn peek(&mut self, rank: usize) -> Result<Option<EventKind>, TraceError> {
        Ok(self.trace.events[rank].get(self.cursors[rank]).copied())
    }

    fn advance(&mut self, rank: usize) {
        self.cursors[rank] += 1;
    }
}

fn convert(e: LineError) -> TraceError {
    match e {
        LineError::Io { line, error } => TraceError::Io {
            line,
            message: error.to_string(),
        },
        LineError::Json { line, error } => TraceError::Json { line, error },
    }
}

/// Streaming [`EventSource`] over a JSON-lines trace on any [`BufRead`]
/// (a file, a pipe, a decompressor). Events are parsed line by line;
/// each rank has a compact queue holding only the events read ahead of
/// the engine's cursor for that rank. For iteration-interleaved traces
/// (what [`crate::generate::LazyGen::write_interleaved`] emits) the
/// read-ahead stays bounded by one iteration per rank; a rank-major
/// file still replays correctly but buffers up to the whole program of
/// later ranks — [`peak_buffered`](TraceReader::peak_buffered) reports
/// the high-water mark so tests and benches can assert boundedness.
pub struct TraceReader<R> {
    lines: ParsedLines<R>,
    ranks: usize,
    queues: Vec<VecDeque<EventKind>>,
    eof: bool,
    buffered: usize,
    peak_buffered: usize,
    events_seen: usize,
}

impl<R: BufRead> TraceReader<R> {
    /// Open a streamed trace: reads and checks the mandatory
    /// `{"ranks":N}` header line (comments and blank lines may precede
    /// it).
    pub fn new(reader: R) -> Result<Self, TraceError> {
        let mut lines = parse_lines(reader);
        let (line, v) = match lines.next() {
            None => return Err(TraceError::Empty),
            Some(r) => r.map_err(convert)?,
        };
        let ranks = header_ranks(&v).ok_or_else(|| TraceError::Schema {
            line,
            message: "streaming replay needs a {\"ranks\":N} header as the first line \
                      (regenerate the trace with --stream, or replay without --stream)"
                .into(),
        })?;
        if ranks < 2 {
            return Err(TraceError::TooFewRanks(ranks));
        }
        Ok(TraceReader {
            lines,
            ranks,
            queues: (0..ranks).map(|_| VecDeque::new()).collect(),
            eof: false,
            buffered: 0,
            peak_buffered: 0,
            events_seen: 0,
        })
    }

    /// High-water mark of events buffered ahead of the engine's cursors
    /// — the reader's memory footprint in events.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Total events parsed so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Read lines until `rank`'s queue is non-empty or the stream ends.
    fn fill(&mut self, rank: usize) -> Result<(), TraceError> {
        while self.queues[rank].is_empty() && !self.eof {
            let (line, v) = match self.lines.next() {
                None => {
                    self.eof = true;
                    return Ok(());
                }
                Some(r) => r.map_err(convert)?,
            };
            let (r, ev) = parse_event_line(&v, line)?;
            if r >= self.ranks {
                return Err(TraceError::Schema {
                    line,
                    message: format!("rank {r} outside the header's declared 0..{}", self.ranks),
                });
            }
            if let EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } = ev {
                if peer >= self.ranks {
                    return Err(TraceError::PeerOutOfRange {
                        rank: r,
                        peer,
                        ranks: self.ranks,
                    });
                }
            }
            self.queues[r].push_back(ev);
            self.events_seen += 1;
            self.buffered += 1;
            self.peak_buffered = self.peak_buffered.max(self.buffered);
        }
        Ok(())
    }
}

impl<R: BufRead> EventSource for TraceReader<R> {
    fn ranks(&self) -> usize {
        self.ranks
    }

    fn peek(&mut self, rank: usize) -> Result<Option<EventKind>, TraceError> {
        self.fill(rank)?;
        Ok(self.queues[rank].front().copied())
    }

    fn advance(&mut self, rank: usize) {
        if self.queues[rank].pop_front().is_some() {
            self.buffered -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, GenParams};

    fn drain_round_robin<S: EventSource>(src: &mut S) -> Vec<Vec<EventKind>> {
        let mut out = vec![Vec::new(); src.ranks()];
        loop {
            let mut any = false;
            for (r, events) in out.iter_mut().enumerate() {
                if let Some(ev) = src.peek(r).unwrap() {
                    events.push(ev);
                    src.advance(r);
                    any = true;
                }
            }
            if !any {
                return out;
            }
        }
    }

    #[test]
    fn trace_source_walks_the_trace() {
        let trace = generate::halo2d(&GenParams::default());
        let mut src = TraceSource::new(&trace);
        assert_eq!(src.ranks(), trace.ranks());
        assert_eq!(drain_round_robin(&mut src), trace.events);
        // Exhausted cursors stay exhausted.
        assert_eq!(src.peek(0).unwrap(), None);
    }

    #[test]
    fn trace_reader_streams_a_headered_file() {
        let trace = generate::pipeline(&GenParams {
            ranks: 3,
            iters: 2,
            ..GenParams::default()
        });
        let text = format!("{{\"ranks\":3}}\n{}", trace.to_json_lines());
        let mut src = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(src.ranks(), 3);
        assert_eq!(drain_round_robin(&mut src), trace.events);
        assert_eq!(src.events_seen(), trace.event_count());
    }

    #[test]
    fn trace_reader_requires_the_header() {
        let open = |bytes: &'static [u8]| TraceReader::new(bytes).map(|_| ()).unwrap_err();
        let e = open(b"{\"rank\":0,\"event\":\"wait\"}\n");
        assert!(matches!(e, TraceError::Schema { line: 1, .. }), "{e}");
        assert!(e.to_string().contains("header"), "{e}");
        assert_eq!(open(b""), TraceError::Empty);
        assert_eq!(open(b"{\"ranks\":1}\n"), TraceError::TooFewRanks(1));
    }

    #[test]
    fn trace_reader_validates_ranks_and_peers_per_line() {
        let text = "{\"ranks\":2}\n{\"rank\":5,\"event\":\"wait\"}\n";
        let mut src = TraceReader::new(text.as_bytes()).unwrap();
        let e = src.peek(0).unwrap_err();
        assert!(matches!(e, TraceError::Schema { line: 2, .. }), "{e}");

        let text =
            "{\"ranks\":2}\n{\"rank\":0,\"event\":\"send\",\"peer\":7,\"numa\":0,\"bytes\":1,\"tag\":0}\n";
        let mut src = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(
            src.peek(0).unwrap_err(),
            TraceError::PeerOutOfRange {
                rank: 0,
                peer: 7,
                ranks: 2
            }
        );
    }

    #[test]
    fn interleaved_input_keeps_readahead_bounded() {
        // An iteration-interleaved stream drained round-robin buffers at
        // most ~one iteration block per rank, regardless of iters.
        let p = GenParams {
            ranks: 8,
            iters: 50,
            ..GenParams::default()
        };
        let lazy = generate::LazyGen::new("halo2d", &p).unwrap();
        let mut bytes = Vec::new();
        lazy.write_interleaved(&mut bytes).unwrap();
        let mut src = TraceReader::new(&bytes[..]).unwrap();
        let events = drain_round_robin(&mut src);
        let total: usize = events.iter().map(Vec::len).sum();
        assert_eq!(total, lazy.event_count());
        // 50 iterations × 8 ranks × 10 events = 4000 events; round-robin
        // draining holds well under one full iteration of all ranks.
        assert!(
            src.peak_buffered() <= 8 * 10,
            "peak readahead {} should be bounded by one iteration",
            src.peak_buffered()
        );
    }
}
