//! Rendering a [`ReplayOutcome`] for humans: a byte-stable text report
//! (goldenable — every number formatted with fixed precision) and a
//! per-rank Gantt chart via `mc-viz`.

use mc_obs::{tags, Recorder, TagValue};
use mc_viz::{Gantt, GanttBar, GanttRow, COMM_COLOR, COMP_COLOR};

use crate::engine::{ReplayOutcome, KINDS};
use crate::search::SearchOutcome;

const WAIT_COLOR: &str = "#c7c7c7";

/// Render the replay report as deterministic text. Same outcome, same
/// bytes — suitable for golden-file comparison.
pub fn render(outcome: &ReplayOutcome, platform: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace replay — {} ranks, {} events on {}\n",
        outcome.ranks, outcome.events, platform
    ));
    out.push_str(&format!(
        "contended makespan : {:.6} s\n",
        outcome.contended.makespan
    ));
    out.push_str(&format!(
        "baseline makespan  : {:.6} s\n",
        outcome.baseline.makespan
    ));
    out.push_str(&format!("contention slowdown: {:.3}x\n", outcome.slowdown));
    out.push_str("busy seconds by event kind (contended | baseline):\n");
    for (i, kind) in KINDS.iter().enumerate() {
        if outcome.contended.busy[i] == 0.0 && outcome.baseline.busy[i] == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {kind:<10} {:>12.6} | {:>12.6}\n",
            outcome.contended.busy[i], outcome.baseline.busy[i]
        ));
    }
    out.push_str("rank timelines (contended):\n");
    for (rank, spans) in outcome.contended.timelines.iter().enumerate() {
        out.push_str(&format!("  rank {rank}:"));
        for s in spans {
            out.push_str(&format!(" [{} {:.6}..{:.6}]", s.kind, s.t0, s.t1));
        }
        out.push('\n');
    }
    let hidden = outcome.ranks - outcome.contended.timelines.len();
    if hidden > 0 {
        out.push_str(&format!(
            "  (+{hidden} more ranks folded into the busy totals above)\n"
        ));
    }
    out
}

/// Render the messaging-vs-message-free head-to-head as deterministic
/// text: the same trace replayed once per comm mode, compared against
/// the uncontended baseline. `messages` and `cxl` must come from the
/// same trace (the caller replays it twice). Same outcomes, same bytes.
pub fn render_head_to_head(
    messages: &ReplayOutcome,
    cxl: &ReplayOutcome,
    platform: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "comm-mode head-to-head — {} ranks, {} events on {}\n",
        messages.ranks, messages.events, platform
    ));
    out.push_str(&format!(
        "contended messaging    : {:.6} s  (slowdown {:.3}x)\n",
        messages.contended.makespan, messages.slowdown
    ));
    out.push_str(&format!(
        "contended message-free : {:.6} s  (slowdown {:.3}x)\n",
        cxl.contended.makespan, cxl.slowdown
    ));
    out.push_str(&format!(
        "uncontended baseline   : {:.6} s  (messaging, every stream alone)\n",
        messages.baseline.makespan
    ));
    if messages.contended.makespan > 0.0 {
        let ratio = cxl.contended.makespan / messages.contended.makespan;
        if ratio < 1.0 {
            out.push_str(&format!(
                "verdict: message-free wins — {:.3}x the messaging makespan\n",
                ratio
            ));
        } else {
            out.push_str(&format!(
                "verdict: messaging wins — message-free takes {:.3}x as long\n",
                ratio
            ));
        }
    }
    out.push_str("busy seconds by event kind (messaging | message-free):\n");
    for (i, kind) in KINDS.iter().enumerate() {
        if messages.contended.busy[i] == 0.0 && cxl.contended.busy[i] == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {kind:<10} {:>12.6} | {:>12.6}\n",
            messages.contended.busy[i], cxl.contended.busy[i]
        ));
    }
    out
}

/// A one-line summary of a placement search, best first, byte-stable.
pub fn render_search(search: &SearchOutcome) -> String {
    let mut out = String::new();
    out.push_str("placement search (best first):\n");
    for pt in &search.points {
        out.push_str(&format!(
            "  n={:<3} m_comp={} m_comm={}  makespan {:.6} s  slowdown {:.3}x\n",
            pt.n_cores, pt.m_comp, pt.m_comm, pt.makespan, pt.slowdown
        ));
    }
    out
}

/// Feed the contended per-rank timelines to a [`Recorder`] as spans:
/// one span per trace event, named after its kind (`compute`, `send`,
/// `recv`, `collective`, `wait`) and tagged `rank=N`. The chrome
/// exporter lays rank-tagged spans out on per-rank tracks, so a replay
/// opens in chrome://tracing / Perfetto as a real per-rank timeline
/// rather than one aggregate `replay` span.
///
/// Only ranks with stored timelines are recorded (see
/// [`crate::ReplayConfig::timeline_ranks`]); event times are already
/// deterministic simulation seconds, so the recorded spans are too.
pub fn record_timeline_spans(rec: &dyn Recorder, outcome: &ReplayOutcome) {
    for (rank, spans) in outcome.contended.timelines.iter().enumerate() {
        let rank_tags = [(tags::RANK, TagValue::U64(rank as u64))];
        for s in spans {
            rec.record_span(s.kind, &rank_tags, s.t0, (s.t1 - s.t0).max(0.0));
        }
    }
}

/// Maximum individual rank rows in a replay Gantt chart. A 4096-row
/// SVG is unreadable and enormous; past this many ranks the rest
/// collapse into a single aggregate busy band.
pub const GANTT_MAX_ROWS: usize = 64;

/// Build a per-rank Gantt chart of the contended timeline: compute
/// bars in the computation colour, communication (send/recv/
/// collective) in the communication colour, waits in grey.
///
/// Only the first [`GANTT_MAX_ROWS`] ranks get individual rows; the
/// remaining timelines are union-merged (waits excluded) into one
/// `busy band` row. Ranks replayed without stored timelines (see
/// [`crate::ReplayConfig::timeline_ranks`]) are noted in a final
/// bar-less row.
pub fn gantt(outcome: &ReplayOutcome, title: &str) -> Gantt {
    let timelines = &outcome.contended.timelines;
    let shown = timelines.len().min(GANTT_MAX_ROWS);
    let mut rows: Vec<GanttRow> = timelines[..shown]
        .iter()
        .enumerate()
        .map(|(rank, spans)| GanttRow {
            label: format!("rank {rank}"),
            bars: spans
                .iter()
                .map(|s| GanttBar {
                    t0: s.t0,
                    t1: s.t1,
                    color: match s.kind {
                        "compute" => COMP_COLOR.to_string(),
                        "wait" => WAIT_COLOR.to_string(),
                        _ => COMM_COLOR.to_string(),
                    },
                    label: s.kind.to_string(),
                })
                .collect(),
        })
        .collect();
    if timelines.len() > shown {
        let mut ivals: Vec<(f64, f64)> = timelines[shown..]
            .iter()
            .flatten()
            .filter(|s| s.kind != "wait")
            .map(|s| (s.t0, s.t1))
            .collect();
        ivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (t0, t1) in ivals {
            match merged.last_mut() {
                Some(last) if t0 <= last.1 => last.1 = last.1.max(t1),
                _ => merged.push((t0, t1)),
            }
        }
        rows.push(GanttRow {
            label: format!("ranks {shown}..{} (busy band)", timelines.len() - 1),
            bars: merged
                .into_iter()
                .map(|(t0, t1)| GanttBar {
                    t0,
                    t1,
                    color: COMP_COLOR.to_string(),
                    label: "busy".to_string(),
                })
                .collect(),
        });
    }
    if outcome.ranks > timelines.len() {
        rows.push(GanttRow {
            label: format!(
                "(+{} ranks without timelines)",
                outcome.ranks - timelines.len()
            ),
            bars: Vec::new(),
        });
    }
    Gantt {
        title: title.to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{replay, ReplayConfig};
    use crate::generate::{self, GenParams};
    use mc_topology::platforms;

    fn outcome() -> ReplayOutcome {
        let trace = generate::allreduce_step(&GenParams {
            ranks: 2,
            iters: 1,
            compute_bytes: 32 << 20,
            comm_bytes: 4 << 20,
            ..GenParams::default()
        });
        replay(&platforms::henri(), &trace, &ReplayConfig::default()).unwrap()
    }

    #[test]
    fn report_is_byte_stable() {
        let a = render(&outcome(), "henri");
        let b = render(&outcome(), "henri");
        assert_eq!(a, b);
        assert!(
            a.starts_with("trace replay — 2 ranks, 6 events on henri\n"),
            "{a}"
        );
        assert!(a.contains("contention slowdown:"), "{a}");
    }

    #[test]
    fn head_to_head_is_byte_stable_and_names_a_winner() {
        use mc_mpisim::CommMode;
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            cores: 17,
            compute_bytes: 512 << 20,
            comm_bytes: 32 << 20,
            ..GenParams::default()
        });
        let p = platforms::henri_cxl();
        let messages = replay(&p, &trace, &ReplayConfig::default()).unwrap();
        let cxl = replay(
            &p,
            &trace,
            &ReplayConfig {
                comm_mode: CommMode::Cxl,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        let a = render_head_to_head(&messages, &cxl, "henri-cxl");
        let b = render_head_to_head(&messages, &cxl, "henri-cxl");
        assert_eq!(a, b);
        assert!(a.starts_with("comm-mode head-to-head — 4 ranks,"), "{a}");
        assert!(a.contains("verdict: message-free wins"), "{a}");
        // The reversed comparison names the other winner.
        let flipped = render_head_to_head(&cxl, &messages, "henri-cxl");
        assert!(flipped.contains("verdict: messaging wins"), "{flipped}");
    }

    #[test]
    fn gantt_caps_rows_and_notes_missing_timelines() {
        use crate::engine::{EventSpan, ReplayRun};
        // 70 stored timelines out of 80 ranks: 64 rows + an aggregate
        // band for ranks 64..69 + a note for the 10 capped ranks.
        let span = |k: &'static str, t0: f64, t1: f64| EventSpan { kind: k, t0, t1 };
        let timelines: Vec<Vec<EventSpan>> = (0..70)
            .map(|r| {
                let off = r as f64 * 0.5;
                vec![
                    span("compute", off, off + 1.0),
                    span("wait", off + 1.0, off + 1.25),
                ]
            })
            .collect();
        let run = ReplayRun {
            makespan: 36.25,
            timelines,
            busy: [70.0, 0.0, 0.0, 0.0, 17.5],
        };
        let outcome = ReplayOutcome {
            ranks: 80,
            events: 140,
            contended: run.clone(),
            baseline: run,
            slowdown: 1.0,
        };
        let g = gantt(&outcome, "capped");
        assert_eq!(g.rows.len(), GANTT_MAX_ROWS + 2);
        let band = &g.rows[GANTT_MAX_ROWS];
        assert_eq!(band.label, "ranks 64..69 (busy band)");
        // Overlapping compute spans (0.5s stagger, 1s long) merge into
        // one interval; waits are excluded from the band.
        assert_eq!(band.bars.len(), 1);
        assert_eq!(
            g.rows[GANTT_MAX_ROWS + 1].label,
            "(+10 ranks without timelines)"
        );
        assert!(g.rows[GANTT_MAX_ROWS + 1].bars.is_empty());

        let text = render(&outcome, "henri");
        assert!(
            text.contains("(+10 more ranks folded into the busy totals above)"),
            "{text}"
        );
    }

    #[test]
    fn timeline_spans_bridge_records_per_rank_spans() {
        use mc_obs::Registry;
        let outcome = outcome();
        let reg = Registry::new();
        record_timeline_spans(&reg, &outcome);
        let snap = reg.snapshot();
        let expected: usize = outcome.contended.timelines.iter().map(Vec::len).sum();
        assert_eq!(snap.spans.len(), expected);
        // Every span carries its rank tag; both ranks appear.
        for rank in 0..outcome.contended.timelines.len() {
            let tag = ("rank".to_string(), rank.to_string());
            assert!(
                snap.spans.iter().any(|s| s.tags.contains(&tag)),
                "no span tagged rank={rank}"
            );
        }
        assert!(snap.spans.iter().any(|s| s.stage == "compute"));
        assert!(snap
            .spans
            .iter()
            .all(|s| s.duration_s >= 0.0 && !s.incomplete));
    }

    #[test]
    fn gantt_has_one_row_per_rank_and_colored_bars() {
        let g = gantt(&outcome(), "demo");
        assert_eq!(g.rows.len(), 2);
        let bars: Vec<_> = g.rows.iter().flat_map(|r| r.bars.iter()).collect();
        assert!(bars.iter().any(|b| b.color == COMP_COLOR));
        assert!(bars.iter().any(|b| b.color == COMM_COLOR));
        // Renders to SVG without panicking.
        let svg = g.render(800.0).render();
        assert!(
            svg.contains("<svg"),
            "not an svg: {}",
            &svg[..60.min(svg.len())]
        );
    }
}
