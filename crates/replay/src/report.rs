//! Rendering a [`ReplayOutcome`] for humans: a byte-stable text report
//! (goldenable — every number formatted with fixed precision) and a
//! per-rank Gantt chart via `mc-viz`.

use mc_viz::{Gantt, GanttBar, GanttRow, COMM_COLOR, COMP_COLOR};

use crate::engine::{ReplayOutcome, KINDS};
use crate::search::SearchOutcome;

const WAIT_COLOR: &str = "#c7c7c7";

/// Render the replay report as deterministic text. Same outcome, same
/// bytes — suitable for golden-file comparison.
pub fn render(outcome: &ReplayOutcome, platform: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace replay — {} ranks, {} events on {}\n",
        outcome.ranks, outcome.events, platform
    ));
    out.push_str(&format!(
        "contended makespan : {:.6} s\n",
        outcome.contended.makespan
    ));
    out.push_str(&format!(
        "baseline makespan  : {:.6} s\n",
        outcome.baseline.makespan
    ));
    out.push_str(&format!("contention slowdown: {:.3}x\n", outcome.slowdown));
    out.push_str("busy seconds by event kind (contended | baseline):\n");
    for (i, kind) in KINDS.iter().enumerate() {
        if outcome.contended.busy[i] == 0.0 && outcome.baseline.busy[i] == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {kind:<10} {:>12.6} | {:>12.6}\n",
            outcome.contended.busy[i], outcome.baseline.busy[i]
        ));
    }
    out.push_str("rank timelines (contended):\n");
    for (rank, spans) in outcome.contended.timelines.iter().enumerate() {
        out.push_str(&format!("  rank {rank}:"));
        for s in spans {
            out.push_str(&format!(" [{} {:.6}..{:.6}]", s.kind, s.t0, s.t1));
        }
        out.push('\n');
    }
    out
}

/// A one-line summary of a placement search, best first, byte-stable.
pub fn render_search(search: &SearchOutcome) -> String {
    let mut out = String::new();
    out.push_str("placement search (best first):\n");
    for pt in &search.points {
        out.push_str(&format!(
            "  n={:<3} m_comp={} m_comm={}  makespan {:.6} s  slowdown {:.3}x\n",
            pt.n_cores, pt.m_comp, pt.m_comm, pt.makespan, pt.slowdown
        ));
    }
    out
}

/// Build a per-rank Gantt chart of the contended timeline: compute
/// bars in the computation colour, communication (send/recv/
/// collective) in the communication colour, waits in grey.
pub fn gantt(outcome: &ReplayOutcome, title: &str) -> Gantt {
    let rows = outcome
        .contended
        .timelines
        .iter()
        .enumerate()
        .map(|(rank, spans)| GanttRow {
            label: format!("rank {rank}"),
            bars: spans
                .iter()
                .map(|s| GanttBar {
                    t0: s.t0,
                    t1: s.t1,
                    color: match s.kind {
                        "compute" => COMP_COLOR.to_string(),
                        "wait" => WAIT_COLOR.to_string(),
                        _ => COMM_COLOR.to_string(),
                    },
                    label: s.kind.to_string(),
                })
                .collect(),
        })
        .collect();
    Gantt {
        title: title.to_string(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{replay, ReplayConfig};
    use crate::generate::{self, GenParams};
    use mc_topology::platforms;

    fn outcome() -> ReplayOutcome {
        let trace = generate::allreduce_step(&GenParams {
            ranks: 2,
            iters: 1,
            compute_bytes: 32 << 20,
            comm_bytes: 4 << 20,
            ..GenParams::default()
        });
        replay(&platforms::henri(), &trace, &ReplayConfig::default()).unwrap()
    }

    #[test]
    fn report_is_byte_stable() {
        let a = render(&outcome(), "henri");
        let b = render(&outcome(), "henri");
        assert_eq!(a, b);
        assert!(
            a.starts_with("trace replay — 2 ranks, 6 events on henri\n"),
            "{a}"
        );
        assert!(a.contains("contention slowdown:"), "{a}");
    }

    #[test]
    fn gantt_has_one_row_per_rank_and_colored_bars() {
        let g = gantt(&outcome(), "demo");
        assert_eq!(g.rows.len(), 2);
        let bars: Vec<_> = g.rows.iter().flat_map(|r| r.bars.iter()).collect();
        assert!(bars.iter().any(|b| b.color == COMP_COLOR));
        assert!(bars.iter().any(|b| b.color == COMM_COLOR));
        // Renders to SVG without panicking.
        let svg = g.render(800.0).render();
        assert!(
            svg.contains("<svg"),
            "not an svg: {}",
            &svg[..60.min(svg.len())]
        );
    }
}
