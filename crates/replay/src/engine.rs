//! The replay engine: executes a [`Trace`] on
//! [`mc_mpisim::World::homogeneous`], co-simulating compute jobs and
//! message transfers through the shared memory fabric, and reports the
//! predicted makespan twice — once with contention, once against the
//! *uncontended baseline* where every stream gets the bandwidth it
//! would have alone. The ratio is the whole-program **contention
//! slowdown**.
//!
//! ## Execution model
//!
//! Each rank runs a cursor over its event program. `compute`, `send`
//! and `recv` post asynchronously; `wait` blocks the rank until
//! everything it posted has completed; `collective` blocks until every
//! rank reaches an identical collective, which then runs through the
//! simulator's point-to-point machinery (so concurrently running
//! compute jobs contend with it — the overlap the paper models). When
//! no rank can post, the world advances one simulated event at a time
//! ([`mc_mpisim::World::poll`]); if neither posting nor simulation can
//! progress the trace is declared stuck (a trace bug, reported as
//! invalid data).
//!
//! ## Memory
//!
//! The engine pulls events through the [`EventSource`] cursor
//! abstraction ([`run_source`]), so it never needs the whole trace in
//! memory: [`run_once`]/[`replay`] wrap an in-memory [`Trace`], while
//! [`replay_with`] replays any re-creatable source — a
//! [`crate::stream::TraceReader`] over a file, or a lazy generator —
//! twice (contended, then baseline). Completed requests and jobs are
//! forgotten as they are reaped and world histories are disabled, so
//! simulator state stays proportional to what is *in flight*, not to
//! the events already replayed. [`ReplayConfig::timeline_ranks`] caps
//! how many ranks keep full span timelines; capped ranks still
//! contribute to busy totals and the makespan.

use std::fmt;

use mc_model::ErrorCategory;
use mc_mpisim::collectives;
use mc_mpisim::{
    CommMode, JobId, MpiError, RequestId, RequestStatus, Tag, World, WorldSolverStats,
};
use mc_obs::{tags, TagValue};
use mc_topology::{NumaId, Platform};

use crate::stream::{EventSource, TraceSource};
use crate::trace::{CollectiveOp, EventKind, Trace, TraceError};

/// The event-kind labels, in the fixed order used by reports and
/// metrics.
pub const KINDS: [&str; 5] = ["compute", "send", "recv", "collective", "wait"];

/// Placement and sizing overrides applied while replaying.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Re-home every compute phase's data to this NUMA node.
    pub comp_numa: Option<NumaId>,
    /// Re-home every communication buffer to this NUMA node.
    pub comm_numa: Option<NumaId>,
    /// Replace every compute phase's core count (total bytes are
    /// preserved, split across the new count).
    pub cores: Option<usize>,
    /// Keep full per-rank span timelines only for ranks below this
    /// index (`None` keeps every rank, the default). Capped ranks fold
    /// their spans into the busy totals and makespan as they complete —
    /// essential at thousands of ranks, where storing every span would
    /// defeat the streaming path's bounded memory.
    pub timeline_ranks: Option<usize>,
    /// How matched sends/receives move their payload: classic NIC
    /// messaging (the default) or message-free through the platform's
    /// CXL.mem pool (see [`mc_mpisim::World::set_comm_mode`]).
    pub comm_mode: CommMode,
}

/// One completed interval of one rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpan {
    /// Event kind (`compute`, `send`, `recv`, `collective`, `wait`).
    pub kind: &'static str,
    /// Start time, seconds.
    pub t0: f64,
    /// End time, seconds.
    pub t1: f64,
}

/// The result of replaying a trace once (contended or baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRun {
    /// Time the last event completed, seconds.
    pub makespan: f64,
    /// Per-rank timelines, each sorted by start time.
    pub timelines: Vec<Vec<EventSpan>>,
    /// Total busy seconds per event kind, in [`KINDS`] order.
    pub busy: [f64; 5],
}

/// A contended run, its uncontended baseline, and the slowdown between
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Number of ranks the trace defines.
    pub ranks: usize,
    /// Total number of trace events replayed.
    pub events: usize,
    /// The run with memory contention simulated.
    pub contended: ReplayRun,
    /// The run with every stream at its alone bandwidth.
    pub baseline: ReplayRun,
    /// `contended.makespan / baseline.makespan` (≥ 1 whenever streams
    /// ever share a fabric).
    pub slowdown: f64,
}

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The trace itself is invalid.
    Trace(TraceError),
    /// The simulator rejected an operation (deadlock, truncation, …).
    Mpi(MpiError),
    /// An event names a NUMA node the platform does not have.
    NumaOutOfRange {
        /// The offending node.
        numa: NumaId,
        /// Nodes the platform has.
        count: usize,
    },
    /// Ranks reached collectives that do not agree (or one rank's trace
    /// ended while others are inside a collective).
    CollectiveMismatch {
        /// Simulation time of the mismatch.
        time: f64,
        /// Human-readable detail.
        detail: String,
    },
    /// No rank can post and the simulator has no pending event — the
    /// trace deadlocks (e.g. a `recv` whose `send` never comes).
    Stuck {
        /// Simulation time at which progress stopped.
        time: f64,
    },
}

impl ReplayError {
    /// Coarse failure class: every replay failure is invalid input data
    /// (the CLI maps this to exit code 3).
    pub fn category(&self) -> ErrorCategory {
        ErrorCategory::InvalidData
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "{e}"),
            ReplayError::Mpi(e) => write!(f, "simulation error: {e}"),
            ReplayError::NumaOutOfRange { numa, count } => {
                write!(f, "trace uses {numa}, but the platform has {count} node(s)")
            }
            ReplayError::CollectiveMismatch { time, detail } => {
                write!(f, "collective mismatch at t={time:.6}s: {detail}")
            }
            ReplayError::Stuck { time } => {
                write!(
                    f,
                    "trace makes no progress at t={time:.6}s (deadlocked trace?)"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<MpiError> for ReplayError {
    fn from(e: MpiError) -> Self {
        ReplayError::Mpi(e)
    }
}

fn kind_index(kind: &str) -> usize {
    KINDS.iter().position(|k| *k == kind).expect("known kind")
}

/// What a rank is blocked on.
enum Blocked {
    Wait {
        since: f64,
    },
    Collective {
        since: f64,
        op: CollectiveOp,
        numa: NumaId,
        bytes: u64,
    },
}

/// One rank's replay state.
struct RankState {
    /// The rank's event source is exhausted.
    done: bool,
    blocked: Option<Blocked>,
    /// Posted, not yet reaped: (request, kind, post time).
    reqs: Vec<(RequestId, &'static str, f64)>,
    /// Started, not yet reaped: (job, start time).
    jobs: Vec<(JobId, f64)>,
    spans: Vec<EventSpan>,
    /// `false` when capped out of [`ReplayConfig::timeline_ranks`]:
    /// spans are folded into the accumulators below instead of stored.
    keep_spans: bool,
    busy_acc: [f64; 5],
    end_acc: f64,
}

impl RankState {
    fn new(keep_spans: bool) -> RankState {
        RankState {
            done: false,
            blocked: None,
            reqs: Vec::new(),
            jobs: Vec::new(),
            spans: Vec::new(),
            keep_spans,
            busy_acc: [0.0; 5],
            end_acc: 0.0,
        }
    }

    fn push_span(&mut self, kind: &'static str, t0: f64, t1: f64) {
        if self.keep_spans {
            self.spans.push(EventSpan { kind, t0, t1 });
        } else {
            self.busy_acc[kind_index(kind)] += t1 - t0;
            self.end_acc = self.end_acc.max(t1);
        }
    }
}

fn check_numa(numa: NumaId, count: usize) -> Result<NumaId, ReplayError> {
    if numa.index() < count {
        Ok(numa)
    } else {
        Err(ReplayError::NumaOutOfRange { numa, count })
    }
}

/// Are all of the rank's outstanding point-to-point requests complete?
/// (Compute jobs are allowed to keep running across a collective.)
fn reqs_done(world: &World, st: &RankState) -> Result<bool, ReplayError> {
    for (req, _, _) in &st.reqs {
        match world.status(*req)? {
            RequestStatus::Complete(_) => {}
            RequestStatus::Truncated => return Err(MpiError::Truncated(*req).into()),
            _ => return Ok(false),
        }
    }
    Ok(true)
}

/// Reap every outstanding request and job of `st` into spans; returns
/// the latest completion time (or `floor` if nothing was outstanding).
/// Reaped entities are forgotten so the world's bookkeeping stays
/// bounded by in-flight work.
fn reap(world: &mut World, st: &mut RankState, floor: f64) -> Result<f64, ReplayError> {
    let mut end = floor;
    for (req, kind, posted) in std::mem::take(&mut st.reqs) {
        let t = match world.status(req)? {
            RequestStatus::Complete(t) => t,
            RequestStatus::Truncated => return Err(MpiError::Truncated(req).into()),
            _ => unreachable!("reap called before completion"),
        };
        world.forget_request(req);
        st.push_span(kind, posted, t);
        end = end.max(t);
    }
    for (job, started) in std::mem::take(&mut st.jobs) {
        let t = world
            .job_status(job)?
            .expect("reap called before job completion");
        world.forget_job(job);
        st.push_span("compute", started, t);
        end = end.max(t);
    }
    Ok(end)
}

/// Post events for every unblocked rank and clear satisfied waits.
/// Returns whether anything changed. Consumed events are tallied per
/// kind into `counts` (in [`KINDS`] order).
fn pump<S: EventSource>(
    world: &mut World,
    src: &mut S,
    config: &ReplayConfig,
    states: &mut [RankState],
    numa_count: usize,
    counts: &mut [u64; 5],
) -> Result<bool, ReplayError> {
    let mut progressed = false;
    for (rank, st) in states.iter_mut().enumerate() {
        loop {
            match &st.blocked {
                Some(Blocked::Wait { since }) => {
                    let since = *since;
                    let all_reqs = reqs_done(world, st)?;
                    let all_jobs = st
                        .jobs
                        .iter()
                        .map(|(job, _)| world.job_status(*job).map(|s| s.is_some()))
                        .collect::<Result<Vec<_>, _>>()?
                        .into_iter()
                        .all(|done| done);
                    if !(all_reqs && all_jobs) {
                        break;
                    }
                    let end = reap(world, st, since)?;
                    st.push_span("wait", since, end);
                    st.blocked = None;
                    progressed = true;
                }
                Some(Blocked::Collective { .. }) => break,
                None => {}
            }
            if st.done {
                break;
            }
            let Some(ev) = src.peek(rank)? else {
                st.done = true;
                break;
            };
            let now = world.now();
            match ev {
                EventKind::Compute { numa, cores, bytes } => {
                    let numa = check_numa(config.comp_numa.unwrap_or(numa), numa_count)?;
                    let cores = config.cores.unwrap_or(cores).max(1);
                    let per_core = bytes.div_ceil(cores as u64);
                    let job = world.start_compute(rank, numa, cores, per_core)?;
                    st.jobs.push((job, now));
                }
                EventKind::Send {
                    peer,
                    numa,
                    bytes,
                    tag,
                } => {
                    let numa = check_numa(config.comm_numa.unwrap_or(numa), numa_count)?;
                    let req = world.isend(rank, peer, numa, bytes, Tag(tag))?;
                    st.reqs.push((req, "send", now));
                }
                EventKind::Recv {
                    peer,
                    numa,
                    bytes,
                    tag,
                } => {
                    let numa = check_numa(config.comm_numa.unwrap_or(numa), numa_count)?;
                    let req = world.irecv(rank, peer, numa, bytes, Tag(tag))?;
                    st.reqs.push((req, "recv", now));
                }
                EventKind::Collective { op, numa, bytes } => {
                    let numa = check_numa(config.comm_numa.unwrap_or(numa), numa_count)?;
                    st.blocked = Some(Blocked::Collective {
                        since: now,
                        op,
                        numa,
                        bytes,
                    });
                }
                EventKind::Wait => {
                    st.blocked = Some(Blocked::Wait { since: now });
                }
            }
            src.advance(rank);
            counts[kind_index(ev.kind_name())] += 1;
            progressed = true;
        }
    }
    Ok(progressed)
}

/// If every rank still executing its trace has arrived at an identical
/// collective (outstanding point-to-point requests drained), run it.
/// Returns whether a collective ran.
fn try_collective(world: &mut World, states: &mut [RankState]) -> Result<bool, ReplayError> {
    let mut spec: Option<(CollectiveOp, NumaId, u64)> = None;
    let mut arrivals = 0usize;
    let mut finished = 0usize;
    for (rank, st) in states.iter().enumerate() {
        match &st.blocked {
            Some(Blocked::Collective {
                op, numa, bytes, ..
            }) => {
                if !reqs_done(world, st)? {
                    return Ok(false);
                }
                let this = (*op, *numa, *bytes);
                match spec {
                    None => spec = Some(this),
                    Some(prev) if prev == this => {}
                    Some(prev) => {
                        return Err(ReplayError::CollectiveMismatch {
                            time: world.now(),
                            detail: format!(
                                "rank {rank} calls {} on {} ({} bytes) while another rank \
                                 calls {} on {} ({} bytes)",
                                this.0.name(),
                                this.1,
                                this.2,
                                prev.0.name(),
                                prev.1,
                                prev.2
                            ),
                        })
                    }
                }
                arrivals += 1;
            }
            Some(Blocked::Wait { .. }) => return Ok(false),
            None => {
                if st.done {
                    finished += 1;
                } else {
                    return Ok(false);
                }
            }
        }
    }
    let Some((op, numa, bytes)) = spec else {
        return Ok(false);
    };
    if finished > 0 {
        return Err(ReplayError::CollectiveMismatch {
            time: world.now(),
            detail: format!(
                "{arrivals} of {} ranks call {}, the rest already finished their trace",
                states.len(),
                op.name()
            ),
        });
    }
    let t_end = match op {
        CollectiveOp::Barrier => collectives::barrier(world, numa)?,
        CollectiveOp::Allreduce => collectives::allreduce_ring(world, numa, bytes)?,
        CollectiveOp::Allgather => collectives::allgather_ring(world, numa, bytes)?,
        CollectiveOp::Broadcast => collectives::broadcast(world, 0, numa, bytes)?,
    };
    for st in states.iter_mut() {
        if let Some(Blocked::Collective { since, .. }) = st.blocked.take() {
            st.push_span("collective", since, t_end);
        }
    }
    Ok(true)
}

/// One [`run_source`] result: the run plus the events consumed per
/// kind.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRun {
    /// The completed run.
    pub run: ReplayRun,
    /// Events consumed per kind, in [`KINDS`] order.
    pub counts: [u64; 5],
    /// Solver work the world performed: what a from-scratch
    /// implementation would have solved ([`WorldSolverStats::node_steps`])
    /// versus the full solves the delta path actually ran.
    pub solver: WorldSolverStats,
}

impl SourceRun {
    /// Total events consumed.
    pub fn events(&self) -> usize {
        self.counts.iter().sum::<u64>() as usize
    }
}

/// Replay any [`EventSource`] once on a fresh world — the engine's
/// core. `contended` selects the real simulation or the uncontended
/// baseline (see [`mc_mpisim::World::set_contended`]). Memory stays
/// bounded by in-flight work: histories are off, reaped entities are
/// forgotten, and ranks past [`ReplayConfig::timeline_ranks`] fold
/// their spans into totals instead of storing them.
pub fn run_source<S: EventSource>(
    platform: &Platform,
    src: &mut S,
    config: &ReplayConfig,
    contended: bool,
) -> Result<SourceRun, ReplayError> {
    let ranks = src.ranks();
    if ranks < 2 {
        return Err(TraceError::TooFewRanks(ranks).into());
    }
    let numa_count = platform.topology.numa_count();
    let mut world = World::homogeneous(platform, ranks);
    world.set_comm_mode(config.comm_mode)?;
    world.set_contended(contended);
    world.set_record_history(false);
    let keep = config.timeline_ranks.unwrap_or(usize::MAX);
    let mut states: Vec<RankState> = (0..ranks).map(|r| RankState::new(r < keep)).collect();
    let mut counts = [0u64; 5];

    loop {
        let progressed = pump(
            &mut world,
            src,
            config,
            &mut states,
            numa_count,
            &mut counts,
        )?;
        let all_done = states.iter().all(|st| st.done && st.blocked.is_none());
        if all_done {
            break;
        }
        if try_collective(&mut world, &mut states)? {
            continue;
        }
        if progressed {
            continue;
        }
        if !world.poll() {
            return Err(ReplayError::Stuck { time: world.now() });
        }
    }

    // Final drain: a trace may end with operations still in flight.
    for st in &mut states {
        for (req, kind, posted) in std::mem::take(&mut st.reqs) {
            let t = world.wait(req)?;
            world.forget_request(req);
            st.push_span(kind, posted, t);
        }
        for (job, started) in std::mem::take(&mut st.jobs) {
            let t = world.wait_job(job)?;
            world.forget_job(job);
            st.push_span("compute", started, t);
        }
    }

    let mut makespan = 0.0f64;
    let mut busy = [0.0f64; 5];
    let mut timelines = Vec::new();
    for st in states {
        if st.keep_spans {
            let mut spans = st.spans;
            spans.sort_by(|a, b| {
                a.t0.total_cmp(&b.t0)
                    .then(a.t1.total_cmp(&b.t1))
                    .then(kind_index(a.kind).cmp(&kind_index(b.kind)))
            });
            for s in &spans {
                makespan = makespan.max(s.t1);
                busy[kind_index(s.kind)] += s.t1 - s.t0;
            }
            timelines.push(spans);
        } else {
            makespan = makespan.max(st.end_acc);
            for (total, acc) in busy.iter_mut().zip(st.busy_acc) {
                *total += acc;
            }
        }
    }
    Ok(SourceRun {
        run: ReplayRun {
            makespan,
            timelines,
            busy,
        },
        counts,
        solver: world.solver_stats(),
    })
}

/// Replay `trace` once on a fresh world. `contended` selects the real
/// simulation or the uncontended baseline (see
/// [`mc_mpisim::World::set_contended`]).
pub fn run_once(
    platform: &Platform,
    trace: &Trace,
    config: &ReplayConfig,
    contended: bool,
) -> Result<ReplayRun, ReplayError> {
    trace.validate()?;
    let mut src = TraceSource::new(trace);
    Ok(run_source(platform, &mut src, config, contended)?.run)
}

/// Replay a re-creatable [`EventSource`] twice — contended, then
/// uncontended baseline — and report the whole-program slowdown.
/// `make_source` is called once per pass (a streamed file is re-opened,
/// a lazy generator re-wound), so no pass ever needs the whole trace in
/// memory. Emits the same `replay.*` telemetry as [`replay`], plus
/// `replay.peak_rss_kb` where the platform exposes it.
pub fn replay_with<S, F>(
    platform: &Platform,
    mut make_source: F,
    config: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError>
where
    S: EventSource,
    F: FnMut() -> Result<S, ReplayError>,
{
    let mut src = make_source()?;
    let ranks = src.ranks();
    let _span = mc_obs::span(
        "replay",
        &[
            (tags::PLATFORM, TagValue::Str(platform.name())),
            (tags::RANKS, TagValue::U64(ranks as u64)),
        ],
    );
    let contended = run_source(platform, &mut src, config, true)?;
    drop(src);
    let mut src = make_source()?;
    if src.ranks() != ranks {
        return Err(ReplayError::Trace(TraceError::Schema {
            line: 1,
            message: format!(
                "source changed between passes: {ranks} ranks, then {}",
                src.ranks()
            ),
        }));
    }
    let baseline = run_source(platform, &mut src, config, false)?;
    let slowdown = if baseline.run.makespan > 0.0 {
        contended.run.makespan / baseline.run.makespan
    } else {
        1.0
    };
    if let Some(rec) = mc_obs::recorder() {
        rec.add("replay.ranks", &[], ranks as u64);
        for (kind, count) in KINDS.iter().zip(contended.counts) {
            if count > 0 {
                rec.add(
                    "replay.events",
                    &[(tags::EVENT, TagValue::Str(kind))],
                    count,
                );
            }
        }
        rec.observe(
            "replay.makespan_seconds",
            &[(tags::PLATFORM, TagValue::Str(platform.name()))],
            contended.run.makespan,
        );
        for (kind, total) in KINDS.iter().zip(contended.run.busy) {
            if total > 0.0 {
                rec.observe(
                    "replay.event_seconds",
                    &[(tags::EVENT, TagValue::Str(kind))],
                    total,
                );
            }
        }
        if let Some(kb) = mc_obs::peak_rss_kb() {
            rec.add("replay.peak_rss_kb", &[], kb);
        }
    }
    Ok(ReplayOutcome {
        ranks,
        events: contended.events(),
        contended: contended.run,
        baseline: baseline.run,
        slowdown,
    })
}

/// Replay `trace` twice — contended, then uncontended baseline — and
/// report the whole-program slowdown. Emits a `replay` span plus
/// `replay.*` counters and histograms when a metrics recorder is
/// installed.
pub fn replay(
    platform: &Platform,
    trace: &Trace,
    config: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    trace.validate()?;
    replay_with(platform, || Ok(TraceSource::new(trace)), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{self, GenParams};
    use mc_topology::platforms;

    fn n(i: u16) -> NumaId {
        NumaId::new(i)
    }

    fn cfg() -> ReplayConfig {
        ReplayConfig::default()
    }

    #[test]
    fn replays_every_generated_pattern() {
        let p = platforms::henri();
        for name in generate::names() {
            let trace = generate::by_name(
                name,
                &GenParams {
                    ranks: 4,
                    iters: 2,
                    compute_bytes: 64 << 20,
                    comm_bytes: 4 << 20,
                    ..GenParams::default()
                },
            )
            .unwrap();
            let out = replay(&p, &trace, &cfg()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.contended.makespan > 0.0, "{name}");
            // Allow a 1-ULP-scale accumulation difference between the
            // two runs: contention can never genuinely speed a program
            // up, but the two solve paths sum in different orders.
            assert!(
                out.contended.makespan >= out.baseline.makespan * (1.0 - 1e-9),
                "{name}: contention cannot speed a program up"
            );
            assert!(out.slowdown >= 1.0 - 1e-9, "{name}");
            assert_eq!(out.ranks, 4);
            assert_eq!(out.contended.timelines.len(), 4);
        }
    }

    #[test]
    fn overlap_makes_contended_strictly_slower() {
        // Same-node compute and communication: the halo exchange must
        // contend with the 8-core stream on numa 0.
        let p = platforms::henri();
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 2,
            cores: 8,
            compute_bytes: 512 << 20,
            comm_bytes: 32 << 20,
            comp_numa: n(0),
            comm_numa: n(0),
        });
        let out = replay(&p, &trace, &cfg()).unwrap();
        assert!(
            out.slowdown > 1.01,
            "expected visible contention, slowdown={}",
            out.slowdown
        );
    }

    #[test]
    fn replay_is_deterministic_bit_for_bit() {
        let p = platforms::henri();
        let trace = generate::allreduce_step(&GenParams {
            ranks: 4,
            ..GenParams::default()
        });
        let a = replay(&p, &trace, &cfg()).unwrap();
        let b = replay(&p, &trace, &cfg()).unwrap();
        assert_eq!(
            a.contended.makespan.to_bits(),
            b.contended.makespan.to_bits()
        );
        assert_eq!(a.contended.timelines, b.contended.timelines);
        assert_eq!(a.baseline.timelines, b.baseline.timelines);
    }

    #[test]
    fn timelines_are_monotone_and_within_makespan() {
        let p = platforms::henri();
        let trace = generate::pipeline(&GenParams {
            ranks: 3,
            iters: 3,
            ..GenParams::default()
        });
        let out = replay(&p, &trace, &cfg()).unwrap();
        for spans in &out.contended.timelines {
            for s in spans {
                assert!(s.t1 >= s.t0, "{s:?}");
                assert!(s.t1 <= out.contended.makespan + 1e-12);
            }
            for w in spans.windows(2) {
                assert!(w[1].t0 >= w[0].t0);
            }
        }
    }

    #[test]
    fn numa_override_moves_the_traffic() {
        let p = platforms::henri();
        // 12 cores is past henri's contention threshold: DMA into the
        // compute node's memory is throttled, DMA into the other node
        // less so — so re-homing the buffers must change the timeline.
        let base = GenParams {
            ranks: 4,
            cores: 12,
            compute_bytes: 512 << 20,
            comm_bytes: 32 << 20,
            comp_numa: n(0),
            comm_numa: n(0),
            ..GenParams::default()
        };
        let trace = generate::halo2d(&base);
        let same = replay(&p, &trace, &cfg()).unwrap();
        let split = replay(
            &p,
            &trace,
            &ReplayConfig {
                comm_numa: Some(n(1)),
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        // Same trace, different placement, different prediction.
        assert_ne!(
            same.contended.makespan.to_bits(),
            split.contended.makespan.to_bits()
        );
    }

    #[test]
    fn numa_out_of_range_is_reported() {
        let p = platforms::henri(); // 2 NUMA nodes
        let trace = generate::halo2d(&GenParams {
            comp_numa: n(7),
            ..GenParams::default()
        });
        match replay(&p, &trace, &cfg()) {
            Err(ReplayError::NumaOutOfRange { numa, count: 2 }) => {
                assert_eq!(numa, n(7));
            }
            other => panic!("expected NumaOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_collectives_are_detected() {
        use crate::trace::{CollectiveOp, EventKind};
        let trace = Trace {
            events: vec![
                vec![EventKind::Collective {
                    op: CollectiveOp::Barrier,
                    numa: n(0),
                    bytes: 0,
                }],
                vec![EventKind::Collective {
                    op: CollectiveOp::Allreduce,
                    numa: n(0),
                    bytes: 1024,
                }],
            ],
        };
        match replay(&platforms::henri(), &trace, &cfg()) {
            Err(ReplayError::CollectiveMismatch { .. }) => {}
            other => panic!("expected CollectiveMismatch, got {other:?}"),
        }
    }

    #[test]
    fn a_rank_that_quits_early_fails_the_collective() {
        use crate::trace::{CollectiveOp, EventKind};
        let trace = Trace {
            events: vec![
                vec![EventKind::Collective {
                    op: CollectiveOp::Barrier,
                    numa: n(0),
                    bytes: 0,
                }],
                vec![],
            ],
        };
        match replay(&platforms::henri(), &trace, &cfg()) {
            Err(ReplayError::CollectiveMismatch { detail, .. }) => {
                assert!(detail.contains("finished"), "{detail}");
            }
            other => panic!("expected CollectiveMismatch, got {other:?}"),
        }
    }

    #[test]
    fn an_unanswered_recv_is_stuck_not_hung() {
        use crate::trace::EventKind;
        let trace = Trace {
            events: vec![
                vec![
                    EventKind::Recv {
                        peer: 1,
                        numa: n(0),
                        bytes: 1024,
                        tag: 5,
                    },
                    EventKind::Wait,
                ],
                vec![],
            ],
        };
        match replay(&platforms::henri(), &trace, &cfg()) {
            Err(ReplayError::Stuck { .. }) => {}
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn cxl_mode_needs_a_platform_with_a_pool() {
        let trace = generate::halo2d(&GenParams::default());
        let config = ReplayConfig {
            comm_mode: CommMode::Cxl,
            ..ReplayConfig::default()
        };
        match replay(&platforms::henri(), &trace, &config) {
            Err(ReplayError::Mpi(MpiError::NoCxlPool(name))) => assert_eq!(name, "henri"),
            other => panic!("expected NoCxlPool, got {other:?}"),
        }
    }

    #[test]
    fn cxl_mode_wins_the_contended_halo_exchange() {
        // Heavy compute overlapping the halo exchange on the same node:
        // the NIC is floored, the CXL pool streams are not.
        let p = platforms::henri_cxl();
        let params = GenParams {
            ranks: 4,
            iters: 2,
            cores: 17,
            compute_bytes: 1 << 30,
            comm_bytes: 64 << 20,
            comp_numa: n(0),
            comm_numa: n(0),
        };
        let trace = generate::halo2d(&params);
        let messages = replay(&p, &trace, &cfg()).unwrap();
        let cxl = replay(
            &p,
            &trace,
            &ReplayConfig {
                comm_mode: CommMode::Cxl,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert!(
            cxl.contended.makespan < messages.contended.makespan,
            "cxl {} vs messages {}",
            cxl.contended.makespan,
            messages.contended.makespan
        );
        // Both modes still report a genuine contention slowdown.
        assert!(messages.slowdown >= 1.0 - 1e-9);
        assert!(cxl.slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn messaging_wins_the_uncontended_exchange() {
        // A lone pairwise message with no overlapping compute: the NIC
        // wire (≈ 11.3 GB/s) beats the 6 GB/s pool stream — the other
        // side of the crossover.
        use crate::trace::EventKind;
        let p = platforms::henri_cxl();
        let trace = Trace {
            events: vec![
                vec![
                    EventKind::Recv {
                        peer: 1,
                        numa: n(0),
                        bytes: 64 << 20,
                        tag: 0,
                    },
                    EventKind::Wait,
                ],
                vec![
                    EventKind::Send {
                        peer: 0,
                        numa: n(0),
                        bytes: 64 << 20,
                        tag: 0,
                    },
                    EventKind::Wait,
                ],
            ],
        };
        let messages = replay(&p, &trace, &cfg()).unwrap();
        let cxl = replay(
            &p,
            &trace,
            &ReplayConfig {
                comm_mode: CommMode::Cxl,
                ..ReplayConfig::default()
            },
        )
        .unwrap();
        assert!(
            messages.contended.makespan * 1.5 < cxl.contended.makespan,
            "messages {} vs cxl {}",
            messages.contended.makespan,
            cxl.contended.makespan
        );
    }

    #[test]
    fn busy_seconds_account_for_each_kind() {
        let p = platforms::henri();
        let trace = generate::allreduce_step(&GenParams {
            ranks: 4,
            iters: 1,
            ..GenParams::default()
        });
        let out = replay(&p, &trace, &cfg()).unwrap();
        let busy = out.contended.busy;
        assert!(busy[kind_index("compute")] > 0.0);
        assert!(busy[kind_index("collective")] > 0.0);
        assert!(busy[kind_index("wait")] >= 0.0);
        // No point-to-point events in this pattern.
        assert_eq!(busy[kind_index("send")], 0.0);
        assert_eq!(busy[kind_index("recv")], 0.0);
    }
}
