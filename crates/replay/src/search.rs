//! Placement search: replay the same trace under every `(n, m_comp,
//! m_comm)` override and rank the configurations by predicted
//! contended makespan — the replay-level analogue of the model's
//! placement advisor, cross-checkable against it.

use mc_model::{recommend, ContentionModel, PhaseProfile, Recommendation};
use mc_topology::{NumaId, Platform};

use crate::engine::{replay, ReplayConfig, ReplayError};
use crate::trace::{EventKind, Trace};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchPoint {
    /// Cores per compute phase.
    pub n_cores: usize,
    /// NUMA node computation data was re-homed to.
    pub m_comp: NumaId,
    /// NUMA node communication buffers were re-homed to.
    pub m_comm: NumaId,
    /// Predicted contended makespan, seconds.
    pub makespan: f64,
    /// Contention slowdown of this configuration.
    pub slowdown: f64,
}

/// Every configuration tried, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Points sorted by `(makespan, n_cores, m_comp, m_comm)`; the
    /// first entry is the winner.
    pub points: Vec<SearchPoint>,
}

impl SearchOutcome {
    /// The winning configuration.
    pub fn winner(&self) -> &SearchPoint {
        &self.points[0]
    }
}

/// The largest compute core count the trace itself uses (1 if it never
/// computes).
pub fn native_cores(trace: &Trace) -> usize {
    trace
        .events
        .iter()
        .flatten()
        .filter_map(|ev| match ev {
            EventKind::Compute { cores, .. } => Some(*cores),
            _ => None,
        })
        .max()
        .unwrap_or(1)
}

/// Replay `trace` under every placement `(m_comp, m_comm)` of the
/// platform and every core count in `cores` (pass `&[]` to keep the
/// trace's native core counts). Deterministic: ties break toward fewer
/// cores, then lower node indices.
pub fn search(
    platform: &Platform,
    trace: &Trace,
    cores: &[usize],
) -> Result<SearchOutcome, ReplayError> {
    let numa = platform.topology.numa_count() as u16;
    let native = native_cores(trace);
    let core_choices: Vec<Option<usize>> = if cores.is_empty() {
        vec![None]
    } else {
        cores.iter().map(|&c| Some(c)).collect()
    };
    let mut points = Vec::new();
    for &cores in &core_choices {
        for comp in 0..numa {
            for comm in 0..numa {
                let config = ReplayConfig {
                    comp_numa: Some(NumaId::new(comp)),
                    comm_numa: Some(NumaId::new(comm)),
                    cores,
                    ..ReplayConfig::default()
                };
                let out = replay(platform, trace, &config)?;
                points.push(SearchPoint {
                    n_cores: cores.unwrap_or(native),
                    m_comp: NumaId::new(comp),
                    m_comm: NumaId::new(comm),
                    makespan: out.contended.makespan,
                    slowdown: out.slowdown,
                });
            }
        }
    }
    points.sort_by(|a, b| {
        a.makespan
            .total_cmp(&b.makespan)
            .then(a.n_cores.cmp(&b.n_cores))
            .then(a.m_comp.cmp(&b.m_comp))
            .then(a.m_comm.cmp(&b.m_comm))
    });
    Ok(SearchOutcome { points })
}

/// How the replay-level search compares with the calibrated model's
/// placement advisor on the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Crosscheck {
    /// The phase profile distilled from the trace (average bytes per
    /// rank).
    pub profile: PhaseProfile,
    /// The advisor's pick, if it produced one.
    pub advisor: Option<Recommendation>,
    /// Does the advisor's `(m_comp, m_comm)` match the search winner's?
    pub agree_placement: bool,
}

/// Distill a [`PhaseProfile`] from a trace: average per-rank compute
/// bytes and communication bytes. Communication counts **both
/// directions** — receives (NIC DMA writing into memory), sends (NIC
/// DMA reading the outgoing buffer), and collective payloads — because
/// either direction crosses the memory bus and contends with the
/// computation. Earlier versions dropped `Send` bytes, so send-heavy
/// traces distilled to `comm_bytes ≈ 0` and the advisor saw them as
/// compute-only.
pub fn phase_profile(trace: &Trace, max_cores: usize) -> PhaseProfile {
    let ranks = trace.ranks().max(1) as f64;
    let mut compute = 0.0f64;
    let mut comm = 0.0f64;
    for program in &trace.events {
        for ev in program {
            match ev {
                EventKind::Compute { bytes, .. } => compute += *bytes as f64,
                EventKind::Send { bytes, .. } => comm += *bytes as f64,
                EventKind::Recv { bytes, .. } => comm += *bytes as f64,
                EventKind::Collective { bytes, .. } => comm += *bytes as f64,
                EventKind::Wait => {}
            }
        }
    }
    PhaseProfile {
        compute_bytes: compute / ranks,
        comm_bytes: comm / ranks,
        max_cores,
    }
}

/// Ask the calibrated model's advisor about the trace's workload and
/// compare its placement with the replay search winner.
pub fn advisor_crosscheck(
    model: &ContentionModel,
    trace: &Trace,
    winner: &SearchPoint,
    max_cores: usize,
) -> Crosscheck {
    let profile = phase_profile(trace, max_cores);
    let advisor = recommend(model, &profile);
    let agree_placement = advisor
        .as_ref()
        .map(|r| r.m_comp == winner.m_comp && r.m_comm == winner.m_comm)
        .unwrap_or(false);
    Crosscheck {
        profile,
        advisor,
        agree_placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_once;
    use crate::generate::{self, GenParams};
    use mc_topology::platforms;

    #[test]
    fn search_covers_every_placement() {
        let p = platforms::henri(); // 2 NUMA nodes
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            compute_bytes: 64 << 20,
            comm_bytes: 8 << 20,
            ..GenParams::default()
        });
        let out = search(&p, &trace, &[]).unwrap();
        assert_eq!(out.points.len(), 4); // 2 × 2 placements
                                         // Sorted: the winner is the minimum.
        let min = out
            .points
            .iter()
            .map(|pt| pt.makespan)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(out.winner().makespan, min);
    }

    #[test]
    fn winner_matches_brute_force_replay() {
        let p = platforms::henri();
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            cores: 8,
            compute_bytes: 256 << 20,
            comm_bytes: 16 << 20,
            ..GenParams::default()
        });
        let out = search(&p, &trace, &[]).unwrap();
        // Re-derive each makespan independently and confirm the winner
        // is the argmin.
        let mut best = (f64::INFINITY, 0u16, 0u16);
        for comp in 0..2u16 {
            for comm in 0..2u16 {
                let run = run_once(
                    &p,
                    &trace,
                    &ReplayConfig {
                        comp_numa: Some(NumaId::new(comp)),
                        comm_numa: Some(NumaId::new(comm)),
                        cores: None,
                        ..ReplayConfig::default()
                    },
                    true,
                )
                .unwrap();
                if run.makespan < best.0 {
                    best = (run.makespan, comp, comm);
                }
            }
        }
        let w = out.winner();
        assert_eq!(w.makespan.to_bits(), best.0.to_bits());
        assert_eq!(w.m_comp, NumaId::new(best.1));
        assert_eq!(w.m_comm, NumaId::new(best.2));
    }

    #[test]
    fn core_sweep_multiplies_the_grid() {
        let p = platforms::henri();
        let trace = generate::allreduce_step(&GenParams {
            ranks: 2,
            iters: 1,
            compute_bytes: 32 << 20,
            comm_bytes: 4 << 20,
            ..GenParams::default()
        });
        let out = search(&p, &trace, &[2, 8]).unwrap();
        assert_eq!(out.points.len(), 8); // 2 cores × 4 placements
        assert!(out.points.iter().any(|pt| pt.n_cores == 2));
        assert!(out.points.iter().any(|pt| pt.n_cores == 8));
    }

    #[test]
    fn phase_profile_counts_send_bytes() {
        // Regression: a send-heavy trace must not distill to
        // `comm_bytes ≈ 0`. Outgoing DMA reads cross the memory bus just
        // like incoming DMA writes, so both directions are comm volume.
        let trace = Trace {
            events: vec![
                vec![EventKind::Send {
                    peer: 1,
                    numa: mc_topology::NumaId::new(0),
                    bytes: 64,
                    tag: 0,
                }],
                vec![EventKind::Recv {
                    peer: 0,
                    numa: mc_topology::NumaId::new(0),
                    bytes: 64,
                    tag: 0,
                }],
            ],
        };
        let prof = phase_profile(&trace, 4);
        assert_eq!(prof.compute_bytes, 0.0);
        assert_eq!(prof.comm_bytes, 64.0); // (64 sent + 64 received) / 2 ranks
                                           // A paired pattern distills symmetrically: halo2d sends exactly
                                           // what it receives, so comm volume is twice the receive volume.
        let halo = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            compute_bytes: 0,
            comm_bytes: 10,
            ..GenParams::default()
        });
        let recv_bytes: u64 = halo
            .events
            .iter()
            .flatten()
            .filter_map(|ev| match ev {
                EventKind::Recv { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        let prof = phase_profile(&halo, 4);
        assert_eq!(prof.comm_bytes * 4.0, 2.0 * recv_bytes as f64);
    }

    #[test]
    fn phase_profile_averages_per_rank() {
        let trace = generate::allreduce_step(&GenParams {
            ranks: 4,
            iters: 2,
            compute_bytes: 100,
            comm_bytes: 40,
            ..GenParams::default()
        });
        let prof = phase_profile(&trace, 8);
        assert_eq!(prof.compute_bytes, 200.0); // 2 iters × 100 per rank
        assert_eq!(prof.comm_bytes, 80.0);
        assert_eq!(prof.max_cores, 8);
    }
}
