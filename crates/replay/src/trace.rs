//! The trace schema: a per-rank event program in JSON lines.
//!
//! A trace is the replayer's input language — one JSON object per line,
//! each describing one event of one rank:
//!
//! ```text
//! {"rank":0,"event":"compute","numa":0,"cores":4,"bytes":268435456}
//! {"rank":0,"event":"send","peer":1,"numa":1,"bytes":8388608,"tag":7}
//! {"rank":1,"event":"recv","peer":0,"numa":1,"bytes":8388608,"tag":7}
//! {"rank":0,"event":"collective","op":"allreduce","numa":0,"bytes":33554432}
//! {"rank":0,"event":"wait"}
//! ```
//!
//! Within a rank, events execute in file order; `compute`, `send` and
//! `recv` are *posted* asynchronously and only a `wait` (or the end of the
//! trace) blocks until everything outstanding on that rank has finished.
//! `collective` is collective: every rank must reach one with identical
//! `{op, numa, bytes}` for the program to progress.
//!
//! Parsing is strict and typed: any malformed line reports its 1-based
//! line number via [`TraceError`], which maps to the CLI's *invalid data*
//! exit code. [`Trace::to_json_lines`] writes the same grammar back out,
//! rank-major, and round-trips through [`Trace::from_json_lines`]
//! byte-for-byte modulo line order.

use std::fmt;

use mc_json::{obj, Json, JsonError};
use mc_model::ErrorCategory;
use mc_topology::NumaId;

/// A collective operation a trace line may request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// Dissemination barrier (ignores `bytes`).
    Barrier,
    /// Ring allreduce of `bytes` per rank.
    Allreduce,
    /// Ring allgather of `bytes` contributed per rank.
    Allgather,
    /// Binomial broadcast of `bytes` from rank 0.
    Broadcast,
}

impl CollectiveOp {
    /// The JSON spelling of this operation.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::Allreduce => "allreduce",
            CollectiveOp::Allgather => "allgather",
            CollectiveOp::Broadcast => "broadcast",
        }
    }

    /// Parse the JSON spelling.
    pub fn from_name(name: &str) -> Option<CollectiveOp> {
        match name {
            "barrier" => Some(CollectiveOp::Barrier),
            "allreduce" => Some(CollectiveOp::Allreduce),
            "allgather" => Some(CollectiveOp::Allgather),
            "broadcast" => Some(CollectiveOp::Broadcast),
            _ => None,
        }
    }
}

/// One event of one rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start a compute phase: `cores` cores streaming `bytes` in total
    /// through `numa`.
    Compute {
        /// NUMA node holding the computation's data.
        numa: NumaId,
        /// Cores the phase runs on.
        cores: usize,
        /// Total bytes the phase moves through memory (split evenly
        /// across cores).
        bytes: u64,
    },
    /// Post a non-blocking send to `peer`.
    Send {
        /// Destination rank.
        peer: usize,
        /// NUMA node holding the send buffer.
        numa: NumaId,
        /// Message size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Post a non-blocking receive from `peer`.
    Recv {
        /// Source rank.
        peer: usize,
        /// NUMA node holding the receive buffer.
        numa: NumaId,
        /// Buffer size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Join a collective; all ranks must issue an identical one.
    Collective {
        /// Which collective.
        op: CollectiveOp,
        /// NUMA node holding the collective's buffers.
        numa: NumaId,
        /// Payload size (per the operation's convention).
        bytes: u64,
    },
    /// Block until everything this rank has posted so far completes.
    Wait,
}

impl EventKind {
    /// Short kind label (`compute`, `send`, `recv`, `collective`,
    /// `wait`) — the value of the JSON `event` member and of the
    /// `event` metric tag.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Compute { .. } => "compute",
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Collective { .. } => "collective",
            EventKind::Wait => "wait",
        }
    }
}

/// A whole-application trace: one event program per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// `events[r]` is rank `r`'s program, in execution order.
    pub events: Vec<Vec<EventKind>>,
}

/// Why a trace failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line was not valid JSON (including nesting past the depth
    /// limit).
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying parse error.
        error: JsonError,
    },
    /// A line parsed as JSON but violated the trace schema.
    Schema {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Reading the trace from its stream failed (streaming ingestion
    /// only; whole-file parsing surfaces I/O failures before parsing
    /// starts).
    Io {
        /// 1-based line number being read when the failure hit.
        line: usize,
        /// The I/O error, rendered (kept as text so the error stays
        /// comparable and cloneable).
        message: String,
    },
    /// The trace contains no events at all.
    Empty,
    /// The trace names fewer than two ranks (a world needs ≥ 2).
    TooFewRanks(usize),
    /// A send/recv names a peer outside the trace's rank set.
    PeerOutOfRange {
        /// Rank whose event is invalid.
        rank: usize,
        /// The out-of-range peer.
        peer: usize,
        /// Number of ranks the trace defines.
        ranks: usize,
    },
}

impl TraceError {
    /// Coarse failure class — always invalid data; the CLI maps this to
    /// exit code 3.
    pub fn category(&self) -> ErrorCategory {
        ErrorCategory::InvalidData
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { line, error } => {
                write!(f, "trace line {line}: {error}")
            }
            TraceError::Schema { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            TraceError::Io { line, message } => {
                write!(f, "trace line {line}: read failed: {message}")
            }
            TraceError::Empty => write!(f, "trace has no events"),
            TraceError::TooFewRanks(n) => {
                write!(f, "trace defines {n} rank(s); a replay needs at least 2")
            }
            TraceError::PeerOutOfRange { rank, peer, ranks } => {
                write!(
                    f,
                    "rank {rank} names peer {peer}, but the trace defines ranks 0..{ranks}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn schema(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Schema {
        line,
        message: message.into(),
    }
}

fn member_u64(v: &Json, key: &str, line: usize) -> Result<u64, TraceError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema(line, format!("missing or non-integer `{key}`")))
}

fn member_numa(v: &Json, line: usize) -> Result<NumaId, TraceError> {
    let n = member_u64(v, "numa", line)?;
    u16::try_from(n)
        .map(NumaId::new)
        .map_err(|_| schema(line, format!("`numa` {n} out of range")))
}

/// Is this parsed line the optional `{"ranks":N}` stream header?
/// (An object declaring the rank count, with no `event` member.)
pub(crate) fn header_ranks(v: &Json) -> Option<usize> {
    if v.get("event").is_some() || v.get("rank").is_some() {
        return None;
    }
    v.get("ranks").and_then(Json::as_u64).map(|n| n as usize)
}

/// Parse one already-JSON-parsed trace line into `(rank, event)`,
/// enforcing the per-line schema. Shared by the whole-file parser and
/// the streaming [`crate::stream::TraceReader`].
pub(crate) fn parse_event_line(v: &Json, line: usize) -> Result<(usize, EventKind), TraceError> {
    let rank = member_u64(v, "rank", line)? as usize;
    if rank >= 1 << 20 {
        return Err(schema(line, format!("implausible rank {rank}")));
    }
    let event = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| schema(line, "missing or non-string `event`"))?;
    let kind = match event {
        "compute" => {
            let cores = member_u64(v, "cores", line)? as usize;
            if cores == 0 {
                return Err(schema(line, "`cores` must be >= 1"));
            }
            EventKind::Compute {
                numa: member_numa(v, line)?,
                cores,
                bytes: member_u64(v, "bytes", line)?,
            }
        }
        "send" | "recv" => {
            let peer = member_u64(v, "peer", line)? as usize;
            if peer == rank {
                return Err(schema(line, format!("rank {rank} messages itself")));
            }
            let numa = member_numa(v, line)?;
            let bytes = member_u64(v, "bytes", line)?;
            let tag = u32::try_from(member_u64(v, "tag", line)?)
                .map_err(|_| schema(line, "`tag` out of u32 range"))?;
            if event == "send" {
                EventKind::Send {
                    peer,
                    numa,
                    bytes,
                    tag,
                }
            } else {
                EventKind::Recv {
                    peer,
                    numa,
                    bytes,
                    tag,
                }
            }
        }
        "collective" => {
            let op_name = v
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| schema(line, "missing or non-string `op`"))?;
            let op = CollectiveOp::from_name(op_name).ok_or_else(|| {
                schema(
                    line,
                    format!(
                        "unknown collective `{op_name}` \
                         (expected barrier|allreduce|allgather|broadcast)"
                    ),
                )
            })?;
            EventKind::Collective {
                op,
                numa: member_numa(v, line)?,
                bytes: member_u64(v, "bytes", line)?,
            }
        }
        "wait" => EventKind::Wait,
        other => {
            return Err(schema(
                line,
                format!(
                    "unknown event `{other}` \
                     (expected compute|send|recv|collective|wait)"
                ),
            ))
        }
    };
    Ok((rank, kind))
}

/// Render one event as its JSON trace line (no trailing newline). The
/// member order is fixed, so output is byte-stable; [`Trace::to_json_lines`]
/// and the streaming generator writer share these bytes.
pub fn render_event_line(rank: usize, ev: &EventKind) -> String {
    let r = ("rank", Json::Num(rank as f64));
    let json = match ev {
        EventKind::Compute { numa, cores, bytes } => obj(vec![
            r,
            ("event", Json::Str("compute".into())),
            ("numa", Json::Num(numa.index() as f64)),
            ("cores", Json::Num(*cores as f64)),
            ("bytes", Json::Num(*bytes as f64)),
        ]),
        EventKind::Send {
            peer,
            numa,
            bytes,
            tag,
        } => obj(vec![
            r,
            ("event", Json::Str("send".into())),
            ("peer", Json::Num(*peer as f64)),
            ("numa", Json::Num(numa.index() as f64)),
            ("bytes", Json::Num(*bytes as f64)),
            ("tag", Json::Num(*tag as f64)),
        ]),
        EventKind::Recv {
            peer,
            numa,
            bytes,
            tag,
        } => obj(vec![
            r,
            ("event", Json::Str("recv".into())),
            ("peer", Json::Num(*peer as f64)),
            ("numa", Json::Num(numa.index() as f64)),
            ("bytes", Json::Num(*bytes as f64)),
            ("tag", Json::Num(*tag as f64)),
        ]),
        EventKind::Collective { op, numa, bytes } => obj(vec![
            r,
            ("event", Json::Str("collective".into())),
            ("op", Json::Str(op.name().into())),
            ("numa", Json::Num(numa.index() as f64)),
            ("bytes", Json::Num(*bytes as f64)),
        ]),
        EventKind::Wait => obj(vec![r, ("event", Json::Str("wait".into()))]),
    };
    json.render()
}

impl Trace {
    /// Number of ranks (highest rank mentioned, plus one).
    pub fn ranks(&self) -> usize {
        self.events.len()
    }

    /// Total number of events across all ranks.
    pub fn event_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Parse a JSON-lines trace. Blank lines and lines starting with `#`
    /// are skipped; an optional leading `{"ranks":N}` header (written by
    /// the streaming generators) declares the rank count; everything
    /// else must be one schema-conforming object.
    pub fn from_json_lines(text: &str) -> Result<Trace, TraceError> {
        let mut per_rank: Vec<Vec<EventKind>> = Vec::new();
        let mut any = false;
        let mut first = true;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let v = Json::parse(trimmed).map_err(|error| TraceError::Json { line, error })?;
            if first {
                first = false;
                if let Some(ranks) = header_ranks(&v) {
                    // The header pre-declares ranks so a trailing rank
                    // with no events still counts toward the world size.
                    per_rank.resize_with(ranks.max(per_rank.len()), Vec::new);
                    continue;
                }
            }
            let (rank, kind) = parse_event_line(&v, line)?;
            if per_rank.len() <= rank {
                per_rank.resize_with(rank + 1, Vec::new);
            }
            per_rank[rank].push(kind);
            any = true;
        }
        if !any {
            return Err(TraceError::Empty);
        }
        let trace = Trace { events: per_rank };
        trace.validate()?;
        Ok(trace)
    }

    /// Check cross-line invariants: at least two ranks, every peer inside
    /// the rank set.
    pub fn validate(&self) -> Result<(), TraceError> {
        let ranks = self.ranks();
        if ranks < 2 {
            return Err(TraceError::TooFewRanks(ranks));
        }
        for (rank, program) in self.events.iter().enumerate() {
            for ev in program {
                if let EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } = ev {
                    if *peer >= ranks {
                        return Err(TraceError::PeerOutOfRange {
                            rank,
                            peer: *peer,
                            ranks,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the trace back to JSON lines, rank-major (all of rank 0's
    /// events, then rank 1's, …). Deterministic: member order is fixed,
    /// so the output is byte-stable.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (rank, program) in self.events.iter().enumerate() {
            for ev in program {
                out.push_str(&render_event_line(rank, ev));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NumaId {
        NumaId::new(i)
    }

    #[test]
    fn parses_every_event_kind() {
        let text = r#"
            {"rank":0,"event":"compute","numa":0,"cores":4,"bytes":1024}
            {"rank":0,"event":"send","peer":1,"numa":1,"bytes":64,"tag":7}
            {"rank":1,"event":"recv","peer":0,"numa":1,"bytes":64,"tag":7}
            {"rank":0,"event":"collective","op":"barrier","numa":0,"bytes":0}
            {"rank":1,"event":"collective","op":"barrier","numa":0,"bytes":0}
            {"rank":0,"event":"wait"}
        "#;
        let t = Trace::from_json_lines(text).unwrap();
        assert_eq!(t.ranks(), 2);
        assert_eq!(t.event_count(), 6);
        assert_eq!(
            t.events[0][0],
            EventKind::Compute {
                numa: n(0),
                cores: 4,
                bytes: 1024
            }
        );
        assert_eq!(
            t.events[1][1],
            EventKind::Collective {
                op: CollectiveOp::Barrier,
                numa: n(0),
                bytes: 0
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "# a halo trace\n\n{\"rank\":0,\"event\":\"wait\"}\n{\"rank\":1,\"event\":\"wait\"}\n";
        assert_eq!(Trace::from_json_lines(text).unwrap().event_count(), 2);
    }

    #[test]
    fn bad_json_reports_the_line_number() {
        let text = "{\"rank\":0,\"event\":\"wait\"}\n{oops\n";
        match Trace::from_json_lines(text) {
            Err(TraceError::Json { line: 2, .. }) => {}
            other => panic!("expected Json error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_and_unknown_collective_are_schema_errors() {
        let bad_event = "{\"rank\":0,\"event\":\"sleep\"}";
        assert!(matches!(
            Trace::from_json_lines(bad_event),
            Err(TraceError::Schema { line: 1, .. })
        ));
        let bad_op =
            "{\"rank\":0,\"event\":\"collective\",\"op\":\"alltoall\",\"numa\":0,\"bytes\":1}";
        let err = Trace::from_json_lines(bad_op).unwrap_err();
        assert!(err.to_string().contains("alltoall"), "{err}");
    }

    #[test]
    fn self_message_and_bad_peer_are_rejected() {
        let self_msg =
            "{\"rank\":0,\"event\":\"send\",\"peer\":0,\"numa\":0,\"bytes\":1,\"tag\":0}";
        assert!(matches!(
            Trace::from_json_lines(self_msg),
            Err(TraceError::Schema { .. })
        ));
        let bad_peer =
            "{\"rank\":0,\"event\":\"send\",\"peer\":9,\"numa\":0,\"bytes\":1,\"tag\":0}\n\
                        {\"rank\":1,\"event\":\"wait\"}";
        assert_eq!(
            Trace::from_json_lines(bad_peer),
            Err(TraceError::PeerOutOfRange {
                rank: 0,
                peer: 9,
                ranks: 2
            })
        );
    }

    #[test]
    fn single_rank_traces_are_rejected() {
        let text = "{\"rank\":0,\"event\":\"wait\"}";
        assert_eq!(
            Trace::from_json_lines(text),
            Err(TraceError::TooFewRanks(1))
        );
        assert_eq!(Trace::from_json_lines(""), Err(TraceError::Empty));
    }

    #[test]
    fn json_lines_round_trip() {
        let t = Trace {
            events: vec![
                vec![
                    EventKind::Compute {
                        numa: n(0),
                        cores: 3,
                        bytes: 999,
                    },
                    EventKind::Send {
                        peer: 1,
                        numa: n(1),
                        bytes: 4096,
                        tag: 42,
                    },
                    EventKind::Wait,
                ],
                vec![
                    EventKind::Recv {
                        peer: 0,
                        numa: n(1),
                        bytes: 4096,
                        tag: 42,
                    },
                    EventKind::Collective {
                        op: CollectiveOp::Allreduce,
                        numa: n(0),
                        bytes: 1 << 20,
                    },
                    EventKind::Wait,
                ],
            ],
        };
        let text = t.to_json_lines();
        let back = Trace::from_json_lines(&text).unwrap();
        assert_eq!(back, t);
        // And the writer is byte-stable.
        assert_eq!(back.to_json_lines(), text);
    }

    #[test]
    fn ranks_header_is_tolerated_and_declares_trailing_ranks() {
        let text =
            "{\"ranks\":2}\n{\"rank\":0,\"event\":\"wait\"}\n{\"rank\":1,\"event\":\"wait\"}\n";
        let t = Trace::from_json_lines(text).unwrap();
        assert_eq!(t.ranks(), 2);
        assert_eq!(t.event_count(), 2);
        // A header can declare more ranks than the events mention; the
        // extra ranks exist with empty programs.
        let text =
            "{\"ranks\":3}\n{\"rank\":0,\"event\":\"wait\"}\n{\"rank\":1,\"event\":\"wait\"}\n";
        let t = Trace::from_json_lines(text).unwrap();
        assert_eq!(t.ranks(), 3);
        assert!(t.events[2].is_empty());
        // Only the first non-comment line can be a header.
        let text = "{\"rank\":0,\"event\":\"wait\"}\n{\"ranks\":2}\n";
        assert!(matches!(
            Trace::from_json_lines(text),
            Err(TraceError::Schema { line: 2, .. })
        ));
    }

    #[test]
    fn deep_nesting_in_a_trace_line_is_a_typed_error() {
        let mut line = String::from("{\"rank\":0,\"event\":\"wait\",\"x\":");
        line.push_str(&"[".repeat(10_000));
        match Trace::from_json_lines(&line) {
            Err(TraceError::Json { line: 1, error }) => {
                assert_eq!(error.kind, mc_json::JsonErrorKind::TooDeep);
            }
            other => panic!("expected TooDeep at line 1, got {other:?}"),
        }
    }
}
