//! Synthetic trace generators for the communication patterns that
//! dominate HPC and distributed-training workloads: a 2D halo exchange,
//! a data-parallel training step (compute + ring allreduce), and a
//! pipeline of stages streaming microbatches. All generators are pure
//! functions of their parameters — the same [`GenParams`] always yields
//! the same byte-identical trace.

use mc_topology::NumaId;

use crate::trace::{CollectiveOp, EventKind, Trace};

/// Knobs shared by every generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Number of ranks (≥ 2).
    pub ranks: usize,
    /// Iterations (halo steps, training steps, or microbatches).
    pub iters: usize,
    /// Cores per compute phase.
    pub cores: usize,
    /// Total bytes each compute phase moves through memory.
    pub compute_bytes: u64,
    /// Bytes per message (halo face, gradient buffer, or activation).
    pub comm_bytes: u64,
    /// NUMA node holding computation data.
    pub comp_numa: NumaId,
    /// NUMA node holding communication buffers.
    pub comm_numa: NumaId,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            ranks: 4,
            iters: 2,
            cores: 4,
            compute_bytes: 256 << 20,
            comm_bytes: 8 << 20,
            comp_numa: NumaId::new(0),
            comm_numa: NumaId::new(0),
        }
    }
}

/// The generator names accepted by [`by_name`] (and the CLI's
/// `--generate`).
pub fn names() -> &'static [&'static str] {
    &["halo2d", "allreduce", "pipeline"]
}

/// Look a generator up by name.
pub fn by_name(name: &str, p: &GenParams) -> Option<Trace> {
    match name {
        "halo2d" => Some(halo2d(p)),
        "allreduce" => Some(allreduce_step(p)),
        "pipeline" => Some(pipeline(p)),
        _ => None,
    }
}

/// Largest divisor of `n` that is ≤ √n — the x-extent of the most
/// square process grid.
fn grid_x(n: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

/// 2D halo exchange on a `px × py` torus (the most square factorisation
/// of `ranks`). Each iteration: a compute phase, then a receive and a
/// send per grid neighbour, then a wait. Tags encode `(iteration,
/// direction of travel)` so the four messages crossing a rank never
/// mismatch, even on 2-wide axes where both neighbours are the same
/// rank. Axes of extent 1 are skipped (no self-messages).
pub fn halo2d(p: &GenParams) -> Trace {
    assert!(p.ranks >= 2, "halo2d needs at least 2 ranks");
    let px = grid_x(p.ranks);
    let py = p.ranks / px;
    let mut events: Vec<Vec<EventKind>> = vec![Vec::new(); p.ranks];
    for iter in 0..p.iters {
        let tag = |dir: u32| 4 * iter as u32 + dir;
        for (rank, ev) in events.iter_mut().enumerate() {
            let (x, y) = (rank % px, rank / px);
            let east = y * px + (x + 1) % px;
            let west = y * px + (x + px - 1) % px;
            let north = ((y + 1) % py) * px + x;
            let south = ((y + py - 1) % py) * px + x;
            ev.push(EventKind::Compute {
                numa: p.comp_numa,
                cores: p.cores,
                bytes: p.compute_bytes,
            });
            // Directions of travel: 0 = eastward, 1 = westward,
            // 2 = northward, 3 = southward. A rank receives the eastward
            // message from its west neighbour, and so on.
            if px > 1 {
                ev.push(EventKind::Recv {
                    peer: west,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(0),
                });
                ev.push(EventKind::Recv {
                    peer: east,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(1),
                });
            }
            if py > 1 {
                ev.push(EventKind::Recv {
                    peer: south,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(2),
                });
                ev.push(EventKind::Recv {
                    peer: north,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(3),
                });
            }
            if px > 1 {
                ev.push(EventKind::Send {
                    peer: east,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(0),
                });
                ev.push(EventKind::Send {
                    peer: west,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(1),
                });
            }
            if py > 1 {
                ev.push(EventKind::Send {
                    peer: north,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(2),
                });
                ev.push(EventKind::Send {
                    peer: south,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: tag(3),
                });
            }
            ev.push(EventKind::Wait);
        }
    }
    Trace { events }
}

/// Data-parallel training step: each iteration is a compute phase (the
/// forward/backward pass) followed by a ring allreduce of the gradient
/// buffer, then a wait.
pub fn allreduce_step(p: &GenParams) -> Trace {
    assert!(p.ranks >= 2, "allreduce needs at least 2 ranks");
    let mut events: Vec<Vec<EventKind>> = vec![Vec::new(); p.ranks];
    for _ in 0..p.iters {
        for program in &mut events {
            program.push(EventKind::Compute {
                numa: p.comp_numa,
                cores: p.cores,
                bytes: p.compute_bytes,
            });
            program.push(EventKind::Collective {
                op: CollectiveOp::Allreduce,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
            });
            program.push(EventKind::Wait);
        }
    }
    Trace { events }
}

/// Pipeline of `ranks` stages streaming `iters` microbatches: each
/// stage receives an activation from its predecessor, computes, and
/// sends to its successor. The trace expresses the data dependencies
/// with waits — a stage's compute starts only after its receive
/// completed, and its send only after the compute — while the send
/// itself overlaps the next microbatch (drained by the next wait).
/// Tags carry the microbatch index so the stream never mismatches.
pub fn pipeline(p: &GenParams) -> Trace {
    assert!(p.ranks >= 2, "pipeline needs at least 2 stages");
    let last = p.ranks - 1;
    let mut events: Vec<Vec<EventKind>> = vec![Vec::new(); p.ranks];
    for m in 0..p.iters {
        for (rank, program) in events.iter_mut().enumerate() {
            if rank > 0 {
                program.push(EventKind::Recv {
                    peer: rank - 1,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: m as u32,
                });
                program.push(EventKind::Wait);
            }
            program.push(EventKind::Compute {
                numa: p.comp_numa,
                cores: p.cores,
                bytes: p.compute_bytes,
            });
            program.push(EventKind::Wait);
            if rank < last {
                program.push(EventKind::Send {
                    peer: rank + 1,
                    numa: p.comm_numa,
                    bytes: p.comm_bytes,
                    tag: m as u32,
                });
            }
        }
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorisation_is_most_square() {
        assert_eq!(grid_x(4), 2);
        assert_eq!(grid_x(6), 2);
        assert_eq!(grid_x(9), 3);
        assert_eq!(grid_x(12), 3);
        assert_eq!(grid_x(7), 1); // prime: degenerate 1×7 ring
        assert_eq!(grid_x(2), 1);
    }

    #[test]
    fn generated_traces_validate() {
        for ranks in [2usize, 3, 4, 6, 8] {
            let p = GenParams {
                ranks,
                ..GenParams::default()
            };
            for name in names() {
                let t = by_name(name, &p).unwrap();
                t.validate()
                    .unwrap_or_else(|e| panic!("{name} ranks={ranks}: {e}"));
                assert_eq!(t.ranks(), ranks, "{name}");
            }
        }
        assert!(by_name("nope", &GenParams::default()).is_none());
    }

    #[test]
    fn halo_sends_and_recvs_pair_up() {
        // For every (src, dst, tag) send there must be exactly one
        // matching (dst, src, tag) recv.
        let t = halo2d(&GenParams {
            ranks: 6,
            iters: 3,
            ..GenParams::default()
        });
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, program) in t.events.iter().enumerate() {
            for ev in program {
                match ev {
                    EventKind::Send { peer, tag, .. } => sends.push((rank, *peer, *tag)),
                    EventKind::Recv { peer, tag, .. } => recvs.push((*peer, rank, *tag)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
        assert!(!sends.is_empty());
    }

    #[test]
    fn prime_rank_counts_skip_the_degenerate_axis() {
        // 1×5 grid: only the y axis carries messages; no self-sends.
        let t = halo2d(&GenParams {
            ranks: 5,
            iters: 1,
            ..GenParams::default()
        });
        for (rank, program) in t.events.iter().enumerate() {
            for ev in program {
                if let EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } = ev {
                    assert_ne!(*peer, rank);
                }
            }
        }
    }

    #[test]
    fn pipeline_endpoints_have_one_sided_traffic() {
        let t = pipeline(&GenParams {
            ranks: 3,
            iters: 2,
            ..GenParams::default()
        });
        // Stage 0 never receives; the last stage never sends.
        assert!(!t.events[0]
            .iter()
            .any(|e| matches!(e, EventKind::Recv { .. })));
        assert!(!t.events[2]
            .iter()
            .any(|e| matches!(e, EventKind::Send { .. })));
        // Interior stages do both.
        assert!(t.events[1]
            .iter()
            .any(|e| matches!(e, EventKind::Send { .. })));
        assert!(t.events[1]
            .iter()
            .any(|e| matches!(e, EventKind::Recv { .. })));
    }

    #[test]
    fn generators_are_deterministic() {
        let p = GenParams::default();
        for name in names() {
            let a = by_name(name, &p).unwrap().to_json_lines();
            let b = by_name(name, &p).unwrap().to_json_lines();
            assert_eq!(a, b, "{name}");
        }
    }
}
