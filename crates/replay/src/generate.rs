//! Synthetic trace generators for the communication patterns that
//! dominate HPC and distributed-training workloads: a 2D halo exchange,
//! a data-parallel training step (compute + ring allreduce), and a
//! pipeline of stages streaming microbatches. All generators are pure
//! functions of their parameters — the same [`GenParams`] always yields
//! the same byte-identical trace.
//!
//! Every pattern is defined *lazily* ([`LazyGen`]): a per-rank
//! iteration block plus a tag schedule, from which events are produced
//! on demand. The eager functions ([`halo2d`], [`allreduce_step`],
//! [`pipeline`]) collect the lazy form into a [`Trace`];
//! [`LazyGen::source`] feeds the replay engine directly and
//! [`LazyGen::write_interleaved`] streams the trace to disk — both in
//! memory bounded by ranks × events-per-iteration, independent of the
//! iteration count.

use std::io::{self, Write};

use mc_topology::NumaId;

use crate::stream::EventSource;
use crate::trace::{render_event_line, CollectiveOp, EventKind, Trace, TraceError};

/// Knobs shared by every generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Number of ranks (≥ 2).
    pub ranks: usize,
    /// Iterations (halo steps, training steps, or microbatches).
    pub iters: usize,
    /// Cores per compute phase.
    pub cores: usize,
    /// Total bytes each compute phase moves through memory.
    pub compute_bytes: u64,
    /// Bytes per message (halo face, gradient buffer, or activation).
    pub comm_bytes: u64,
    /// NUMA node holding computation data.
    pub comp_numa: NumaId,
    /// NUMA node holding communication buffers.
    pub comm_numa: NumaId,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            ranks: 4,
            iters: 2,
            cores: 4,
            compute_bytes: 256 << 20,
            comm_bytes: 8 << 20,
            comp_numa: NumaId::new(0),
            comm_numa: NumaId::new(0),
        }
    }
}

/// The generator names accepted by [`by_name`] (and the CLI's
/// `--generate`).
pub fn names() -> &'static [&'static str] {
    &["halo2d", "allreduce", "pipeline"]
}

/// Look a generator up by name.
pub fn by_name(name: &str, p: &GenParams) -> Option<Trace> {
    LazyGen::new(name, p).map(|g| g.collect())
}

/// How a pattern's tags evolve across iterations (the iteration block
/// itself is tag-templated at iteration 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagSchedule {
    /// Tags advance by a fixed stride per iteration (halo2d: 4
    /// directions per step).
    Stride(u32),
    /// The tag *is* the iteration index (pipeline microbatches).
    Iteration,
    /// Tags are unused (allreduce: collectives carry no tags).
    None,
}

/// A lazily-evaluated synthetic trace: one iteration block per rank
/// (the events of iteration 0) plus a [`TagSchedule`] mapping the block
/// onto later iterations. Holds ranks × block-size events, independent
/// of the iteration count — the memory form the streaming replay path
/// and [`write_interleaved`](LazyGen::write_interleaved) rely on.
pub struct LazyGen {
    iters: usize,
    schedule: TagSchedule,
    /// `blocks[r]` is rank `r`'s iteration-0 event block.
    blocks: Vec<Vec<EventKind>>,
}

impl LazyGen {
    /// Build the lazy form of pattern `name` (see [`names`]); `None`
    /// for unknown names.
    pub fn new(name: &str, p: &GenParams) -> Option<LazyGen> {
        let (schedule, blocks) = match name {
            "halo2d" => (TagSchedule::Stride(4), halo2d_blocks(p)),
            "allreduce" => (TagSchedule::None, allreduce_blocks(p)),
            "pipeline" => (TagSchedule::Iteration, pipeline_blocks(p)),
            _ => return None,
        };
        Some(LazyGen {
            iters: p.iters,
            schedule,
            blocks,
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of events the full trace contains.
    pub fn event_count(&self) -> usize {
        self.iters * self.blocks.iter().map(Vec::len).sum::<usize>()
    }

    /// The `pos`-th event of rank `rank`'s `iter`-th iteration.
    fn event(&self, rank: usize, iter: usize, pos: usize) -> EventKind {
        let ev = self.blocks[rank][pos];
        match (self.schedule, ev) {
            (
                TagSchedule::Stride(stride),
                EventKind::Send {
                    peer,
                    numa,
                    bytes,
                    tag,
                },
            ) => EventKind::Send {
                peer,
                numa,
                bytes,
                tag: tag + stride * iter as u32,
            },
            (
                TagSchedule::Stride(stride),
                EventKind::Recv {
                    peer,
                    numa,
                    bytes,
                    tag,
                },
            ) => EventKind::Recv {
                peer,
                numa,
                bytes,
                tag: tag + stride * iter as u32,
            },
            (
                TagSchedule::Iteration,
                EventKind::Send {
                    peer, numa, bytes, ..
                },
            ) => EventKind::Send {
                peer,
                numa,
                bytes,
                tag: iter as u32,
            },
            (
                TagSchedule::Iteration,
                EventKind::Recv {
                    peer, numa, bytes, ..
                },
            ) => EventKind::Recv {
                peer,
                numa,
                bytes,
                tag: iter as u32,
            },
            (_, ev) => ev,
        }
    }

    /// Materialize the full trace (the eager generators).
    pub fn collect(&self) -> Trace {
        let events = (0..self.ranks())
            .map(|rank| {
                let block = self.blocks[rank].len();
                (0..self.iters)
                    .flat_map(|iter| (0..block).map(move |pos| (iter, pos)))
                    .map(|(iter, pos)| self.event(rank, iter, pos))
                    .collect()
            })
            .collect();
        Trace { events }
    }

    /// An [`EventSource`] over this pattern for the streaming replay
    /// path: per-rank `(iteration, position)` cursors, no trace ever
    /// materialized.
    pub fn source(&self) -> GenSource<'_> {
        GenSource {
            gen: self,
            cursors: vec![(0, 0); self.ranks()],
        }
    }

    /// Stream the trace as JSON lines: the `{"ranks":N}` header, then
    /// all ranks' events iteration-major (every rank's iteration 0,
    /// then iteration 1, …). Interleaving by iteration keeps a
    /// [`crate::stream::TraceReader`] replaying the file to bounded
    /// read-ahead. Returns the number of event lines written.
    pub fn write_interleaved<W: Write>(&self, out: &mut W) -> io::Result<usize> {
        writeln!(out, "{{\"ranks\":{}}}", self.ranks())?;
        let mut written = 0;
        for iter in 0..self.iters {
            for rank in 0..self.ranks() {
                for pos in 0..self.blocks[rank].len() {
                    let ev = self.event(rank, iter, pos);
                    writeln!(out, "{}", render_event_line(rank, &ev))?;
                    written += 1;
                }
            }
        }
        Ok(written)
    }
}

/// Lazy [`EventSource`] over a [`LazyGen`] — see [`LazyGen::source`].
pub struct GenSource<'a> {
    gen: &'a LazyGen,
    /// Per-rank `(iteration, position-in-block)` cursor.
    cursors: Vec<(usize, usize)>,
}

impl EventSource for GenSource<'_> {
    fn ranks(&self) -> usize {
        self.gen.ranks()
    }

    fn peek(&mut self, rank: usize) -> Result<Option<EventKind>, TraceError> {
        let (iter, pos) = self.cursors[rank];
        if iter >= self.gen.iters || self.gen.blocks[rank].is_empty() {
            return Ok(None);
        }
        Ok(Some(self.gen.event(rank, iter, pos)))
    }

    fn advance(&mut self, rank: usize) {
        let (iter, pos) = self.cursors[rank];
        self.cursors[rank] = if pos + 1 < self.gen.blocks[rank].len() {
            (iter, pos + 1)
        } else {
            (iter + 1, 0)
        };
    }
}

/// Largest divisor of `n` that is ≤ √n — the x-extent of the most
/// square process grid.
fn grid_x(n: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

/// 2D halo exchange on a `px × py` torus (the most square factorisation
/// of `ranks`). Each iteration: a compute phase, then a receive and a
/// send per grid neighbour, then a wait. Tags encode `(iteration,
/// direction of travel)` so the four messages crossing a rank never
/// mismatch, even on 2-wide axes where both neighbours are the same
/// rank. Axes of extent 1 are skipped (no self-messages).
pub fn halo2d(p: &GenParams) -> Trace {
    LazyGen::new("halo2d", p).expect("known pattern").collect()
}

/// One halo iteration per rank, tagged for iteration 0 (the tag *is*
/// the direction of travel; later iterations stride by 4).
fn halo2d_blocks(p: &GenParams) -> Vec<Vec<EventKind>> {
    assert!(p.ranks >= 2, "halo2d needs at least 2 ranks");
    let px = grid_x(p.ranks);
    let py = p.ranks / px;
    let mut blocks: Vec<Vec<EventKind>> = vec![Vec::new(); p.ranks];
    for (rank, ev) in blocks.iter_mut().enumerate() {
        let (x, y) = (rank % px, rank / px);
        let east = y * px + (x + 1) % px;
        let west = y * px + (x + px - 1) % px;
        let north = ((y + 1) % py) * px + x;
        let south = ((y + py - 1) % py) * px + x;
        ev.push(EventKind::Compute {
            numa: p.comp_numa,
            cores: p.cores,
            bytes: p.compute_bytes,
        });
        // Directions of travel: 0 = eastward, 1 = westward,
        // 2 = northward, 3 = southward. A rank receives the eastward
        // message from its west neighbour, and so on.
        if px > 1 {
            ev.push(EventKind::Recv {
                peer: west,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 0,
            });
            ev.push(EventKind::Recv {
                peer: east,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 1,
            });
        }
        if py > 1 {
            ev.push(EventKind::Recv {
                peer: south,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 2,
            });
            ev.push(EventKind::Recv {
                peer: north,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 3,
            });
        }
        if px > 1 {
            ev.push(EventKind::Send {
                peer: east,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 0,
            });
            ev.push(EventKind::Send {
                peer: west,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 1,
            });
        }
        if py > 1 {
            ev.push(EventKind::Send {
                peer: north,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 2,
            });
            ev.push(EventKind::Send {
                peer: south,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 3,
            });
        }
        ev.push(EventKind::Wait);
    }
    blocks
}

/// Data-parallel training step: each iteration is a compute phase (the
/// forward/backward pass) followed by a ring allreduce of the gradient
/// buffer, then a wait.
pub fn allreduce_step(p: &GenParams) -> Trace {
    LazyGen::new("allreduce", p)
        .expect("known pattern")
        .collect()
}

/// One training iteration per rank; every rank's block is identical and
/// tag-free (collectives match by program order, not tag).
fn allreduce_blocks(p: &GenParams) -> Vec<Vec<EventKind>> {
    assert!(p.ranks >= 2, "allreduce needs at least 2 ranks");
    let block = vec![
        EventKind::Compute {
            numa: p.comp_numa,
            cores: p.cores,
            bytes: p.compute_bytes,
        },
        EventKind::Collective {
            op: CollectiveOp::Allreduce,
            numa: p.comm_numa,
            bytes: p.comm_bytes,
        },
        EventKind::Wait,
    ];
    vec![block; p.ranks]
}

/// Pipeline of `ranks` stages streaming `iters` microbatches: each
/// stage receives an activation from its predecessor, computes, and
/// sends to its successor. The trace expresses the data dependencies
/// with waits — a stage's compute starts only after its receive
/// completed, and its send only after the compute — while the send
/// itself overlaps the next microbatch (drained by the next wait).
/// Tags carry the microbatch index so the stream never mismatches.
pub fn pipeline(p: &GenParams) -> Trace {
    LazyGen::new("pipeline", p)
        .expect("known pattern")
        .collect()
}

/// One microbatch per stage, tagged for microbatch 0 (the
/// [`TagSchedule::Iteration`] schedule stamps later microbatches).
fn pipeline_blocks(p: &GenParams) -> Vec<Vec<EventKind>> {
    assert!(p.ranks >= 2, "pipeline needs at least 2 stages");
    let last = p.ranks - 1;
    let mut blocks: Vec<Vec<EventKind>> = vec![Vec::new(); p.ranks];
    for (rank, program) in blocks.iter_mut().enumerate() {
        if rank > 0 {
            program.push(EventKind::Recv {
                peer: rank - 1,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 0,
            });
            program.push(EventKind::Wait);
        }
        program.push(EventKind::Compute {
            numa: p.comp_numa,
            cores: p.cores,
            bytes: p.compute_bytes,
        });
        program.push(EventKind::Wait);
        if rank < last {
            program.push(EventKind::Send {
                peer: rank + 1,
                numa: p.comm_numa,
                bytes: p.comm_bytes,
                tag: 0,
            });
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorisation_is_most_square() {
        assert_eq!(grid_x(4), 2);
        assert_eq!(grid_x(6), 2);
        assert_eq!(grid_x(9), 3);
        assert_eq!(grid_x(12), 3);
        assert_eq!(grid_x(7), 1); // prime: degenerate 1×7 ring
        assert_eq!(grid_x(2), 1);
    }

    #[test]
    fn generated_traces_validate() {
        for ranks in [2usize, 3, 4, 6, 8] {
            let p = GenParams {
                ranks,
                ..GenParams::default()
            };
            for name in names() {
                let t = by_name(name, &p).unwrap();
                t.validate()
                    .unwrap_or_else(|e| panic!("{name} ranks={ranks}: {e}"));
                assert_eq!(t.ranks(), ranks, "{name}");
            }
        }
        assert!(by_name("nope", &GenParams::default()).is_none());
    }

    #[test]
    fn halo_sends_and_recvs_pair_up() {
        // For every (src, dst, tag) send there must be exactly one
        // matching (dst, src, tag) recv.
        let t = halo2d(&GenParams {
            ranks: 6,
            iters: 3,
            ..GenParams::default()
        });
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, program) in t.events.iter().enumerate() {
            for ev in program {
                match ev {
                    EventKind::Send { peer, tag, .. } => sends.push((rank, *peer, *tag)),
                    EventKind::Recv { peer, tag, .. } => recvs.push((*peer, rank, *tag)),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
        assert!(!sends.is_empty());
    }

    #[test]
    fn prime_rank_counts_skip_the_degenerate_axis() {
        // 1×5 grid: only the y axis carries messages; no self-sends.
        let t = halo2d(&GenParams {
            ranks: 5,
            iters: 1,
            ..GenParams::default()
        });
        for (rank, program) in t.events.iter().enumerate() {
            for ev in program {
                if let EventKind::Send { peer, .. } | EventKind::Recv { peer, .. } = ev {
                    assert_ne!(*peer, rank);
                }
            }
        }
    }

    #[test]
    fn pipeline_endpoints_have_one_sided_traffic() {
        let t = pipeline(&GenParams {
            ranks: 3,
            iters: 2,
            ..GenParams::default()
        });
        // Stage 0 never receives; the last stage never sends.
        assert!(!t.events[0]
            .iter()
            .any(|e| matches!(e, EventKind::Recv { .. })));
        assert!(!t.events[2]
            .iter()
            .any(|e| matches!(e, EventKind::Send { .. })));
        // Interior stages do both.
        assert!(t.events[1]
            .iter()
            .any(|e| matches!(e, EventKind::Send { .. })));
        assert!(t.events[1]
            .iter()
            .any(|e| matches!(e, EventKind::Recv { .. })));
    }

    #[test]
    fn lazy_source_matches_the_collected_trace() {
        let p = GenParams {
            ranks: 6,
            iters: 3,
            ..GenParams::default()
        };
        for name in names() {
            let lazy = LazyGen::new(name, &p).unwrap();
            let trace = lazy.collect();
            assert_eq!(lazy.event_count(), trace.event_count(), "{name}");
            let mut src = lazy.source();
            assert_eq!(src.ranks(), trace.ranks(), "{name}");
            for (rank, program) in trace.events.iter().enumerate() {
                for ev in program {
                    assert_eq!(src.peek(rank).unwrap(), Some(*ev), "{name}");
                    src.advance(rank);
                }
                assert_eq!(src.peek(rank).unwrap(), None, "{name}");
            }
        }
    }

    #[test]
    fn write_interleaved_round_trips_through_the_eager_parser() {
        let p = GenParams {
            ranks: 4,
            iters: 3,
            ..GenParams::default()
        };
        for name in names() {
            let lazy = LazyGen::new(name, &p).unwrap();
            let mut bytes = Vec::new();
            let written = lazy.write_interleaved(&mut bytes).unwrap();
            assert_eq!(written, lazy.event_count(), "{name}");
            let text = String::from_utf8(bytes).unwrap();
            let parsed = Trace::from_json_lines(&text).unwrap();
            assert_eq!(parsed.events, lazy.collect().events, "{name}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let p = GenParams::default();
        for name in names() {
            let a = by_name(name, &p).unwrap().to_json_lines();
            let b = by_name(name, &p).unwrap().to_json_lines();
            assert_eq!(a, b, "{name}");
        }
    }
}
