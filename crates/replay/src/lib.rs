//! # mc-replay — trace-driven application replay
//!
//! The paper's model predicts the bandwidth each stream gets when
//! communications and computations share a memory system. This crate
//! lifts that prediction from single phases to *whole programs*: it
//! replays a per-rank event trace (compute phases, point-to-point
//! messages, collectives, waits) through the multi-node simulator and
//! reports
//!
//! * the predicted **makespan** with memory contention simulated,
//! * the **uncontended baseline** — the same schedule where every
//!   stream enjoys the bandwidth it would have alone, and
//! * their ratio, the whole-program **contention slowdown**.
//!
//! ## Pieces
//!
//! * [`trace`] — the JSON-lines trace grammar, strict typed parsing and
//!   byte-stable writing;
//! * [`generate`] — synthetic traces (2D halo exchange, ring-allreduce
//!   training step, pipeline stages);
//! * [`stream`] — streaming ingestion: the [`EventSource`] cursor
//!   abstraction and [`TraceReader`], which replays JSON-lines traces
//!   straight off a [`std::io::BufRead`] in memory bounded by ranks,
//!   not events;
//! * [`engine`] — the replay loop on [`mc_mpisim::World`];
//! * [`search`] — brute-force placement search over `(n, m_comp,
//!   m_comm)` plus a cross-check against the model's advisor;
//! * [`report`] — deterministic text reports and per-rank Gantt charts.
//!
//! ```
//! use mc_replay::generate::{self, GenParams};
//! use mc_replay::{replay, ReplayConfig};
//! use mc_topology::platforms;
//!
//! let trace = generate::halo2d(&GenParams::default());
//! let out = replay(&platforms::henri(), &trace, &ReplayConfig::default()).unwrap();
//! assert!(out.slowdown >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod generate;
pub mod report;
pub mod search;
pub mod stream;
pub mod trace;

pub use engine::{
    replay, replay_with, run_once, run_source, EventSpan, ReplayConfig, ReplayError, ReplayOutcome,
    ReplayRun, SourceRun, KINDS,
};
pub use mc_mpisim::CommMode;
pub use search::{
    advisor_crosscheck, phase_profile, search, Crosscheck, SearchOutcome, SearchPoint,
};
pub use stream::{EventSource, TraceReader, TraceSource};
pub use trace::{CollectiveOp, EventKind, Trace, TraceError};
