//! # mc-viz — figure rendering
//!
//! Hand-rolled SVG and ASCII plotting used by the reproduction harness to
//! regenerate the paper's figures: dual-axis subplots (Figs. 3-8), the
//! stacked-bandwidth chart (Fig. 2), subplot grids, and a terminal
//! rendering of the machine diagram (Fig. 1), plus self-contained HTML
//! run reports ([`HtmlReport`]). No dependencies beyond `serde` and the
//! workspace's own `mc-obs`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ascii;
pub mod chart;
pub mod gantt;
pub mod grid;
pub mod heatmap;
pub mod report;
pub mod stacked;
pub mod svg;

pub use ascii::{line_plot, topology_diagram, TopologySketch};
pub use chart::{DualAxisChart, Series, SeriesStyle, YAxis, ALONE_COLOR, COMM_COLOR, COMP_COLOR};
pub use gantt::{Gantt, GanttBar, GanttRow};
pub use grid::ChartGrid;
pub use heatmap::Heatmap;
pub use report::HtmlReport;
pub use stacked::{MarkedPoint, StackedData};
pub use svg::{Scale, Svg};
