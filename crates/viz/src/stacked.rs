//! Stacked-bandwidth chart — the paper's Fig. 2.
//!
//! The parallel-phase bandwidths are stacked (computation area below,
//! communication area on top) so the share of the bus capacity between the
//! two streams is visible; the compute-alone curve is drawn on top as a
//! line, and the model's calibration points (`(Nmax_par, Tmax_par)`,
//! `(Nmax_seq, Tmax_seq)`, `(Nmax_seq, Tmax2_par)`, `(1, Bcomp_seq)`) are
//! marked.

use serde::{Deserialize, Serialize};

use crate::chart::{ALONE_COLOR, COMM_COLOR, COMP_COLOR};
use crate::svg::{Scale, Svg};

/// One labelled calibration point drawn over the stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkedPoint {
    /// Core count (x).
    pub n: f64,
    /// Bandwidth (y).
    pub value: f64,
    /// Label written next to the marker.
    pub label: String,
}

/// Input data of the stacked chart: one entry per core count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackedData {
    /// Chart title.
    pub title: String,
    /// Core counts (x values), ascending.
    pub n_cores: Vec<f64>,
    /// Parallel-phase computation bandwidth per core count.
    pub comp_par: Vec<f64>,
    /// Parallel-phase communication bandwidth per core count.
    pub comm_par: Vec<f64>,
    /// Compute-alone bandwidth per core count.
    pub comp_alone: Vec<f64>,
    /// Calibration points to mark.
    pub marks: Vec<MarkedPoint>,
}

impl StackedData {
    /// Render at the given pixel size. Panics if the series lengths
    /// disagree.
    pub fn render(&self, width: f64, height: f64) -> Svg {
        assert_eq!(self.n_cores.len(), self.comp_par.len(), "series mismatch");
        assert_eq!(self.n_cores.len(), self.comm_par.len(), "series mismatch");
        assert_eq!(self.n_cores.len(), self.comp_alone.len(), "series mismatch");
        let mut svg = Svg::new(width, height);
        let (ml, mr, mt, mb) = (52.0, 16.0, 30.0, 40.0);
        let (x0, x1, y0, y1) = (ml, width - mr, height - mb, mt);

        let top = self
            .comp_par
            .iter()
            .zip(&self.comm_par)
            .map(|(a, b)| a + b)
            .fold(1.0f64, f64::max)
            .max(self.comp_alone.iter().copied().fold(0.0, f64::max));
        let xmax = self.n_cores.last().copied().unwrap_or(1.0);
        let xs = Scale::new(0.0, xmax, x0, x1);
        let ys = Scale::new(0.0, top * 1.1, y0, y1);

        // Computation area (0 → comp_par).
        let mut comp_poly: Vec<(f64, f64)> = self
            .n_cores
            .iter()
            .zip(&self.comp_par)
            .map(|(&n, &v)| (xs.map(n), ys.map(v)))
            .collect();
        comp_poly.push((xs.map(xmax), ys.map(0.0)));
        comp_poly.push((xs.map(self.n_cores[0]), ys.map(0.0)));
        svg.polygon(&comp_poly, COMP_COLOR, 0.55);

        // Communication area (comp_par → comp_par + comm_par).
        let mut comm_poly: Vec<(f64, f64)> = self
            .n_cores
            .iter()
            .zip(self.comp_par.iter().zip(&self.comm_par))
            .map(|(&n, (&c, &m))| (xs.map(n), ys.map(c + m)))
            .collect();
        let lower: Vec<(f64, f64)> = self
            .n_cores
            .iter()
            .zip(&self.comp_par)
            .rev()
            .map(|(&n, &v)| (xs.map(n), ys.map(v)))
            .collect();
        comm_poly.extend(lower);
        svg.polygon(&comm_poly, COMM_COLOR, 0.55);

        // Compute-alone line.
        let alone: Vec<(f64, f64)> = self
            .n_cores
            .iter()
            .zip(&self.comp_alone)
            .map(|(&n, &v)| (xs.map(n), ys.map(v)))
            .collect();
        svg.polyline(&alone, ALONE_COLOR, 2.0, false);

        // Axes.
        svg.rect(x0, y1, x1 - x0, y0 - y1, "#333", "none", 0.8);
        for t in xs.ticks(8) {
            let px = xs.map(t);
            svg.line(px, y0, px, y0 + 4.0, "#333", 0.8);
            svg.text(px, y0 + 15.0, 9.0, "middle", &format!("{t:.0}"));
        }
        for t in ys.ticks(6) {
            let py = ys.map(t);
            svg.line(x0 - 4.0, py, x0, py, "#333", 0.8);
            svg.text(x0 - 6.0, py + 3.0, 9.0, "end", &format!("{t:.0}"));
        }
        svg.text(
            (x0 + x1) / 2.0,
            height - 8.0,
            10.5,
            "middle",
            "Number of computing cores",
        );
        svg.vtext(
            14.0,
            (y0 + y1) / 2.0,
            10.5,
            "Stacked memory bandwidth (GB/s)",
        );
        svg.text((x0 + x1) / 2.0, 16.0, 12.0, "middle", &self.title);

        // Calibration marks.
        for m in &self.marks {
            let (px, py) = (xs.map(m.n), ys.map(m.value));
            svg.circle(px, py, 4.0, "#d62728");
            svg.text(px + 6.0, py - 6.0, 9.5, "start", &m.label);
        }
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> StackedData {
        StackedData {
            title: "henri-subnuma, local placement".into(),
            n_cores: (1..=17).map(|n| n as f64).collect(),
            comp_par: (1..=17).map(|n| (n as f64 * 5.6).min(40.0)).collect(),
            comm_par: (1..=17)
                .map(|n| (42.0 - n as f64 * 5.6).clamp(2.8, 11.3))
                .collect(),
            comp_alone: (1..=17).map(|n| (n as f64 * 5.6).min(42.0)).collect(),
            marks: vec![MarkedPoint {
                n: 1.0,
                value: 5.6,
                label: "(1, Bcomp_seq)".into(),
            }],
        }
    }

    #[test]
    fn renders_two_areas_a_line_and_marks() {
        let out = data().render(640.0, 400.0).render();
        assert_eq!(out.matches("<polygon").count(), 2);
        assert!(out.contains("<polyline"));
        assert!(out.contains("Bcomp_seq"));
        assert!(out.contains("Stacked memory bandwidth"));
    }

    #[test]
    #[should_panic(expected = "series mismatch")]
    fn mismatched_series_panic() {
        let mut d = data();
        d.comm_par.pop();
        d.render(100.0, 100.0);
    }
}
