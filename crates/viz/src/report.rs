//! Self-contained HTML run reports: one file an operator can open to
//! answer "where did the time go" for a replay, a schedule run or a
//! serve session.
//!
//! The report is **zero-dependency by construction**: inline `<style>`,
//! inline SVG figures, plain tables — no `src=`/`href=` attributes, no
//! scripts, no external fonts. Writing the file is the only I/O the
//! caller performs; rendering is pure and byte-stable for a given
//! input, so reports are goldenable like every other exporter.
//!
//! Sections are appended in call order: run-metadata header, SVG
//! figures (Gantt timelines), arbitrary tables, preformatted text, and
//! a [`MetricsSnapshot`] expansion (counters, histogram summaries,
//! spans) via [`HtmlReport::metrics`].

use std::fmt::Write as _;

use mc_obs::MetricsSnapshot;

use crate::svg::Svg;

/// Escape text for HTML element content.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// One report section.
#[derive(Debug, Clone)]
enum Section {
    /// An inline SVG figure with a heading.
    Figure { heading: String, svg: String },
    /// A table with a heading, column names and stringly rows.
    Table {
        heading: String,
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    },
    /// Preformatted text (a CLI report verbatim).
    Pre { heading: String, body: String },
}

/// A report under construction; see the module docs.
#[derive(Debug, Clone)]
pub struct HtmlReport {
    title: String,
    meta: Vec<(String, String)>,
    sections: Vec<Section>,
}

impl HtmlReport {
    /// Start a report with the given page title.
    pub fn new(title: &str) -> Self {
        HtmlReport {
            title: title.to_string(),
            meta: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Add one run-metadata entry (platform, ranks, makespan, …) to the
    /// header block.
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Add an inline SVG figure.
    pub fn figure(&mut self, heading: &str, svg: &Svg) {
        self.sections.push(Section::Figure {
            heading: heading.to_string(),
            svg: svg.render(),
        });
    }

    /// Add a table. Rows shorter than `columns` render with trailing
    /// empty cells.
    pub fn table(&mut self, heading: &str, columns: &[&str], rows: Vec<Vec<String>>) {
        self.sections.push(Section::Table {
            heading: heading.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
        });
    }

    /// Add a preformatted text block (e.g. the CLI's text report).
    pub fn pre(&mut self, heading: &str, body: &str) {
        self.sections.push(Section::Pre {
            heading: heading.to_string(),
            body: body.to_string(),
        });
    }

    /// Expand a metrics snapshot into counter, histogram-summary and
    /// span tables (each section only when non-empty). Incomplete spans
    /// — open at snapshot time — are marked in their own column.
    pub fn metrics(&mut self, snap: &MetricsSnapshot) {
        fn tags(t: &[(String, String)]) -> String {
            if t.is_empty() {
                return "-".to_string();
            }
            t.iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        }
        if !snap.counters.is_empty() {
            let rows = snap
                .counters
                .iter()
                .map(|((name, t), v)| vec![name.clone(), tags(t), v.to_string()])
                .collect();
            self.table("Counters", &["name", "tags", "value"], rows);
        }
        if !snap.histograms.is_empty() {
            let rows = snap
                .histograms
                .iter()
                .map(|((name, t), h)| {
                    vec![
                        name.clone(),
                        tags(t),
                        h.count.to_string(),
                        format!("{:.6}", h.mean()),
                        format!("{:.6}", h.min),
                        format!("{:.6}", h.max),
                    ]
                })
                .collect();
            self.table(
                "Histograms",
                &["name", "tags", "count", "mean", "min", "max"],
                rows,
            );
        }
        if !snap.spans.is_empty() {
            let rows = snap
                .spans
                .iter()
                .map(|s| {
                    vec![
                        s.stage.clone(),
                        tags(&s.tags),
                        format!("{:.6}", s.start_s),
                        format!("{:.6}", s.duration_s),
                        if s.incomplete { "incomplete" } else { "" }.to_string(),
                    ]
                })
                .collect();
            self.table(
                "Spans",
                &["stage", "tags", "start_s", "duration_s", ""],
                rows,
            );
        }
    }

    /// Render the complete, self-contained HTML document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        let _ = writeln!(out, "<title>{}</title>", esc(&self.title));
        out.push_str(
            "<style>\n\
             body{font-family:sans-serif;margin:2em auto;max-width:960px;color:#222}\n\
             h1{font-size:1.4em;border-bottom:2px solid #555;padding-bottom:.2em}\n\
             h2{font-size:1.1em;margin-top:1.6em}\n\
             table{border-collapse:collapse;font-size:.85em}\n\
             th,td{border:1px solid #bbb;padding:.25em .6em;text-align:left}\n\
             th{background:#eee}\n\
             dl.meta{display:grid;grid-template-columns:max-content 1fr;gap:.2em 1em}\n\
             dl.meta dt{font-weight:bold}\n\
             dl.meta dd{margin:0}\n\
             pre{background:#f6f6f6;padding:.8em;overflow-x:auto;font-size:.85em}\n\
             svg{max-width:100%;height:auto}\n\
             </style>\n</head>\n<body>\n",
        );
        let _ = writeln!(out, "<h1>{}</h1>", esc(&self.title));
        if !self.meta.is_empty() {
            out.push_str("<dl class=\"meta\">\n");
            for (k, v) in &self.meta {
                let _ = writeln!(out, "<dt>{}</dt><dd>{}</dd>", esc(k), esc(v));
            }
            out.push_str("</dl>\n");
        }
        for section in &self.sections {
            match section {
                Section::Figure { heading, svg } => {
                    let _ = writeln!(out, "<h2>{}</h2>", esc(heading));
                    // The SVG is inlined verbatim: mc-viz documents
                    // escape their own text content and reference
                    // nothing external.
                    out.push_str(svg);
                }
                Section::Table {
                    heading,
                    columns,
                    rows,
                } => {
                    let _ = writeln!(out, "<h2>{}</h2>", esc(heading));
                    out.push_str("<table>\n<tr>");
                    for c in columns {
                        let _ = write!(out, "<th>{}</th>", esc(c));
                    }
                    out.push_str("</tr>\n");
                    for row in rows {
                        out.push_str("<tr>");
                        for i in 0..columns.len() {
                            let cell = row.get(i).map(String::as_str).unwrap_or("");
                            let _ = write!(out, "<td>{}</td>", esc(cell));
                        }
                        out.push_str("</tr>\n");
                    }
                    out.push_str("</table>\n");
                }
                Section::Pre { heading, body } => {
                    let _ = writeln!(out, "<h2>{}</h2>", esc(heading));
                    let _ = writeln!(out, "<pre>{}</pre>", esc(body));
                }
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_obs::{Recorder, Registry};

    fn sample() -> HtmlReport {
        let mut rep = HtmlReport::new("trace replay on henri");
        rep.meta("platform", "henri");
        rep.meta("slowdown", "1.31x");
        let mut svg = Svg::new(100.0, 40.0);
        svg.rect(5.0, 5.0, 50.0, 10.0, "#555", "#1f77b4", 0.5);
        rep.figure("Timeline", &svg);
        rep.table(
            "Comparison",
            &["policy", "makespan_s"],
            vec![vec!["first_fit".into(), "1.25".into()]],
        );
        rep.pre("Report", "line one\nline <two> & 'three'");
        rep
    }

    #[test]
    fn renders_a_complete_document() {
        let html = sample().render();
        assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
        assert!(html.trim_end().ends_with("</html>"), "{html}");
        assert!(html.contains("<h1>trace replay on henri</h1>"));
        assert!(html.contains("<dt>platform</dt><dd>henri</dd>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<th>policy</th>"));
        assert!(html.contains("<td>first_fit</td>"));
        assert!(html.contains("line &lt;two&gt; &amp;"));
    }

    #[test]
    fn report_is_self_contained() {
        // No external references of any kind: no src= or href=
        // attributes, no <script>, no <link>.
        let html = sample().render();
        assert!(!html.contains("src="), "{html}");
        assert!(!html.contains("href="), "{html}");
        assert!(!html.contains("<script"), "{html}");
        assert!(!html.contains("<link"), "{html}");
    }

    #[test]
    fn metrics_expand_into_tables() {
        use mc_obs::TagValue;
        let r = Registry::new();
        r.add("replay.ranks", &[], 4);
        r.observe(
            "replay.makespan_seconds",
            &[("platform", TagValue::Str("henri"))],
            1.5,
        );
        r.record_span("replay", &[], 0.0, 2.0);
        let _open = mc_obs::Recorder::span_enter(&r, "serve.request", &[]);
        let mut rep = HtmlReport::new("metrics");
        rep.metrics(&r.snapshot());
        let html = rep.render();
        assert!(html.contains("<h2>Counters</h2>"), "{html}");
        assert!(html.contains("<td>replay.ranks</td>"), "{html}");
        assert!(html.contains("<h2>Histograms</h2>"), "{html}");
        assert!(html.contains("platform=henri"), "{html}");
        assert!(html.contains("<h2>Spans</h2>"), "{html}");
        assert!(html.contains("<td>incomplete</td>"), "{html}");
    }

    #[test]
    fn empty_snapshot_adds_no_sections() {
        let mut rep = HtmlReport::new("empty");
        rep.metrics(&MetricsSnapshot::default());
        let html = rep.render();
        assert!(!html.contains("<h2>"), "{html}");
        assert!(!html.contains("<table>"), "{html}");
    }

    #[test]
    fn hostile_titles_and_cells_are_escaped() {
        let mut rep = HtmlReport::new("<script>alert(1)</script>");
        rep.meta("k", "<img src=x>");
        rep.table("t\"", &["<col>"], vec![vec!["<cell>".into()]]);
        let html = rep.render();
        assert!(!html.contains("<script>alert"), "{html}");
        assert!(!html.contains("<img"), "{html}");
        assert!(html.contains("&lt;col&gt;"));
        assert!(html.contains("&lt;cell&gt;"));
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }
}
