//! Minimal SVG document builder — just enough vector-graphics surface for
//! the paper's figures (polylines, markers, axes, text, filled areas),
//! hand-rolled to keep the dependency set to the approved crates.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
    defs: String,
    clip_seq: usize,
    embed_seq: usize,
}

/// Escape text for XML — both element content and attribute values, so the
/// single quote (`&apos;`) must be covered too.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

impl Svg {
    /// Start a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
            defs: String::new(),
            clip_seq: 0,
            embed_seq: 0,
        }
    }

    /// Document width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// A polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64, dashed: bool) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let dash = if dashed {
            r#" stroke-dasharray="6 3""#
        } else {
            ""
        };
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"{dash}/>"#,
            pts.join(" ")
        );
    }

    /// A closed filled polygon (used by stacked areas).
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, opacity: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{fill}" fill-opacity="{opacity}" stroke="none"/>"#,
            pts.join(" ")
        );
    }

    /// A filled circle marker.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
        );
    }

    /// A downward triangle marker (the paper's ▼ for parallel-phase
    /// measurements).
    pub fn triangle_down(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let pts = [(cx - r, cy - r * 0.8), (cx + r, cy - r * 0.8), (cx, cy + r)];
        self.polygon(&pts, fill, 1.0);
    }

    /// An axis-aligned rectangle outline or fill.
    #[allow(clippy::too_many_arguments)]
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, stroke: &str, fill: &str, sw: f64) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" stroke="{stroke}" fill="{fill}" stroke-width="{sw}"/>"#
        );
    }

    /// Text with an anchor: "start", "middle" or "end".
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            esc(content)
        );
    }

    /// Text rotated 90° counter-clockwise around its anchor (for y-axis
    /// labels).
    pub fn vtext(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            esc(content)
        );
    }

    /// Open a group clipped to an axis-aligned rectangle. Must be paired
    /// with [`Svg::pop_clip`]. The clip path lands in the document's
    /// `<defs>`, which [`Svg::embed`] carries over.
    pub fn push_clip_rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        let id = format!("clip{}", self.clip_seq);
        self.clip_seq += 1;
        let _ = writeln!(
            self.defs,
            r#"<clipPath id="{id}"><rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}"/></clipPath>"#
        );
        let _ = writeln!(self.body, r##"<g clip-path="url(#{id})">"##);
    }

    /// Close a group opened by [`Svg::push_clip_rect`].
    pub fn pop_clip(&mut self) {
        let _ = writeln!(self.body, "</g>");
    }

    /// Embed another document at an offset (used by the subplot grid).
    ///
    /// The child's `<defs>` (clip paths) come along, with every `id`
    /// rewritten to a per-embed namespace so two embedded children cannot
    /// collide (both start their own ids at `clip0`).
    pub fn embed(&mut self, other: &Svg, x: f64, y: f64) {
        let prefix = format!("e{}-", self.embed_seq);
        self.embed_seq += 1;
        self.defs
            .push_str(&other.defs.replace("id=\"", &format!("id=\"{prefix}")));
        let _ = writeln!(self.body, r#"<g transform="translate({x:.2} {y:.2})">"#);
        self.body
            .push_str(&other.body.replace("url(#", &format!("url(#{prefix}")));
        let _ = writeln!(self.body, "</g>");
    }

    /// Finish the document.
    pub fn render(&self) -> String {
        let defs = if self.defs.is_empty() {
            String::new()
        } else {
            format!("<defs>\n{}</defs>\n", self.defs)
        };
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">\n{}<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, defs, self.body
        )
    }
}

/// A linear mapping from data space to pixel space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Data-space minimum.
    pub d0: f64,
    /// Data-space maximum.
    pub d1: f64,
    /// Pixel-space coordinate of `d0`.
    pub p0: f64,
    /// Pixel-space coordinate of `d1`.
    pub p1: f64,
}

impl Scale {
    /// Build a scale.
    pub fn new(d0: f64, d1: f64, p0: f64, p1: f64) -> Self {
        assert!(d1 > d0, "degenerate data range [{d0}, {d1}]");
        Scale { d0, d1, p0, p1 }
    }

    /// Map a data value to pixels (clamped to the data range).
    pub fn map(&self, v: f64) -> f64 {
        let t = ((v - self.d0) / (self.d1 - self.d0)).clamp(0.0, 1.0);
        self.p0 + t * (self.p1 - self.p0)
    }

    /// Round-number tick positions (about `n` of them).
    pub fn ticks(&self, n: usize) -> Vec<f64> {
        let span = self.d1 - self.d0;
        let raw_step = span / n.max(1) as f64;
        let mag = 10f64.powf(raw_step.log10().floor());
        let step = [1.0, 2.0, 5.0, 10.0]
            .iter()
            .map(|m| m * mag)
            .find(|s| span / s <= n as f64)
            .unwrap_or(mag * 10.0);
        let mut v = (self.d0 / step).ceil() * step;
        let mut out = Vec::new();
        while v <= self.d1 + 1e-9 {
            out.push(v);
            v += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_wellformed_shell() {
        let mut s = Svg::new(100.0, 50.0);
        s.line(0.0, 0.0, 10.0, 10.0, "black", 1.0);
        s.text(5.0, 5.0, 10.0, "middle", "a<b&c");
        let out = s.render();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("a&lt;b&amp;c"));
        assert!(out.contains("<line"));
    }

    #[test]
    fn scale_maps_endpoints_and_midpoint() {
        let sc = Scale::new(0.0, 10.0, 100.0, 200.0);
        assert_eq!(sc.map(0.0), 100.0);
        assert_eq!(sc.map(10.0), 200.0);
        assert_eq!(sc.map(5.0), 150.0);
    }

    #[test]
    fn scale_clamps_out_of_range() {
        let sc = Scale::new(0.0, 10.0, 0.0, 100.0);
        assert_eq!(sc.map(-5.0), 0.0);
        assert_eq!(sc.map(50.0), 100.0);
    }

    #[test]
    fn inverted_pixel_axis_works() {
        // SVG y grows downwards: p0 > p1 is the normal case for y-scales.
        let sc = Scale::new(0.0, 10.0, 100.0, 0.0);
        assert_eq!(sc.map(0.0), 100.0);
        assert_eq!(sc.map(10.0), 0.0);
    }

    #[test]
    fn ticks_are_round_and_cover_range() {
        let sc = Scale::new(0.0, 17.0, 0.0, 1.0);
        let ticks = sc.ticks(6);
        assert!(!ticks.is_empty());
        assert!(ticks.len() <= 8);
        for t in &ticks {
            assert!((0.0..=17.0).contains(t));
        }
        // 0 must be a tick of a 0-anchored range.
        assert_eq!(ticks[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate data range")]
    fn degenerate_scale_panics() {
        Scale::new(5.0, 5.0, 0.0, 1.0);
    }

    #[test]
    fn embed_offsets_content() {
        let mut inner = Svg::new(10.0, 10.0);
        inner.circle(1.0, 1.0, 1.0, "red");
        let mut outer = Svg::new(100.0, 100.0);
        outer.embed(&inner, 50.0, 60.0);
        let out = outer.render();
        assert!(out.contains("translate(50.00 60.00)"));
        assert!(out.contains("<circle"));
    }

    #[test]
    fn esc_covers_attribute_context() {
        // Hostile labels: every XML metacharacter, including the single
        // quote that only matters in attribute values.
        let mut s = Svg::new(10.0, 10.0);
        s.text(1.0, 1.0, 8.0, "start", r#"a<b&c>"d'e"#);
        s.vtext(2.0, 2.0, 8.0, "x' onload='alert(1)");
        let out = s.render();
        assert!(out.contains("a&lt;b&amp;c&gt;&quot;d&apos;e"));
        assert!(out.contains("x&apos; onload=&apos;alert(1)"));
        assert!(!out.contains("d'e"));
        assert!(!out.contains("onload='"));
    }

    #[test]
    fn embed_carries_clip_defs_with_unique_ids() {
        // Two children each define their own clip0: the parent must keep
        // both clip paths and keep their references pointing at distinct
        // ids — the old embed dropped child defs entirely.
        let child = |color: &str| {
            let mut c = Svg::new(10.0, 10.0);
            c.push_clip_rect(0.0, 0.0, 5.0, 5.0);
            c.circle(1.0, 1.0, 1.0, color);
            c.pop_clip();
            c
        };
        let mut outer = Svg::new(100.0, 100.0);
        outer.embed(&child("red"), 0.0, 0.0);
        outer.embed(&child("blue"), 50.0, 0.0);
        let out = outer.render();
        assert_eq!(out.matches("<clipPath").count(), 2);
        assert!(out.contains(r#"id="e0-clip0""#));
        assert!(out.contains(r#"id="e1-clip0""#));
        assert!(out.contains("url(#e0-clip0)"));
        assert!(out.contains("url(#e1-clip0)"));
        // No reference is left pointing at the (gone) un-prefixed id.
        assert!(!out.contains("url(#clip0)"));
    }

    #[test]
    fn nested_embeds_keep_references_consistent() {
        let mut inner = Svg::new(10.0, 10.0);
        inner.push_clip_rect(0.0, 0.0, 5.0, 5.0);
        inner.circle(1.0, 1.0, 1.0, "red");
        inner.pop_clip();
        let mut mid = Svg::new(20.0, 20.0);
        mid.embed(&inner, 1.0, 1.0);
        let mut outer = Svg::new(40.0, 40.0);
        outer.embed(&mid, 2.0, 2.0);
        let out = outer.render();
        assert!(out.contains(r#"id="e0-e0-clip0""#));
        assert!(out.contains("url(#e0-e0-clip0)"));
    }

    #[test]
    fn markers_render() {
        let mut s = Svg::new(10.0, 10.0);
        s.triangle_down(5.0, 5.0, 2.0, "blue");
        s.rect(0.0, 0.0, 10.0, 10.0, "black", "none", 0.5);
        let out = s.render();
        assert!(out.contains("<polygon"));
        assert!(out.contains("<rect"));
    }
}
