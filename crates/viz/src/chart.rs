//! Dual-axis line/marker charts — the building block of the paper's
//! Figs. 3–8 subplots: network bandwidth on the left Y-axis (blue), memory
//! bandwidth for computations on the right Y-axis (orange), measurements as
//! markers (● alone, ▼ parallel) and model predictions as lines.

use serde::{Deserialize, Serialize};

use crate::svg::{Scale, Svg};

/// Which Y-axis a series reads on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YAxis {
    /// Left axis (network bandwidth in the paper).
    Left,
    /// Right axis (compute memory bandwidth in the paper).
    Right,
}

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesStyle {
    /// Solid line (model predictions).
    Line,
    /// Dashed line.
    DashedLine,
    /// Filled circles (measurements of the alone phases).
    Circles,
    /// Downward triangles (measurements of the parallel phase).
    Triangles,
}

/// One data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name (legend).
    pub label: String,
    /// `(x, y)` points in data space.
    pub points: Vec<(f64, f64)>,
    /// CSS colour.
    pub color: String,
    /// Drawing style.
    pub style: SeriesStyle,
    /// Axis the `y` values read on.
    pub axis: YAxis,
}

/// A dual-axis chart description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualAxisChart {
    /// Title above the plot (the paper writes the placement there).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Left Y-axis label.
    pub left_label: String,
    /// Right Y-axis label.
    pub right_label: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Highlight frame (the paper marks calibration subplots with a
    /// thicker frame and bold title).
    pub highlighted: bool,
    /// Draw a legend box listing the series (off in dense subplot grids,
    /// on for standalone figures).
    pub legend: bool,
}

impl DualAxisChart {
    /// Upper bound of an axis from the data (with headroom), at least 1.
    fn axis_max(&self, axis: YAxis) -> f64 {
        let max = self
            .series
            .iter()
            .filter(|s| s.axis == axis)
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(0.0f64, f64::max);
        (max * 1.12).max(1.0)
    }

    fn x_max(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .fold(1.0f64, f64::max)
    }

    /// Render at the given pixel size.
    pub fn render(&self, width: f64, height: f64) -> Svg {
        let mut svg = Svg::new(width, height);
        let (ml, mr, mt, mb) = (44.0, 44.0, 24.0, 34.0);
        let x0 = ml;
        let x1 = width - mr;
        let y0 = height - mb;
        let y1 = mt;

        let xs = Scale::new(0.0, self.x_max(), x0, x1);
        let ls = Scale::new(0.0, self.axis_max(YAxis::Left), y0, y1);
        let rs = Scale::new(0.0, self.axis_max(YAxis::Right), y0, y1);

        // Frame.
        let frame_w = if self.highlighted { 2.5 } else { 0.8 };
        svg.rect(x0, y1, x1 - x0, y0 - y1, "#333", "none", frame_w);

        // Ticks and labels.
        for t in xs.ticks(6) {
            let px = xs.map(t);
            svg.line(px, y0, px, y0 + 4.0, "#333", 0.8);
            svg.text(px, y0 + 15.0, 9.0, "middle", &format!("{t:.0}"));
        }
        for t in ls.ticks(5) {
            let py = ls.map(t);
            svg.line(x0 - 4.0, py, x0, py, "#1f77b4", 0.8);
            svg.text(x0 - 6.0, py + 3.0, 9.0, "end", &format!("{t:.0}"));
        }
        for t in rs.ticks(5) {
            let py = rs.map(t);
            svg.line(x1, py, x1 + 4.0, py, "#ff7f0e", 0.8);
            svg.text(x1 + 6.0, py + 3.0, 9.0, "start", &format!("{t:.0}"));
        }
        svg.text((x0 + x1) / 2.0, height - 6.0, 10.0, "middle", &self.x_label);
        svg.vtext(12.0, (y0 + y1) / 2.0, 10.0, &self.left_label);
        svg.vtext(width - 8.0, (y0 + y1) / 2.0, 10.0, &self.right_label);
        let title_size = if self.highlighted { 11.5 } else { 10.5 };
        svg.text((x0 + x1) / 2.0, 14.0, title_size, "middle", &self.title);

        // Legend.
        if self.legend && !self.series.is_empty() {
            let entry_h = 13.0;
            let box_w = 6.0
                + 22.0
                + self.series.iter().map(|s| s.label.len()).max().unwrap_or(0) as f64 * 5.6;
            let box_h = 6.0 + self.series.len() as f64 * entry_h;
            let (bx, by) = (x0 + 8.0, y1 + 8.0);
            svg.rect(bx, by, box_w, box_h, "#aaa", "white", 0.7);
            for (i, s) in self.series.iter().enumerate() {
                let ey = by + 6.0 + i as f64 * entry_h + 5.0;
                match s.style {
                    SeriesStyle::Line => svg.line(bx + 4.0, ey, bx + 20.0, ey, &s.color, 1.8),
                    SeriesStyle::DashedLine => {
                        svg.polyline(&[(bx + 4.0, ey), (bx + 20.0, ey)], &s.color, 1.4, true)
                    }
                    SeriesStyle::Circles => svg.circle(bx + 12.0, ey, 2.4, &s.color),
                    SeriesStyle::Triangles => svg.triangle_down(bx + 12.0, ey, 3.0, &s.color),
                }
                svg.text(bx + 24.0, ey + 3.2, 9.0, "start", &s.label);
            }
        }

        // Series, clipped to the plot frame (markers near the frame edge
        // would otherwise spill into the margins of neighbouring subplots).
        svg.push_clip_rect(x0 - 4.0, y1 - 4.0, (x1 - x0) + 8.0, (y0 - y1) + 8.0);
        for s in &self.series {
            let ys = match s.axis {
                YAxis::Left => &ls,
                YAxis::Right => &rs,
            };
            let px: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|&(x, y)| (xs.map(x), ys.map(y)))
                .collect();
            match s.style {
                SeriesStyle::Line => svg.polyline(&px, &s.color, 1.8, false),
                SeriesStyle::DashedLine => svg.polyline(&px, &s.color, 1.4, true),
                SeriesStyle::Circles => {
                    for &(x, y) in &px {
                        svg.circle(x, y, 2.4, &s.color);
                    }
                }
                SeriesStyle::Triangles => {
                    for &(x, y) in &px {
                        svg.triangle_down(x, y, 3.0, &s.color);
                    }
                }
            }
        }
        svg.pop_clip();
        svg
    }
}

/// The paper's colour for communications (blue).
pub const COMM_COLOR: &str = "#1f77b4";
/// The paper's colour for computations (orange).
pub const COMP_COLOR: &str = "#ff7f0e";
/// Colour for the compute-alone reference curve (green, Fig. 2).
pub const ALONE_COLOR: &str = "#2ca02c";

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> DualAxisChart {
        DualAxisChart {
            title: "comp on numa0, comm on numa1".into(),
            x_label: "Number of computing cores".into(),
            left_label: "Network bandwidth (GB/s)".into(),
            right_label: "Memory bandwidth (GB/s)".into(),
            series: vec![
                Series {
                    label: "comm model".into(),
                    points: (1..=17).map(|n| (n as f64, 11.0)).collect(),
                    color: COMM_COLOR.into(),
                    style: SeriesStyle::Line,
                    axis: YAxis::Left,
                },
                Series {
                    label: "comp measured".into(),
                    points: (1..=17).map(|n| (n as f64, 5.6 * n as f64)).collect(),
                    color: COMP_COLOR.into(),
                    style: SeriesStyle::Triangles,
                    axis: YAxis::Right,
                },
            ],
            highlighted: true,
            legend: false,
        }
    }

    #[test]
    fn renders_axes_series_and_title() {
        let svg = chart().render(320.0, 240.0).render();
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<polygon")); // triangles
        assert!(svg.contains("comp on numa0"));
        assert!(svg.contains("Network bandwidth"));
    }

    #[test]
    fn axis_max_has_headroom() {
        let c = chart();
        assert!(c.axis_max(YAxis::Left) > 11.0);
        assert!(c.axis_max(YAxis::Right) > 5.6 * 17.0);
    }

    #[test]
    fn empty_axis_defaults_to_one() {
        let mut c = chart();
        c.series.clear();
        assert_eq!(c.axis_max(YAxis::Left), 1.0);
        // Must still render without panicking.
        let _ = c.render(100.0, 100.0);
    }

    #[test]
    fn legend_lists_series_labels() {
        let with_legend = DualAxisChart {
            legend: true,
            ..chart()
        }
        .render(400.0, 300.0)
        .render();
        assert!(with_legend.contains("comm model"));
        assert!(with_legend.contains("comp measured"));
        let without = chart().render(400.0, 300.0).render();
        assert!(!without.contains("comm model"));
    }

    #[test]
    fn highlight_thickens_frame() {
        let thin = DualAxisChart {
            highlighted: false,
            ..chart()
        }
        .render(320.0, 240.0)
        .render();
        let thick = chart().render(320.0, 240.0).render();
        assert!(thick.contains("stroke-width=\"2.5\""));
        assert!(!thin.contains("stroke-width=\"2.5\""));
    }
}
