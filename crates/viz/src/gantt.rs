//! Gantt charts — execution timelines of overlapped compute phases and
//! message transfers from the MPI simulator.

use serde::{Deserialize, Serialize};

use crate::svg::{Scale, Svg};

/// One bar on a Gantt row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttBar {
    /// Start time, seconds.
    pub t0: f64,
    /// End time, seconds.
    pub t1: f64,
    /// CSS colour of the bar.
    pub color: String,
    /// Annotation drawn inside the bar (elided when it does not fit).
    pub label: String,
}

impl GanttBar {
    /// The bar's extent as an ordered `(lo, hi)` pair. Hand-edited or
    /// adversarial input can carry `t1 < t0`; normalizing here keeps
    /// [`Gantt::span`] and [`Gantt::render`] drawing the bar where it
    /// actually lies instead of a 1-px sliver at the wrong position.
    fn ordered(&self) -> (f64, f64) {
        if self.t1 < self.t0 {
            (self.t1, self.t0)
        } else {
            (self.t0, self.t1)
        }
    }
}

/// One row (entity) of a Gantt chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttRow {
    /// Row label (e.g. "rank 0 compute").
    pub label: String,
    /// Bars, any order.
    pub bars: Vec<GanttBar>,
}

/// A Gantt chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gantt {
    /// Figure title.
    pub title: String,
    /// Rows, drawn top to bottom.
    pub rows: Vec<GanttRow>,
}

impl Gantt {
    /// Time span covered by all bars, `(min, max)`.
    pub fn span(&self) -> (f64, f64) {
        let mut t_min = f64::INFINITY;
        let mut t_max = f64::NEG_INFINITY;
        for row in &self.rows {
            for bar in &row.bars {
                let (lo, hi) = bar.ordered();
                t_min = t_min.min(lo);
                t_max = t_max.max(hi);
            }
        }
        if t_min > t_max {
            (0.0, 1.0)
        } else {
            (t_min, t_max)
        }
    }

    /// Render at the given pixel width; row height is fixed.
    pub fn render(&self, width: f64) -> Svg {
        let row_h = 30.0;
        let (ml, mt, mb) = (130.0, 40.0, 36.0);
        let height = mt + self.rows.len() as f64 * row_h + mb;
        let mut svg = Svg::new(width, height);
        svg.text(width / 2.0, 22.0, 13.0, "middle", &self.title);

        let (t0, t1) = self.span();
        let span = (t1 - t0).max(1e-12);
        let xs = Scale::new(t0, t0 + span, ml, width - 20.0);

        for (r, row) in self.rows.iter().enumerate() {
            let y = mt + r as f64 * row_h;
            svg.text(ml - 8.0, y + row_h / 2.0 + 4.0, 10.5, "end", &row.label);
            svg.line(ml, y + row_h, width - 20.0, y + row_h, "#ddd", 0.6);
            for bar in &row.bars {
                let (lo, hi) = bar.ordered();
                let x0 = xs.map(lo);
                let x1 = xs.map(hi);
                svg.rect(
                    x0,
                    y + 5.0,
                    (x1 - x0).max(1.0),
                    row_h - 10.0,
                    "#555",
                    &bar.color,
                    0.5,
                );
                // Fit check counts characters, not bytes: a multi-byte
                // label ("64 MiB →") is no wider than its char count.
                if x1 - x0 > 8.0 * bar.label.chars().count() as f64 * 0.6 {
                    svg.text(
                        (x0 + x1) / 2.0,
                        y + row_h / 2.0 + 3.5,
                        9.5,
                        "middle",
                        &bar.label,
                    );
                }
            }
        }
        // Time axis.
        let y_axis = mt + self.rows.len() as f64 * row_h + 4.0;
        for tick in xs.ticks(8) {
            let px = xs.map(tick);
            svg.line(px, y_axis, px, y_axis + 4.0, "#333", 0.8);
            svg.text(px, y_axis + 16.0, 9.0, "middle", &format!("{:.2}", tick));
        }
        svg.text(
            (ml + width - 20.0) / 2.0,
            height - 6.0,
            10.5,
            "middle",
            "time (s)",
        );
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Gantt {
        Gantt {
            title: "overlap".into(),
            rows: vec![
                GanttRow {
                    label: "rank 0 compute".into(),
                    bars: vec![GanttBar {
                        t0: 0.0,
                        t1: 0.5,
                        color: "#ff7f0e".into(),
                        label: "iter 0".into(),
                    }],
                },
                GanttRow {
                    label: "net 1→0".into(),
                    bars: vec![GanttBar {
                        t0: 0.1,
                        t1: 0.3,
                        color: "#1f77b4".into(),
                        label: "64 MiB".into(),
                    }],
                },
            ],
        }
    }

    #[test]
    fn span_covers_all_bars() {
        assert_eq!(chart().span(), (0.0, 0.5));
    }

    #[test]
    fn empty_chart_has_unit_span_and_renders() {
        let g = Gantt {
            title: "empty".into(),
            rows: vec![],
        };
        assert_eq!(g.span(), (0.0, 1.0));
        let _ = g.render(400.0);
    }

    #[test]
    fn multibyte_labels_elide_by_char_count_not_bytes() {
        // "64 MiB →" is 8 chars but 10 bytes: at a width where 8 chars
        // fit, byte-based fitting would wrongly elide it.
        let label = "64 MiB →";
        assert_eq!(label.chars().count(), 8);
        assert_eq!(label.len(), 10);
        let bar_for = |label: &str| Gantt {
            title: "labels".into(),
            rows: vec![GanttRow {
                label: "row".into(),
                bars: vec![GanttBar {
                    t0: 0.0,
                    t1: 1.0,
                    color: "#1f77b4".into(),
                    label: label.into(),
                }],
            }],
        };
        // Pick a width where an 8-char label fits but a 10-char one
        // would not: bar pixels ≈ width - 150, threshold 4.8/char.
        let width = 150.0 + 8.0 * 8.0 * 0.6 + 4.0;
        let multi = bar_for(label).render(width).render();
        assert!(multi.contains("64 MiB"), "{multi}");
        // A genuinely-10-char ASCII label still elides at that width.
        let long = bar_for("64 MiB -)>").render(width).render();
        assert!(!long.contains("64 MiB"), "{long}");
    }

    #[test]
    fn reversed_bars_normalize_to_the_same_geometry() {
        let bar = |t0: f64, t1: f64| Gantt {
            title: "rev".into(),
            rows: vec![GanttRow {
                label: "row".into(),
                bars: vec![GanttBar {
                    t0,
                    t1,
                    color: "#1f77b4".into(),
                    label: String::new(),
                }],
            }],
        };
        let fwd = bar(0.2, 0.8);
        let rev = bar(0.8, 0.2);
        assert_eq!(fwd.span(), (0.2, 0.8));
        assert_eq!(rev.span(), (0.2, 0.8));
        // Identical SVG output: the reversed bar is drawn at the same
        // position and full width, not as a 1-px sliver.
        assert_eq!(fwd.render(400.0).render(), rev.render(400.0).render());
    }

    #[test]
    fn renders_rows_bars_and_axis() {
        let out = chart().render(600.0).render();
        assert!(out.contains("rank 0 compute"));
        assert!(out.contains("net 1"));
        assert!(out.contains("time (s)"));
        // Background + 2 bars.
        assert!(out.matches("<rect").count() >= 3);
    }
}
