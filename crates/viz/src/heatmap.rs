//! Heatmaps — used for the per-placement prediction-error matrix (an
//! extended-report-style view the paper's Table II aggregates away).

use serde::{Deserialize, Serialize};

use crate::svg::Svg;

/// A labelled matrix of values rendered as coloured cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Figure title.
    pub title: String,
    /// Column labels (x axis).
    pub col_labels: Vec<String>,
    /// Row labels (y axis).
    pub row_labels: Vec<String>,
    /// Row-major values; `rows × cols` entries.
    pub values: Vec<f64>,
    /// Unit suffix appended to the cell annotations (e.g. "%").
    pub unit: String,
}

impl Heatmap {
    fn rows(&self) -> usize {
        self.row_labels.len()
    }

    fn cols(&self) -> usize {
        self.col_labels.len()
    }

    /// Linear white→red colour ramp over the value range.
    fn color(&self, v: f64, max: f64) -> String {
        let t = if max > 0.0 {
            (v / max).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // white (255,255,255) → strong red (178, 24, 43)
        let r = 255.0 + t * (178.0 - 255.0);
        let g = 255.0 + t * (24.0 - 255.0);
        let b = 255.0 + t * (43.0 - 255.0);
        format!("rgb({:.0},{:.0},{:.0})", r, g, b)
    }

    /// Render at a given cell size.
    pub fn render(&self, cell: f64) -> Svg {
        assert_eq!(
            self.values.len(),
            self.rows() * self.cols(),
            "value count must be rows x cols"
        );
        let (ml, mt) = (90.0, 60.0);
        let width = ml + self.cols() as f64 * cell + 20.0;
        let height = mt + self.rows() as f64 * cell + 20.0;
        let mut svg = Svg::new(width, height);
        svg.text(width / 2.0, 20.0, 13.0, "middle", &self.title);

        let max = self.values.iter().cloned().fold(0.0f64, f64::max);
        for (i, v) in self.values.iter().enumerate() {
            let row = i / self.cols();
            let col = i % self.cols();
            let x = ml + col as f64 * cell;
            let y = mt + row as f64 * cell;
            svg.rect(x, y, cell, cell, "#999", &self.color(*v, max), 0.6);
            // Annotate: dark text on light cells, light on dark.
            svg.text(
                x + cell / 2.0,
                y + cell / 2.0 + 4.0,
                11.0,
                "middle",
                &format!("{v:.1}{}", self.unit),
            );
        }
        for (c, label) in self.col_labels.iter().enumerate() {
            svg.text(
                ml + c as f64 * cell + cell / 2.0,
                mt - 8.0,
                10.5,
                "middle",
                label,
            );
        }
        for (r, label) in self.row_labels.iter().enumerate() {
            svg.text(
                ml - 6.0,
                mt + r as f64 * cell + cell / 2.0 + 4.0,
                10.5,
                "end",
                label,
            );
        }
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> Heatmap {
        Heatmap {
            title: "comm error per placement".into(),
            col_labels: vec!["comp numa0".into(), "comp numa1".into()],
            row_labels: vec!["comm numa0".into(), "comm numa1".into()],
            values: vec![1.0, 2.0, 3.0, 12.0],
            unit: "%".into(),
        }
    }

    #[test]
    fn renders_cells_and_labels() {
        let out = map().render(70.0).render();
        assert_eq!(out.matches("<rect").count(), 1 + 4); // background + 4 cells
        assert!(out.contains("comp numa1"));
        assert!(out.contains("12.0%"));
    }

    #[test]
    fn color_scales_with_value() {
        let m = map();
        assert_eq!(m.color(0.0, 12.0), "rgb(255,255,255)");
        assert_eq!(m.color(12.0, 12.0), "rgb(178,24,43)");
    }

    #[test]
    fn zero_max_does_not_divide_by_zero() {
        let m = Heatmap {
            values: vec![0.0, 0.0, 0.0, 0.0],
            ..map()
        };
        assert_eq!(m.color(0.0, 0.0), "rgb(255,255,255)");
        let _ = m.render(50.0);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn wrong_shape_panics() {
        let mut m = map();
        m.values.pop();
        m.render(50.0);
    }
}
