//! ASCII rendering: terminal-friendly charts and the machine-topology
//! diagram of the paper's Fig. 1.

/// Internal shim so the crate stays dependency-light: only the pieces of
/// the topology the diagram needs.
mod mc_topology_shim {
    /// Minimal machine description consumed by [`super::topology_diagram`].
    #[derive(Debug, Clone)]
    pub struct TopologySketch {
        /// Machine name.
        pub name: String,
        /// Number of sockets.
        pub sockets: usize,
        /// Cores per socket.
        pub cores_per_socket: usize,
        /// NUMA nodes per socket.
        pub numa_per_socket: usize,
        /// Socket index hosting the NIC.
        pub nic_socket: usize,
        /// Network technology name.
        pub network: String,
        /// Inter-socket bus name (UPI, Infinity Fabric, …).
        pub bus: String,
    }
}

pub use mc_topology_shim::TopologySketch;

/// Render a simple XY line plot with unicode block characters.
/// `series` is a list of `(label, points)`; all series share the axes.
pub fn line_plot(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot area too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let xmin = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymax = all.iter().map(|p| p.1).fold(0.0f64, f64::max).max(1e-12);
    let xspan = (xmax - xmin).max(1e-12);

    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in *pts {
            let cx = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = ((1.0 - (y / ymax).clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            canvas[cy.min(height - 1)][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:8.1} ┤"));
    out.push_str(&canvas[0].iter().collect::<String>());
    out.push('\n');
    for row in &canvas[1..] {
        out.push_str("         │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("         └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "          {xmin:<8.0}{:>w$.0}\n",
        xmax,
        w = width - 8
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {label}\n", glyphs[si % glyphs.len()]));
    }
    out
}

/// Render the machine diagram of the paper's Fig. 1 in ASCII: sockets with
/// their NUMA nodes and cores, the inter-socket bus, and the NIC behind
/// PCIe.
pub fn topology_diagram(t: &TopologySketch) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", t.name));
    let cell = 26usize;
    let line = |s: &str| format!("| {s:<w$}|\n", w = cell - 2);
    for s in 0..t.sockets {
        out.push_str(&format!("+{}+\n", "-".repeat(cell - 1)));
        out.push_str(&line(&format!("Socket {s}")));
        for m in 0..t.numa_per_socket {
            let numa_id = s * t.numa_per_socket + m;
            out.push_str(&line(&format!("  NUMA node {numa_id} [RAM]")));
        }
        out.push_str(&line(&format!("  {} cores (PU)", t.cores_per_socket)));
        if s == t.nic_socket {
            out.push_str(&line(&format!("  PCIe -> NIC ({})", t.network)));
        }
        out.push_str(&format!("+{}+\n", "-".repeat(cell - 1)));
        if s + 1 < t.sockets {
            out.push_str(&format!("{:^w$}\n", format!("|| {} ||", t.bus), w = cell));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_plot_shows_all_series_glyphs() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 10.0 - i as f64)).collect();
        let out = line_plot(&[("up", &a), ("down", &b)], 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("up"));
        assert!(out.contains("down"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        assert_eq!(line_plot(&[], 40, 10), "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "plot area too small")]
    fn tiny_plot_panics() {
        let pts = [(0.0, 0.0)];
        let _ = line_plot(&[("x", &pts)], 2, 2);
    }

    #[test]
    fn topology_diagram_mentions_all_parts() {
        let t = TopologySketch {
            name: "henri".into(),
            sockets: 2,
            cores_per_socket: 18,
            numa_per_socket: 2,
            nic_socket: 0,
            network: "InfiniBand EDR".into(),
            bus: "UPI".into(),
        };
        let d = topology_diagram(&t);
        assert!(d.contains("Socket 0"));
        assert!(d.contains("Socket 1"));
        assert!(d.contains("NUMA node 3"));
        assert!(d.contains("NIC (InfiniBand EDR)"));
        assert!(d.contains("UPI"));
        // The NIC appears exactly once (only on its socket).
        assert_eq!(d.matches("NIC").count(), 1);
    }
}
