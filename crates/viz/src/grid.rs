//! Subplot grids — the layout of the paper's Figs. 3–8: one column per
//! computation-data placement, one row per communication-data placement,
//! calibration subplots highlighted.

use crate::chart::DualAxisChart;
use crate::svg::Svg;

/// A grid of dual-axis charts with an overall title.
#[derive(Debug, Clone)]
pub struct ChartGrid {
    /// Figure title.
    pub title: String,
    /// Row-major charts; all rows must have `cols` entries.
    pub charts: Vec<DualAxisChart>,
    /// Number of columns.
    pub cols: usize,
}

impl ChartGrid {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        assert!(self.cols > 0, "grid needs at least one column");
        assert_eq!(
            self.charts.len() % self.cols,
            0,
            "chart count {} not a multiple of cols {}",
            self.charts.len(),
            self.cols
        );
        self.charts.len() / self.cols
    }

    /// Render the grid; each cell is `cell_w` × `cell_h` pixels.
    pub fn render(&self, cell_w: f64, cell_h: f64) -> Svg {
        let rows = self.rows();
        let title_h = 30.0;
        let mut svg = Svg::new(self.cols as f64 * cell_w, rows as f64 * cell_h + title_h);
        svg.text(
            self.cols as f64 * cell_w / 2.0,
            20.0,
            14.0,
            "middle",
            &self.title,
        );
        for (i, chart) in self.charts.iter().enumerate() {
            let row = i / self.cols;
            let col = i % self.cols;
            let cell = chart.render(cell_w, cell_h);
            svg.embed(&cell, col as f64 * cell_w, title_h + row as f64 * cell_h);
        }
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::{Series, SeriesStyle, YAxis, COMM_COLOR};

    fn tiny_chart(title: &str) -> DualAxisChart {
        DualAxisChart {
            title: title.into(),
            x_label: "n".into(),
            left_label: "GB/s".into(),
            right_label: "GB/s".into(),
            series: vec![Series {
                label: "s".into(),
                points: vec![(1.0, 1.0), (2.0, 2.0)],
                color: COMM_COLOR.into(),
                style: SeriesStyle::Line,
                axis: YAxis::Left,
            }],
            highlighted: false,
            legend: false,
        }
    }

    #[test]
    fn four_cell_grid_renders() {
        let grid = ChartGrid {
            title: "henri (INTEL, INFINIBAND)".into(),
            charts: (0..4).map(|i| tiny_chart(&format!("cell{i}"))).collect(),
            cols: 2,
        };
        assert_eq!(grid.rows(), 2);
        let out = grid.render(200.0, 150.0).render();
        assert!(out.contains("cell0"));
        assert!(out.contains("cell3"));
        assert!(out.contains("henri (INTEL, INFINIBAND)"));
        assert_eq!(out.matches("translate(").count(), 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_grid_panics() {
        let grid = ChartGrid {
            title: "x".into(),
            charts: (0..3).map(|i| tiny_chart(&format!("c{i}"))).collect(),
            cols: 2,
        };
        grid.rows();
    }
}
