//! Black-box protocol tests for `memcontend serve`: the binary is
//! spawned with piped stdin/stdout and must honour the JSON-lines
//! contract — one response per request, in order, typed in-band errors,
//! exit 0 at EOF — plus the observability story (`--metrics`/`--trace`
//! exports) and the startup exit codes.
//!
//! The conversational surface is pinned by a golden transcript
//! (`tests/golden/serve_session.jsonl`): request lines prefixed `"> "`,
//! expected response lines prefixed `"< "`. The simulation is
//! deterministic, so responses — floats included — are byte-stable.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

/// Run `memcontend serve <flags>` feeding `input` to stdin, return the
/// completed process output.
fn serve(flags: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_memcontend"))
        .arg("serve")
        .args(flags)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("memcontend serve spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("request lines written");
    // Dropping stdin closes the pipe: the service sees EOF and exits.
    child.wait_with_output().expect("memcontend serve exits")
}

fn stdout_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect()
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve_session.jsonl"
);

#[test]
fn golden_session_replays_byte_for_byte() {
    let golden = std::fs::read_to_string(GOLDEN).expect("golden transcript present");
    let requests: Vec<&str> = golden
        .lines()
        .filter_map(|l| l.strip_prefix("> "))
        .collect();
    let expected: Vec<&str> = golden
        .lines()
        .filter_map(|l| l.strip_prefix("< "))
        .collect();
    assert!(!requests.is_empty() && requests.len() == expected.len());

    let out = serve(&[], &(requests.join("\n") + "\n"));
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = stdout_lines(&out);
    assert_eq!(actual.len(), expected.len(), "one response per request");
    for (i, (got, want)) in actual.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "response {} diverged from the transcript", i + 1);
    }
}

/// The serving acceptance bar: a 100-request batch against one platform
/// answers with at least 90 % registry cache hits, asserted from the
/// `--metrics` JSON-lines export.
#[test]
fn hundred_request_batch_is_mostly_registry_hits() {
    let dir = std::env::temp_dir().join(format!("memcontend-serve-acc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.jsonl");

    let items: Vec<String> = (0..100)
        .map(|i| {
            format!(
                r#"{{"op":"predict","platform":"henri","cores":{},"comp_numa":0,"comm_numa":1}}"#,
                i % 17 + 1
            )
        })
        .collect();
    let batch = format!("{{\"batch\":[{}]}}\n", items.join(","));
    let out = serve(
        &[
            "--workers",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ],
        &batch,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // All 100 answers in the single batch response are successes.
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0].matches("\"ok\":true").count(), 101); // envelope + items
    assert_eq!(lines[0].matches("\"comp\":").count(), 100);

    let metrics = std::fs::read_to_string(&metrics).expect("metrics exported");
    let hits = counter_total(&metrics, "registry.hit");
    let misses = counter_total(&metrics, "registry.miss");
    assert_eq!(hits + misses, 100, "{metrics}");
    assert!(hits >= 90, "only {hits} hits / {misses} misses\n{metrics}");
    assert_eq!(counter_total(&metrics, "serve.requests"), 100);
    assert!(metrics.contains("\"name\":\"serve.request_seconds\""));
    assert!(metrics.contains("\"name\":\"serve.batch_size\""));

    let trace = std::fs::read_to_string(&trace).expect("trace exported");
    for stage in ["serve", "serve.batch", "serve.request"] {
        assert!(trace.contains(&format!("\"stage\":\"{stage}\"")), "{trace}");
    }
}

/// Sum every exported value of a counter across its tag sets.
fn counter_total(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| {
            l.contains("\"type\":\"counter\"") && l.contains(&format!("\"name\":\"{name}\""))
        })
        .map(|l| {
            let raw = l.split("\"value\":").nth(1).expect("counter has a value");
            raw.trim_end_matches('}').parse::<u64>().expect("integer")
        })
        .sum()
}

#[test]
fn empty_input_exits_zero_silently() {
    let out = serve(&[], "");
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
}

#[test]
fn startup_errors_use_the_process_exit_codes() {
    // A bad flag is a usage error before the loop starts.
    let out = serve(&["--workers", "0"], "");
    assert_eq!(out.status.code(), Some(2));
    // An unreadable --warm file is fatal I/O: a service asked to start
    // warm must not silently start cold.
    let out = serve(&["--warm", "henri=/nonexistent/model.txt"], "");
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn warm_started_service_hits_on_its_first_request() {
    let dir = std::env::temp_dir().join(format!("memcontend-serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let model = dir.join("henri.txt");
    let saved = Command::new(env!("CARGO_BIN_EXE_memcontend"))
        .args(["calibrate", "--platform", "henri", "--save"])
        .arg(&model)
        .output()
        .expect("calibrate runs");
    assert_eq!(saved.status.code(), Some(0));

    let warm = format!("henri={}", model.display());
    let out = serve(
        &["--warm", &warm],
        "{\"op\":\"predict\",\"platform\":\"henri\",\"cores\":4,\"comp_numa\":0,\"comm_numa\":0}\n",
    );
    assert_eq!(out.status.code(), Some(0));
    let lines = stdout_lines(&out);
    assert!(
        lines[0].contains("\"cached\":true"),
        "warm-loaded model must answer the first request from cache: {}",
        lines[0]
    );
}
