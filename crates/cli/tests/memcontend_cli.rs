//! Exit-code and observability-export tests for the `memcontend` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memcontend(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memcontend"))
        .args(args)
        .output()
        .expect("memcontend runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memcontend-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_platform_exits_2() {
    let out = memcontend(&["topo", "--platform", "zzz"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn missing_model_file_exits_4() {
    let out = memcontend(&[
        "predict",
        "--model",
        "/nonexistent/model.txt",
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
}

#[test]
fn malformed_model_file_exits_3() {
    let dir = tmp("bad-model");
    let path = dir.join("model.txt");
    std::fs::write(&path, "this is not a model file\n").expect("write model");
    let out = memcontend(&[
        "predict",
        "--model",
        path.to_str().unwrap(),
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
}

#[test]
fn metrics_flag_exports_pipeline_metrics() {
    let dir = tmp("metrics");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.jsonl");
    let out = memcontend(&[
        "evaluate",
        "--platform",
        "henri",
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("average"));

    let metrics = std::fs::read_to_string(&metrics).expect("metrics exported");
    assert!(metrics.contains("\"name\":\"sweep.points\""), "{metrics}");
    let trace = std::fs::read_to_string(&trace).expect("trace exported");
    for stage in ["memcontend", "sweep", "calibrate", "evaluate"] {
        assert!(trace.contains(&format!("\"stage\":\"{stage}\"")), "{trace}");
    }
}

#[test]
fn unwritable_metrics_path_exits_4_after_success() {
    let out = memcontend(&[
        "topo",
        "--platform",
        "henri",
        "--metrics",
        "/nonexistent-dir/metrics.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    // The command output is still printed before the export failure.
    assert!(String::from_utf8_lossy(&out.stdout).contains("henri"));
}
