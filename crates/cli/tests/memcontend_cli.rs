//! Exit-code and observability-export tests for the `memcontend` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memcontend(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memcontend"))
        .args(args)
        .output()
        .expect("memcontend runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memcontend-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_platform_exits_2() {
    let out = memcontend(&["topo", "--platform", "zzz"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn missing_model_file_exits_4() {
    let out = memcontend(&[
        "predict",
        "--model",
        "/nonexistent/model.txt",
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
}

#[test]
fn malformed_model_file_exits_3() {
    let dir = tmp("bad-model");
    let path = dir.join("model.txt");
    std::fs::write(&path, "this is not a model file\n").expect("write model");
    let out = memcontend(&[
        "predict",
        "--model",
        path.to_str().unwrap(),
        "--cores",
        "4",
        "--comp-numa",
        "0",
        "--comm-numa",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
}

#[test]
fn metrics_flag_exports_pipeline_metrics() {
    let dir = tmp("metrics");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.jsonl");
    let out = memcontend(&[
        "evaluate",
        "--platform",
        "henri",
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("average"));

    let metrics = std::fs::read_to_string(&metrics).expect("metrics exported");
    assert!(metrics.contains("\"name\":\"sweep.points\""), "{metrics}");
    let trace = std::fs::read_to_string(&trace).expect("trace exported");
    for stage in ["memcontend", "sweep", "calibrate", "evaluate"] {
        assert!(trace.contains(&format!("\"stage\":\"{stage}\"")), "{trace}");
    }
}

#[test]
fn chrome_trace_format_exports_a_trace_event_array() {
    let dir = tmp("chrome");
    let trace = dir.join("trace.json");
    let out = memcontend(&[
        "replay",
        "--platform",
        "henri",
        "--generate",
        "allreduce",
        "--ranks",
        "2",
        "--iters",
        "1",
        "--compute-mb",
        "32",
        "--comm-mb",
        "4",
        "--trace",
        trace.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let body = std::fs::read_to_string(&trace).expect("chrome trace exported");
    assert!(body.starts_with("[\n"), "{}", &body[..40.min(body.len())]);
    assert!(body.trim_end().ends_with(']'), "{body}");
    // Complete events with the pinned phase, per-rank replay tracks and
    // track-naming metadata.
    assert!(body.contains("\"ph\":\"X\""), "{body}");
    assert!(body.contains("\"cat\":\"replay\""), "{body}");
    assert!(body.contains("\"rank\":\"1\""), "{body}");
    assert!(body.contains("\"name\":\"thread_name\""), "{body}");
    assert!(body.contains("rank 1"), "{body}");
}

#[test]
fn trace_format_flag_mistakes_exit_2() {
    // An unknown format is a usage error …
    let dir = tmp("badformat");
    let trace = dir.join("trace.json");
    let out = memcontend(&[
        "topo",
        "--platform",
        "henri",
        "--trace",
        trace.to_str().unwrap(),
        "--trace-format",
        "xml",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("trace-format"), "{}", stderr(&out));
    // … and so is --trace-format without --trace.
    let out = memcontend(&["topo", "--platform", "henri", "--trace-format", "chrome"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));
}

#[test]
fn report_flag_writes_self_contained_html() {
    let dir = tmp("report");
    let report = dir.join("report.html");
    let out = memcontend(&[
        "replay",
        "--platform",
        "henri",
        "--generate",
        "halo2d",
        "--ranks",
        "4",
        "--iters",
        "1",
        "--compute-mb",
        "64",
        "--comm-mb",
        "8",
        "--report",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("report written to"));
    let html = std::fs::read_to_string(&report).expect("report written");
    assert!(html.starts_with("<!DOCTYPE html>"), "{}", &html[..60]);
    assert!(html.contains("<svg"), "{html}");
    // The recorder is installed for --report alone: the run's own
    // metrics (counters, spans) are embedded in the report.
    assert!(html.contains("<h2>Counters</h2>"), "{html}");
    assert!(html.contains("replay.ranks"), "{html}");
    assert!(html.contains("<h2>Spans</h2>"), "{html}");
    // Self-contained: no external resources of any kind. (The SVG
    // xmlns attribute is a namespace identifier, not a fetched URL.)
    assert!(!html.contains("src="), "{html}");
    assert!(!html.contains("href="), "{html}");
    assert!(!html.contains("<script"), "{html}");
    assert!(!html.contains("<link"), "{html}");
}

#[test]
fn unwritable_metrics_path_exits_4_after_success() {
    let out = memcontend(&[
        "topo",
        "--platform",
        "henri",
        "--metrics",
        "/nonexistent-dir/metrics.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    // The command output is still printed before the export failure.
    assert!(String::from_utf8_lossy(&out.stdout).contains("henri"));
}
