//! Black-box tests for `memcontend serve --listen`: the binary is
//! spawned listening on an ephemeral port, discovered via its
//! `{"listening":"ADDR"}` announce line, and driven over real TCP
//! connections. They pin the multi-tenant contract end to end:
//!
//! * the golden transcript (`tests/golden/serve_tcp_session.jsonl`,
//!   `"> "` requests / `"< "` responses, regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test serve_tcp`) — hello handshake,
//!   dispatch, typed overload, shutdown ack, byte-stable;
//! * per-connection response ordering under concurrent clients;
//! * the isolation claims: a tenant flooding past its credit budget
//!   collects `overload` errors while other tenants complete untouched,
//!   and a connection dying mid-line takes down nothing but itself.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A serve process listening on an ephemeral port.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawn `memcontend serve --listen 127.0.0.1:0 <flags>` and parse
    /// the announce line for the bound address.
    fn start(flags: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_memcontend"))
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(flags)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("memcontend serve spawns");
        let mut announce = String::new();
        BufReader::new(child.stdout.take().expect("piped stdout"))
            .read_line(&mut announce)
            .expect("announce line");
        let addr = announce
            .split("\"listening\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("announce line malformed: {announce:?}"))
            .to_string();
        assert!(
            !addr.ends_with(":0"),
            "ephemeral port must be resolved in the announce line, got {addr}"
        );
        Server { child, addr }
    }

    /// Ask the server to exit via the protocol and assert exit code 0.
    fn shutdown(mut self) {
        let mut admin = Client::connect(&self.addr, "admin");
        let ack = admin.send(r#"{"op":"shutdown"}"#);
        assert!(ack.contains("\"ok\":true"), "shutdown ack, got {ack}");
        let status = self.child.wait().expect("serve exits");
        assert_eq!(status.code(), Some(0), "clean shutdown is exit 0");
    }
}

/// One authenticated JSON-lines connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect and complete the hello handshake as `tenant`.
    fn connect(addr: &str, tenant: &str) -> Client {
        let mut client = Client::connect_raw(addr);
        let ack = client.send(&format!("{{\"hello\":{{\"tenant\":\"{tenant}\"}}}}"));
        assert!(ack.contains("\"ok\":true"), "hello refused: {ack}");
        client
    }

    /// Connect without the handshake (for tests that probe it).
    fn connect_raw(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// One request line, one response line.
    fn send(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("request written");
        self.recv()
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response read");
        assert!(n > 0, "connection closed while awaiting a response");
        line.trim_end().to_string()
    }
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/serve_tcp_session.jsonl"
);

/// The scripted session behind the golden transcript. Everything in it
/// is deterministic: the simulation is seeded, the hello ack echoes the
/// fixed `--credits 2` configuration, and the overload message quotes
/// only the request's own numbers. (`stats` is deliberately absent —
/// its RSS fields vary run to run.)
const GOLDEN_REQUESTS: &[&str] = &[
    r#"{"hello":{"tenant":"gold"}}"#,
    r#"{"id":1,"op":"calibrate","platform":"henri"}"#,
    r#"{"id":2,"op":"predict","platform":"henri","cores":17,"comp_numa":0,"comm_numa":1}"#,
    r#"{"id":3,"batch":[{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0},{"op":"predict","platform":"henri","cores":8,"comp_numa":0,"comm_numa":0}]}"#,
    r#"{"id":4,"batch":[{"op":"stats"},{"op":"stats"},{"op":"stats"}]}"#,
    r#"{"id":5,"op":"nonsense"}"#,
    r#"{"op":"shutdown"}"#,
];

#[test]
fn golden_tcp_session_replays_byte_for_byte() {
    let server = Server::start(&["--credits", "2", "--workers", "2"]);
    let mut client = Client::connect_raw(&server.addr);
    let responses: Vec<String> = GOLDEN_REQUESTS
        .iter()
        .map(|request| client.send(request))
        .collect();
    let status = server.child.wait_with_output().expect("serve exits");
    assert_eq!(status.status.code(), Some(0), "shutdown request is exit 0");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut transcript = String::new();
        for (request, response) in GOLDEN_REQUESTS.iter().zip(&responses) {
            transcript.push_str(&format!("> {request}\n< {response}\n"));
        }
        std::fs::write(GOLDEN, transcript).expect("golden written");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN).expect("golden transcript present");
    let expected: Vec<&str> = golden
        .lines()
        .filter_map(|l| l.strip_prefix("< "))
        .collect();
    assert_eq!(responses.len(), expected.len(), "one response per request");
    for (i, (got, want)) in responses.iter().zip(&expected).enumerate() {
        assert_eq!(
            got,
            want,
            "response {} diverged from the transcript \
             (rerun with UPDATE_GOLDEN=1 if the change is intentional)",
            i + 1
        );
    }
    let scripted: Vec<&str> = golden
        .lines()
        .filter_map(|l| l.strip_prefix("> "))
        .collect();
    assert_eq!(scripted, GOLDEN_REQUESTS, "transcript requests drifted");
}

#[test]
fn concurrent_connections_get_their_own_responses_in_order() {
    let server = Server::start(&["--workers", "2"]);
    let addr = &server.addr;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, &format!("tenant{t}"));
                    for i in 0..20 {
                        let id = t * 100 + i;
                        let response = client.send(&format!(
                            "{{\"id\":{id},\"op\":\"predict\",\"platform\":\"henri\",\
                             \"cores\":4,\"comp_numa\":0,\"comm_numa\":0}}"
                        ));
                        // In-order and never another connection's id.
                        assert!(
                            response.contains(&format!("\"id\":{id},")),
                            "connection {t} got a response for someone else: {response}"
                        );
                        assert!(response.contains("\"ok\":true"), "{response}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    server.shutdown();
}

/// The acceptance criterion: one tenant flooding past its credit budget
/// collects typed `overload` rejections while a well-behaved tenant on
/// another connection completes every request — no cross-tenant
/// starvation, no aborted connections.
#[test]
fn flooding_tenant_is_rejected_while_others_complete() {
    let server = Server::start(&["--credits", "2", "--queue", "1", "--wait-ms", "40"]);
    let addr = &server.addr;
    std::thread::scope(|scope| {
        let flood = scope.spawn(move || {
            let mut hog = Client::connect(addr, "hog");
            let mut overloads = 0;
            for i in 0..30 {
                // Three items against a two-credit budget: impossible to
                // grant, rejected without waiting.
                let response = hog.send(&format!(
                    "{{\"id\":{i},\"batch\":[{{\"op\":\"stats\"}},{{\"op\":\"stats\"}},\
                     {{\"op\":\"stats\"}}]}}"
                ));
                assert!(response.contains("\"ok\":false"), "{response}");
                if response.contains("\"class\":\"overload\"") {
                    overloads += 1;
                }
            }
            overloads
        });
        let quiet = scope.spawn(move || {
            let mut client = Client::connect(addr, "quiet");
            for i in 0..30 {
                let response = client.send(&format!(
                    "{{\"id\":{i},\"op\":\"predict\",\"platform\":\"henri\",\"cores\":2,\
                     \"comp_numa\":0,\"comm_numa\":0}}"
                ));
                assert!(
                    response.contains("\"ok\":true"),
                    "the quiet tenant must be untouched by the flood: {response}"
                );
            }
        });
        assert_eq!(
            flood.join().expect("hog thread"),
            30,
            "every flood rejected"
        );
        quiet.join().expect("quiet thread");
    });
    server.shutdown();
}

/// Fault isolation: a connection dying mid-line (half a JSON object,
/// then gone) must not disturb an established session or the accept
/// loop.
#[test]
fn dead_connection_tears_down_only_itself() {
    let server = Server::start(&[]);

    let mut survivor = Client::connect(&server.addr, "steady");
    // A connection that hellos, starts a request, and vanishes.
    {
        let mut dying = Client::connect(&server.addr, "flaky");
        dying
            .writer
            .write_all(b"{\"op\":\"pred")
            .expect("partial line written");
        // Dropped here: the server sees EOF mid-line on that connection.
    }

    // The established session still answers…
    let response = survivor
        .send(r#"{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0}"#);
    assert!(response.contains("\"ok\":true"), "{response}");
    // …and the accept loop still accepts.
    let mut fresh = Client::connect(&server.addr, "late");
    let response = fresh.send(r#"{"op":"stats"}"#);
    assert!(response.contains("\"ok\":true"), "{response}");

    server.shutdown();
}

/// A tenant whose *every* request is rejected by admission must leave
/// the registry untouched — `stats` reports zero hits, zero misses and
/// a hit rate of exactly 0 (not NaN) — while the per-tenant overload
/// counters account for the whole flood.
#[test]
fn all_rejected_session_keeps_stats_and_counters_honest() {
    let metrics_path = std::env::temp_dir().join(format!(
        "memcontend-overload-metrics-{}.jsonl",
        std::process::id()
    ));
    let metrics = metrics_path.to_str().unwrap().to_string();
    let server = Server::start(&["--credits", "2", "--metrics", &metrics]);

    // Every request this tenant makes is oversized — three credits
    // against a two-credit budget — so none ever reaches dispatch.
    let mut hog = Client::connect(&server.addr, "reject-all");
    for i in 0..10 {
        let response = hog.send(&format!(
            "{{\"id\":{i},\"batch\":[{{\"op\":\"stats\"}},{{\"op\":\"stats\"}},\
             {{\"op\":\"stats\"}}]}}"
        ));
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("\"class\":\"overload\""), "{response}");
    }

    // A second tenant audits the registry: the flood never touched it.
    let mut auditor = Client::connect(&server.addr, "auditor");
    let stats = auditor.send(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"ok\":true"), "{stats}");
    assert!(stats.contains("\"hits\":0"), "{stats}");
    assert!(stats.contains("\"misses\":0"), "{stats}");
    assert!(stats.contains("\"hit_rate\":0"), "{stats}");
    assert!(!stats.contains("NaN"), "hit rate must be a number: {stats}");

    server.shutdown();

    // The exported counters attribute every rejection to the tenant.
    let lines = std::fs::read_to_string(&metrics_path).expect("metrics exported");
    let overload = lines
        .lines()
        .find(|l| {
            l.contains("\"serve.overload\"")
                && l.contains("\"reject-all\"")
                && l.contains("\"too_large\"")
        })
        .unwrap_or_else(|| panic!("no per-tenant overload counter in:\n{lines}"));
    assert!(overload.contains("\"value\":10"), "{overload}");
    let admission = lines
        .lines()
        .find(|l| {
            l.contains("\"serve.requests\"")
                && l.contains("\"admission\"")
                && l.contains("\"overload\"")
        })
        .unwrap_or_else(|| panic!("no admission-overload counter in:\n{lines}"));
    assert!(admission.contains("\"value\":10"), "{admission}");
    std::fs::remove_file(&metrics_path).ok();
}

/// The hello contract: the first line must authenticate, bad tenants
/// are refused with a `usage` error, and the refusal closes only that
/// connection.
#[test]
fn hello_is_mandatory_and_validated() {
    let server = Server::start(&[]);

    let mut rude = Client::connect_raw(&server.addr);
    let refused = rude.send(r#"{"op":"stats"}"#);
    assert!(refused.contains("\"ok\":false"), "{refused}");
    assert!(refused.contains("\"class\":\"usage\""), "{refused}");

    let mut spacey = Client::connect_raw(&server.addr);
    let refused = spacey.send(r#"{"hello":{"tenant":"a b"}}"#);
    assert!(refused.contains("\"ok\":false"), "{refused}");

    // A valid hello still works after both refusals.
    Client::connect(&server.addr, "polite");
    server.shutdown();
}
