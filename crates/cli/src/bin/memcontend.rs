//! `memcontend` binary: parse argv, dispatch, print.
//!
//! Exit codes: 0 success, 2 usage error (bad flags, unknown command or
//! platform, out-of-range NUMA node), 3 invalid or degenerate input data
//! (a sweep that cannot calibrate, a malformed model file), 4 file I/O
//! failure.
//!
//! The global `--metrics FILE` / `--trace FILE` options install an
//! [`mc_obs::Registry`] for the duration of the command and export its
//! counters/histograms (JSON lines) and spans afterwards. `--trace`
//! defaults to the JSON-lines span format; `--trace-format chrome`
//! writes a Chrome trace_event JSON array instead (loadable in
//! chrome://tracing and ui.perfetto.dev). The `replay` and `schedule`
//! subcommands additionally accept `--report FILE.html`; the registry is
//! installed for them too so the report can embed the run's metrics.

use std::process::ExitCode;
use std::sync::Arc;

use mc_cli::{run, Args, CliError};
use mc_model::McError;

fn fail(e: &CliError) -> ExitCode {
    if e.is_usage() {
        eprintln!("error: {e}\n\n{}", mc_cli::commands::USAGE);
    } else {
        eprintln!("error: {e}");
    }
    ExitCode::from(e.exit_code())
}

/// Span-trace output formats selected by `--trace-format`.
enum TraceFormat {
    /// One JSON object per line (the historical default).
    Jsonl,
    /// A Chrome trace_event JSON array for chrome://tracing / Perfetto.
    Chrome,
}

/// Parse `--trace-format`. Requiring `--trace` alongside keeps the flag
/// from silently doing nothing.
fn trace_format(value: Option<&str>, trace: Option<&str>) -> Result<TraceFormat, CliError> {
    let Some(value) = value else {
        return Ok(TraceFormat::Jsonl);
    };
    if trace.is_none() {
        return Err(CliError::Usage(
            "--trace-format needs --trace FILE (there is nothing to format otherwise)".into(),
        ));
    }
    match value {
        "jsonl" => Ok(TraceFormat::Jsonl),
        "chrome" => Ok(TraceFormat::Chrome),
        other => Err(CliError::BadValue("trace-format", other.to_string())),
    }
}

/// Write the recorder's exports. Runs even when the command failed, so a
/// partial run still leaves its metrics behind.
fn export(
    registry: &mc_obs::Registry,
    metrics: Option<&str>,
    trace: Option<&str>,
    format: &TraceFormat,
) -> Result<(), CliError> {
    if let Some(path) = metrics {
        std::fs::write(path, registry.metrics_json_lines()).map_err(|e| McError::io(path, e))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = trace {
        let body = match format {
            TraceFormat::Jsonl => registry.trace_json_lines(),
            TraceFormat::Chrome => registry.chrome_trace(),
        };
        std::fs::write(path, body).map_err(|e| McError::io(path, e))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "-h" || argv[0] == "--help" {
        println!("{}", mc_cli::commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let mut args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    // The observability options are global, not per-subcommand: strip them
    // before dispatch so the command layer never sees them. `--report` is
    // per-subcommand (the command builds the HTML itself) but still wants
    // a recorder installed, so it is peeked at, not removed.
    let metrics = args.options.remove("metrics");
    let trace = args.options.remove("trace");
    let format = match trace_format(
        args.options.remove("trace-format").as_deref(),
        trace.as_deref(),
    ) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let report = args.options.contains_key("report");

    let registry = (metrics.is_some() || trace.is_some() || report).then(|| {
        let registry = Arc::new(mc_obs::Registry::new());
        mc_obs::set_recorder(registry.clone());
        registry
    });

    let result = {
        let _span = mc_obs::span(
            "memcontend",
            &[("command", mc_obs::TagValue::Str(&args.command))],
        );
        run(&args)
    };
    let exported = match &registry {
        Some(r) => export(r, metrics.as_deref(), trace.as_deref(), &format),
        None => Ok(()),
    };
    mc_obs::clear_recorder();

    match (result, exported) {
        (Ok(output), Ok(())) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        (Ok(output), Err(e)) => {
            print!("{output}");
            fail(&e)
        }
        (Err(e), export_result) => {
            if let Err(ee) = export_result {
                eprintln!("error: {ee}");
            }
            fail(&e)
        }
    }
}
