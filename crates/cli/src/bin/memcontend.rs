//! `memcontend` binary: parse argv, dispatch, print.

use std::process::ExitCode;

use mc_cli::{run, Args, CliError};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "-h" || argv[0] == "--help" {
        println!("{}", mc_cli::commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", mc_cli::commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e @ CliError::UnknownCommand(_)) => {
            eprintln!("error: {e}\n\n{}", mc_cli::commands::USAGE);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
