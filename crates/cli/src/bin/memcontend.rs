//! `memcontend` binary: parse argv, dispatch, print.
//!
//! Exit codes: 0 success, 2 usage error (bad flags, unknown command or
//! platform, out-of-range NUMA node), 3 invalid or degenerate input data
//! (a sweep that cannot calibrate, a malformed model file), 4 file I/O
//! failure.

use std::process::ExitCode;

use mc_cli::{run, Args, CliError};

fn fail(e: &CliError) -> ExitCode {
    if e.is_usage() {
        eprintln!("error: {e}\n\n{}", mc_cli::commands::USAGE);
    } else {
        eprintln!("error: {e}");
    }
    ExitCode::from(e.exit_code())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "-h" || argv[0] == "--help" {
        println!("{}", mc_cli::commands::USAGE);
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}
