//! Subcommand implementations. Each returns the rendered output as a
//! string; file I/O (saving/loading model files) is the only side effect.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;

use mc_membench::{
    calibration_placements, calibration_sweeps, sweep_platform_parallel, BenchConfig, BenchRunner,
};
use mc_model::{
    evaluate, format_percent, model_from_text, model_to_text, rank, ContentionModel, McError,
    ModelRegistry, PhaseProfile,
};
use mc_obs::{tags, TagValue};
use mc_replay::generate::{self, GenParams};
use mc_replay::{report, CommMode, ReplayConfig, Trace, TraceReader};
use mc_topology::{platforms, NumaId, Platform};
use mc_viz::TopologySketch;

use crate::args::{Args, CliError};

/// Usage text.
pub const USAGE: &str = "\
memcontend — model memory contention between communications and computations

usage:
  memcontend topo      [--platform NAME]
  memcontend bench     --platform NAME [--comp-numa N] [--comm-numa N]
  memcontend calibrate --platform NAME [--save FILE] [--sparse yes]
  memcontend predict   (--platform NAME | --model FILE) --cores N \\
                       --comp-numa A --comm-numa B
  memcontend advise    --platform NAME --compute-gb X --comm-gb Y \\
                       [--max-cores N]
  memcontend evaluate  --platform NAME
  memcontend replay    (--input TRACE.jsonl | --generate PATTERN) \\
                       --platform NAME [--ranks N] [--iters N] [--cores N] \\
                       [--compute-mb X] [--comm-mb Y] [--comp-numa A] \\
                       [--comm-numa B] [--search yes] [--gantt FILE] \\
                       [--save-trace FILE] [--stream yes] [--report FILE.html] \\
                       [--comm-mode messages|cxl]
  memcontend schedule  --jobs QUEUE.jsonl \\
                       (--platform NAME [--nodes N] | --fleet NAME*N,...) \\
                       [--policy first_fit|round_robin|contention_aware|all] \\
                       [--max-slowdown X] [--seed N] [--report FILE.html]
  memcontend serve     [--workers N] [--capacity N] \\
                       [--warm PLATFORM=FILE]... \\
                       [--listen HOST:PORT] [--credits N] [--queue N] \\
                       [--wait-ms MS] [--max-conns N]

replay predicts the whole-program slowdown a JSON-lines event trace
suffers from memory contention (patterns: halo2d, allreduce, pipeline;
--search yes sweeps every NUMA placement and cross-checks the model's
advisor; --gantt renders the contended timeline as SVG). With --input,
--cores/--comp-numa/--comm-numa re-home the trace instead of feeding
the generator. --stream yes replays without materializing the trace:
--input files are parsed line by line (first line must be a
{\"ranks\":N} header — what --stream --save-trace writes), generators
run lazily, memory stays bounded by ranks not events, and per-rank
timelines are kept for the first 64 ranks only (--search needs the
full trace and is incompatible). --comm-mode cxl lowers every message
to load/store stream pairs against the platform's CXL.mem pool
(message-free communication; the platform must declare a pool, e.g.
henri-cxl) and prints a head-to-head against the ordinary messaging
replay; the gantt/report exports then show the message-free timeline.

schedule places a JSON-lines job queue (one job object per line: inline
{\"name\",\"compute_gb\",\"comm_gb\",\"max_cores\"}, a synthetic
{\"pattern\",\"ranks\",...}, or a recorded {\"trace\":FILE}) onto a fleet
of simulated nodes and prints per-job placements, predicted finish
times, makespan and throughput. --fleet mixes platforms
(henri*2,dahu*1); --policy all compares every policy. The
contention-aware policy co-locates jobs only while the predicted
slowdown of every affected job stays under --max-slowdown (default
1.25), using the calibrated model plus a per-node fluid simulation.

serve reads one JSON request per stdin line and writes one JSON response
per stdout line: {\"op\":\"predict\"|\"calibrate\"|\"evaluate\"|\"recommend\"|
\"replay\"|\"stats\", ...} or {\"batch\":[...]} to fan requests over a
worker pool. Calibrated models are cached in a sharded LRU registry
(--capacity models; --warm seeds it from saved model files and may be
repeated; the comma form still works when paths are comma-free). EOF
ends the service with exit code 0.

With --listen HOST:PORT serve becomes a TCP service instead: it prints
{\"listening\":\"ADDR\"} (resolving port 0) and accepts many concurrent
connections, each speaking the same JSON-lines protocol after a first
{\"hello\":{\"tenant\":ID}} line. Every tenant holds --credits request
credits (a batch costs one per item, returned as responses are written);
floods past the budget wait boundedly (--queue deep, --wait-ms long) and
then receive {\"ok\":false,\"error\":{\"class\":\"overload\",...}}.
{\"op\":\"shutdown\"} stops the service cleanly; a failed connection
tears down only itself.

replay and schedule accept --report FILE.html: a self-contained HTML
report (inline SVG Gantt timelines, metrics tables, run metadata — no
external resources) written next to the normal text output.

global options (any subcommand):
  --metrics FILE   export pipeline counters/histograms as JSON lines
  --trace FILE     export pipeline spans as JSON lines
  --trace-format F span format for --trace: jsonl (default) or chrome,
                   a Chrome trace_event JSON array that opens directly
                   in chrome://tracing and ui.perfetto.dev

platforms: henri, henri-subnuma, dahu, diablo, pyxis, occigen, grillon,
           henri-cxl, dahu-cxl

exit codes: 0 success, 2 usage error, 3 invalid or degenerate input data,
            4 file I/O failure
";

fn platform(args: &Args) -> Result<Platform, CliError> {
    let name = args.require("platform")?;
    platforms::by_name(name).ok_or_else(|| CliError::UnknownPlatform(name.to_string()))
}

/// Parse a NUMA-node option (default 0) and range-check it against the
/// platform.
fn numa_arg(args: &Args, key: &'static str, platform: &Platform) -> Result<NumaId, CliError> {
    let raw = args.num_or(key, 0u16)?;
    let count = platform.topology.numa_count();
    if (raw as usize) >= count {
        return Err(CliError::NumaOutOfRange {
            option: key,
            numa: raw,
            count,
        });
    }
    Ok(NumaId::new(raw))
}

fn calibrated(platform: &Platform) -> Result<ContentionModel, CliError> {
    let (local, remote) = calibration_sweeps(platform, BenchConfig::default());
    ContentionModel::calibrate(&platform.topology, &local, &remote)
        .map_err(McError::from)
        .map_err(CliError::from)
}

/// `topo`: draw one or all machines.
pub fn topo(args: &Args) -> Result<String, CliError> {
    let targets =
        match args.get("platform") {
            Some(name) => vec![platforms::by_name(name)
                .ok_or_else(|| CliError::UnknownPlatform(name.to_string()))?],
            None => platforms::all(),
        };
    let mut out = String::new();
    for p in targets {
        let topo = &p.topology;
        let sketch = TopologySketch {
            name: topo.summary(),
            sockets: topo.sockets.len(),
            cores_per_socket: topo.cores_per_socket(),
            numa_per_socket: topo.numa_per_socket(),
            nic_socket: topo.nic.socket.index(),
            network: topo.nic.tech.to_string(),
            bus: topo.links[0].tech.to_string(),
        };
        out.push_str(&mc_viz::topology_diagram(&sketch));
        out.push('\n');
    }
    Ok(out)
}

/// `bench`: run one placement sweep and print the bandwidth table.
pub fn bench(args: &Args) -> Result<String, CliError> {
    let p = platform(args)?;
    let m_comp = numa_arg(args, "comp-numa", &p)?;
    let m_comm = numa_arg(args, "comm-numa", &p)?;
    let runner = BenchRunner::new(&p, BenchConfig::default());
    let sweep = runner.run_placement(m_comp, m_comm);
    let mut out = format!(
        "{} — computation data on {m_comp}, communication data on {m_comm}\n",
        p.name()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "cores", "comp alone", "comm alone", "comp ||", "comm ||"
    );
    for pt in &sweep.points {
        let _ = writeln!(
            out,
            "{:>6} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            pt.n_cores, pt.comp_alone, pt.comm_alone, pt.comp_par, pt.comm_par
        );
    }
    Ok(out)
}

/// `calibrate`: run the two calibration sweeps, print the parameters,
/// optionally persist the model. With `--sparse yes` the adaptive sweep
/// protocol of the paper's footnote 2 is used (stop once both bandwidth
/// peaks are confirmed).
pub fn calibrate_cmd(args: &Args) -> Result<String, CliError> {
    let p = platform(args)?;
    let sparse = matches!(args.get("sparse"), Some("yes" | "true" | "1"));
    let mut out;
    let model = if sparse {
        use mc_model::calibrate_sparse;
        let runner = BenchRunner::new(&p, BenchConfig::default());
        let ((lc, lm), (rc, rm)) = calibration_placements(&p);
        let local = calibrate_sparse(&runner, lc, lm).map_err(McError::from)?;
        let remote = calibrate_sparse(&runner, rc, rm).map_err(McError::from)?;
        out = format!(
            "{} calibrated with sparse sweeps ({:.0} % / {:.0} % of runs saved)\n",
            p.name(),
            100.0 * local.savings(),
            100.0 * remote.savings()
        );
        ContentionModel::calibrate(&p.topology, &local.sweep, &remote.sweep)
            .map_err(McError::from)?
    } else {
        out = format!("{} calibrated from two placement sweeps\n", p.name());
        calibrated(&p)?
    };
    let _ = writeln!(out, "M_local : {}", model.local().params());
    let _ = writeln!(out, "M_remote: {}", model.remote().params());
    if let Some(path) = args.get("save") {
        fs::write(path, model_to_text(&model)).map_err(|e| McError::io(path, e))?;
        let _ = writeln!(out, "model saved to {path}");
    }
    Ok(out)
}

/// `predict`: bandwidths for one configuration, from a fresh calibration
/// or a saved model file.
pub fn predict(args: &Args) -> Result<String, CliError> {
    let model = match args.get("model") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
            model_from_text(&text).map_err(McError::from)?
        }
        None => calibrated(&platform(args)?)?,
    };
    let n: usize = args.require_num("cores")?;
    if n == 0 {
        return Err(CliError::NonPositive("cores"));
    }
    let m_comp = NumaId::new(args.require_num::<u16>("comp-numa")?);
    let m_comm = NumaId::new(args.require_num::<u16>("comm-numa")?);
    let par = model.predict(n, m_comp, m_comm);
    let alone = model.predict_alone(n, m_comp, m_comm);
    let mut out =
        format!("{n} cores, computation data on {m_comp}, communication data on {m_comm}\n");
    let _ = writeln!(
        out,
        "computations : {:>8.2} GB/s in parallel ({:>8.2} GB/s alone)",
        par.comp, alone.comp
    );
    let _ = writeln!(
        out,
        "communications: {:>8.2} GB/s in parallel ({:>8.2} GB/s alone)",
        par.comm, alone.comm
    );
    let _ = writeln!(
        out,
        "overlap keeps {:.0} % of compute and {:.0} % of network bandwidth",
        100.0 * par.comp / alone.comp,
        100.0 * par.comm / alone.comm
    );
    Ok(out)
}

/// `advise`: placement recommendations for an application phase.
pub fn advise(args: &Args) -> Result<String, CliError> {
    let p = platform(args)?;
    let compute_gb: f64 = args.require_num("compute-gb")?;
    let comm_gb: f64 = args.require_num("comm-gb")?;
    let max_cores = args.num_or("max-cores", p.max_compute_cores())?;
    if max_cores == 0 {
        return Err(CliError::NonPositive("max-cores"));
    }
    let model = calibrated(&p)?;
    let phase = PhaseProfile {
        compute_bytes: compute_gb * 1e9,
        comm_bytes: comm_gb * 1e9,
        max_cores,
    };
    let ranked = rank(&model, &phase);
    let mut out = format!(
        "{}: {compute_gb} GB compute overlapped with {comm_gb} GB received\n",
        p.name()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "cores", "comp on", "comm on", "comp GB/s", "comm GB/s", "makespan"
    );
    for r in ranked.iter().take(5) {
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>12.1} {:>12.1} {:>10.3} s",
            r.n_cores,
            r.m_comp.to_string(),
            r.m_comm.to_string(),
            r.comp_bw,
            r.comm_bw,
            r.makespan
        );
    }
    Ok(out)
}

/// `evaluate`: the platform's Table II row.
pub fn evaluate_cmd(args: &Args) -> Result<String, CliError> {
    let p = platform(args)?;
    let sweep = sweep_platform_parallel(&p, BenchConfig::default());
    let (s_local, s_remote) = calibration_placements(&p);
    let local = sweep
        .placement(s_local.0, s_local.1)
        .ok_or(McError::MissingPlacement {
            m_comp: s_local.0,
            m_comm: s_local.1,
        })?;
    let remote = sweep
        .placement(s_remote.0, s_remote.1)
        .ok_or(McError::MissingPlacement {
            m_comp: s_remote.0,
            m_comm: s_remote.1,
        })?;
    let model = ContentionModel::calibrate(&p.topology, local, remote).map_err(McError::from)?;
    let e = evaluate(&model, &sweep, &[s_local, s_remote]);
    let pc = |v: f64| format_percent(v, 0);
    let mut out = format!(
        "{} — prediction error (MAPE)\n\
         communications: {} % samples, {} % non-samples, {} % all\n\
         computations  : {} % samples, {} % non-samples, {} % all\n\
         average       : {} %\n",
        p.name(),
        pc(e.comm_samples),
        pc(e.comm_non_samples),
        pc(e.comm_all),
        pc(e.comp_samples),
        pc(e.comp_non_samples),
        pc(e.comp_all),
        pc(e.average)
    );
    if e.skipped > 0 {
        let _ = writeln!(
            out,
            "warning       : {} zero-bandwidth pairs excluded from the MAPE",
            e.skipped
        );
    }
    Ok(out)
}

/// A NUMA override that is only an override when the flag is present
/// (unlike [`numa_arg`], which defaults to node 0).
fn numa_override(
    args: &Args,
    key: &'static str,
    platform: &Platform,
) -> Result<Option<NumaId>, CliError> {
    match args.get(key) {
        None => Ok(None),
        Some(_) => numa_arg(args, key, platform).map(Some),
    }
}

/// `replay`: predict a whole program's contention slowdown from a trace
/// file or a synthetic pattern. With `--stream yes` the trace is never
/// materialized: files are parsed line by line (they need a
/// `{"ranks":N}` header) and generators are evaluated lazily, so memory
/// stays bounded by ranks rather than by events.
pub fn replay_cmd(args: &Args) -> Result<String, CliError> {
    let p = platform(args)?;
    let stream = matches!(args.get("stream"), Some("yes" | "true" | "1"));
    let do_search = matches!(args.get("search"), Some("yes" | "true" | "1"));
    if stream && do_search {
        return Err(CliError::Usage(
            "--stream and --search are mutually exclusive (the placement sweep \
             replays the trace many times and needs it in memory)"
                .into(),
        ));
    }
    let comm_mode = match args.get("comm-mode") {
        None | Some("messages") => CommMode::Messages,
        Some("cxl") => CommMode::Cxl,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--comm-mode must be 'messages' or 'cxl', got '{other}'"
            )))
        }
    };
    if comm_mode == CommMode::Cxl && do_search {
        return Err(CliError::Usage(
            "--search and --comm-mode cxl are mutually exclusive (the placement \
             sweep ranks messaging replays)"
                .into(),
        ));
    }
    // Streaming runs keep full timelines only for the ranks a gantt
    // chart can show; the rest fold into the busy totals.
    let timeline_ranks = if stream {
        Some(report::GANTT_MAX_ROWS)
    } else {
        None
    };
    // `trace` stays `None` on the streaming paths — nothing below may
    // require the full event list there.
    let mut trace: Option<Trace> = None;
    // In cxl mode the same source is replayed once more under ordinary
    // messaging so the report can print the head-to-head.
    let mut messaging: Option<mc_replay::ReplayOutcome> = None;
    let outcome = match (args.get("input"), args.get("generate")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--input and --generate are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage(
                "replay needs --input TRACE.jsonl or --generate PATTERN".into(),
            ))
        }
        (Some(path), None) => {
            // Replaying a recorded trace: the placement flags re-home the
            // trace's data instead of feeding the generator.
            let cores = match args.get("cores") {
                None => None,
                Some(_) => {
                    let n: usize = args.require_num("cores")?;
                    if n == 0 {
                        return Err(CliError::NonPositive("cores"));
                    }
                    Some(n)
                }
            };
            let config = ReplayConfig {
                comp_numa: numa_override(args, "comp-numa", &p)?,
                comm_numa: numa_override(args, "comm-numa", &p)?,
                cores,
                timeline_ranks,
                comm_mode,
            };
            if stream {
                if args.get("save-trace").is_some() {
                    return Err(CliError::Usage(
                        "--save-trace is redundant with --stream --input \
                         (the trace is already on disk)"
                            .into(),
                    ));
                }
                // Missing/unreadable files are I/O errors (exit 4);
                // re-open failures inside a pass surface as trace I/O.
                fs::File::open(path).map_err(|e| McError::io(path, e))?;
                let open = || {
                    let f = fs::File::open(path).map_err(|e| mc_replay::TraceError::Io {
                        line: 0,
                        message: e.to_string(),
                    })?;
                    Ok(TraceReader::new(std::io::BufReader::new(f))?)
                };
                if comm_mode == CommMode::Cxl {
                    let mcfg = ReplayConfig {
                        comm_mode: CommMode::Messages,
                        ..config
                    };
                    messaging = Some(mc_replay::replay_with(&p, open, &mcfg)?);
                }
                mc_replay::replay_with(&p, open, &config)?
            } else {
                let text = fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
                let t = Trace::from_json_lines(&text)?;
                if let Some(dst) = args.get("save-trace") {
                    fs::write(dst, t.to_json_lines()).map_err(|e| McError::io(dst, e))?;
                }
                if comm_mode == CommMode::Cxl {
                    let mcfg = ReplayConfig {
                        comm_mode: CommMode::Messages,
                        ..config
                    };
                    messaging = Some(mc_replay::replay(&p, &t, &mcfg)?);
                }
                let outcome = mc_replay::replay(&p, &t, &config)?;
                trace = Some(t);
                outcome
            }
        }
        (None, Some(pattern)) => {
            let ranks: usize = args.num_or("ranks", 4)?;
            if ranks < 2 {
                return Err(CliError::Usage("--ranks must be at least 2".into()));
            }
            let iters: usize = args.num_or("iters", 2)?;
            if iters == 0 {
                return Err(CliError::NonPositive("iters"));
            }
            let cores: usize = args.num_or("cores", 4)?;
            if cores == 0 {
                return Err(CliError::NonPositive("cores"));
            }
            let compute_mb: f64 = args.num_or("compute-mb", 256.0)?;
            let comm_mb: f64 = args.num_or("comm-mb", 8.0)?;
            let params = GenParams {
                ranks,
                iters,
                cores,
                compute_bytes: (compute_mb * (1 << 20) as f64) as u64,
                comm_bytes: (comm_mb * (1 << 20) as f64) as u64,
                comp_numa: numa_arg(args, "comp-numa", &p)?,
                comm_numa: numa_arg(args, "comm-numa", &p)?,
            };
            let gen = generate::LazyGen::new(pattern, &params)
                .ok_or_else(|| CliError::UnknownPattern(pattern.to_string()))?;
            let config = ReplayConfig {
                timeline_ranks,
                comm_mode,
                ..ReplayConfig::default()
            };
            if stream {
                if let Some(dst) = args.get("save-trace") {
                    let f = fs::File::create(dst).map_err(|e| McError::io(dst, e))?;
                    let mut w = std::io::BufWriter::new(f);
                    gen.write_interleaved(&mut w)
                        .and_then(|_| w.flush())
                        .map_err(|e| McError::io(dst, e))?;
                }
                if comm_mode == CommMode::Cxl {
                    let mcfg = ReplayConfig {
                        comm_mode: CommMode::Messages,
                        ..config
                    };
                    messaging = Some(mc_replay::replay_with(&p, || Ok(gen.source()), &mcfg)?);
                }
                mc_replay::replay_with(&p, || Ok(gen.source()), &config)?
            } else {
                let t = gen.collect();
                if let Some(dst) = args.get("save-trace") {
                    fs::write(dst, t.to_json_lines()).map_err(|e| McError::io(dst, e))?;
                }
                if comm_mode == CommMode::Cxl {
                    let mcfg = ReplayConfig {
                        comm_mode: CommMode::Messages,
                        ..config
                    };
                    messaging = Some(mc_replay::replay(&p, &t, &mcfg)?);
                }
                let outcome = mc_replay::replay(&p, &t, &config)?;
                trace = Some(t);
                outcome
            }
        }
    };
    // Feed the per-rank timelines to the recorder (when one is
    // installed): `--trace-format chrome` then shows each rank on its
    // own track, and `--report` can table the same spans.
    if let Some(rec) = mc_obs::recorder() {
        report::record_timeline_spans(rec.as_ref(), &outcome);
    }
    let mut out = report::render(&outcome, p.name());
    if let Some(messages) = &messaging {
        out.push_str(&report::render_head_to_head(messages, &outcome, p.name()));
    }
    if do_search {
        let trace = trace
            .as_ref()
            .expect("search never runs on the streaming path");
        let found = mc_replay::search(&p, trace, &[])?;
        out.push_str(&report::render_search(&found));
        let model = calibrated(&p)?;
        let check =
            mc_replay::advisor_crosscheck(&model, trace, found.winner(), p.max_compute_cores());
        match &check.advisor {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "advisor cross-check: model recommends comp on {}, comm on {} — {}",
                    r.m_comp,
                    r.m_comm,
                    if check.agree_placement {
                        "agrees with the search winner"
                    } else {
                        "differs from the search winner"
                    }
                );
            }
            None => {
                let _ = writeln!(out, "advisor cross-check: no recommendation");
            }
        }
    }
    if let Some(path) = args.get("gantt") {
        let title = format!("trace replay on {}", p.name());
        let svg = report::gantt(&outcome, &title).render(900.0).render();
        fs::write(path, svg).map_err(|e| McError::io(path, e))?;
        let _ = writeln!(out, "gantt chart written to {path}");
    }
    if let Some(path) = args.get("report") {
        let title = format!("trace replay on {}", p.name());
        let mut rep = mc_viz::HtmlReport::new(&title);
        rep.meta("platform", p.name());
        if messaging.is_some() {
            rep.meta("comm mode", "message-free (cxl)");
        }
        rep.meta("ranks", &outcome.ranks.to_string());
        rep.meta("events", &outcome.events.to_string());
        rep.meta(
            "contended makespan",
            &format!("{:.6} s", outcome.contended.makespan),
        );
        rep.meta(
            "baseline makespan",
            &format!("{:.6} s", outcome.baseline.makespan),
        );
        rep.meta("contention slowdown", &format!("{:.3}x", outcome.slowdown));
        rep.figure(
            "Contended timeline",
            &report::gantt(&outcome, &title).render(900.0),
        );
        if let Some(snap) = mc_obs::recorder().and_then(|r| r.snapshot()) {
            rep.metrics(&snap);
        }
        fs::write(path, rep.render()).map_err(|e| McError::io(path, e))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

/// The fleet a `schedule` run places onto: `--fleet henri*2,dahu*1`
/// (mixed) or `--platform NAME --nodes N` (uniform).
fn fleet_platforms(args: &Args) -> Result<Vec<Platform>, CliError> {
    match (args.get("fleet"), args.get("platform")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--fleet and --platform are mutually exclusive".into(),
        )),
        (Some(spec), None) => {
            let mut out = Vec::new();
            for part in spec.split(',') {
                let part = part.trim();
                let (name, count) = match part.split_once('*') {
                    None => (part, 1usize),
                    Some((n, c)) => {
                        let count: usize = c
                            .trim()
                            .parse()
                            .map_err(|_| CliError::BadValue("fleet", part.to_string()))?;
                        (n.trim(), count)
                    }
                };
                if count == 0 {
                    return Err(CliError::NonPositive("fleet"));
                }
                let p = platforms::by_name(name)
                    .ok_or_else(|| CliError::UnknownPlatform(name.to_string()))?;
                out.extend(std::iter::repeat_n(p, count));
            }
            Ok(out)
        }
        (None, _) => {
            let p = platform(args)?;
            let nodes: usize = args.num_or("nodes", 2)?;
            if nodes == 0 {
                return Err(CliError::NonPositive("nodes"));
            }
            Ok(vec![p; nodes])
        }
    }
}

/// `schedule`: place a JSON-lines job queue onto a simulated fleet under
/// one or all policies and report placements, finish times, makespan and
/// throughput.
pub fn schedule_cmd(args: &Args) -> Result<String, CliError> {
    let jobs_path = args.require("jobs")?;
    let policy_sel = args.get("policy").unwrap_or("contention_aware");
    let names: Vec<&str> = if policy_sel == "all" {
        mc_sched::policy_names().to_vec()
    } else if mc_sched::policy_names().contains(&policy_sel) {
        vec![policy_sel]
    } else {
        return Err(CliError::Usage(format!(
            "unknown --policy '{policy_sel}' (expected one of: {}, all)",
            mc_sched::policy_names().join(", ")
        )));
    };
    let max_slowdown: f64 = args.num_or("max-slowdown", 1.25)?;
    if !max_slowdown.is_finite() || max_slowdown < 1.0 {
        return Err(CliError::Usage(format!(
            "--max-slowdown must be at least 1.0 (co-location cannot speed a job up), \
             got {max_slowdown}"
        )));
    }
    let seed: u64 = args.num_or("seed", 42)?;
    let fleet_spec = fleet_platforms(args)?;
    let text = fs::read_to_string(jobs_path).map_err(|e| McError::io(jobs_path, e))?;
    let jobs = mc_sched::parse_jobs(&text)?;
    let registry = ModelRegistry::new(8);
    let fleet = mc_sched::Fleet::build(fleet_spec, &registry)?;
    fleet.validate_jobs(&jobs)?;
    let fleet_desc = fleet.describe();
    let _span = mc_obs::span(
        "schedule",
        &[
            (tags::FLEET, TagValue::Str(&fleet_desc)),
            (tags::WORKERS, TagValue::U64(jobs.len() as u64)),
        ],
    );
    if let Some(rec) = mc_obs::recorder() {
        rec.add("sched.jobs", &[], jobs.len() as u64);
        rec.add("sched.nodes", &[], fleet.nodes.len() as u64);
    }
    let mut ev = mc_sched::Evaluator::new(&jobs, &fleet);
    let mut plans = Vec::with_capacity(names.len());
    for name in &names {
        let _policy_span = mc_obs::span("schedule.policy", &[(tags::POLICY, TagValue::Str(name))]);
        let policy = mc_sched::policy_by_name(name, max_slowdown, seed)
            .expect("policy names were validated above");
        let assignment = policy.assign(&mut ev);
        let plan = ev.plan(name, &assignment, max_slowdown);
        if let Some(rec) = mc_obs::recorder() {
            rec.observe(
                "sched.makespan_seconds",
                &[(tags::POLICY, TagValue::Str(name))],
                plan.makespan,
            );
            for p in &plan.placements {
                rec.observe(
                    "sched.slowdown",
                    &[(tags::POLICY, TagValue::Str(name))],
                    p.slowdown,
                );
            }
        }
        plans.push(plan);
    }
    if let Some(rec) = mc_obs::recorder() {
        rec.add("sched.simulations", &[], ev.sims() as u64);
        // Each placement becomes a node-tagged `sched.job` span:
        // `--trace-format chrome` shows per-node occupancy tracks, and
        // `--report` tables the same spans.
        for plan in &plans {
            mc_sched::report::record_plan_spans(rec.as_ref(), &jobs, plan);
        }
    }
    let mut out = mc_sched::report::render(&fleet, &jobs, &plans, max_slowdown);
    let _ = writeln!(out, "\nnode simulations: {}", ev.sims());
    if let Some(path) = args.get("report") {
        let mut rep =
            mc_viz::HtmlReport::new(&format!("schedule — {} jobs on {}", jobs.len(), fleet_desc));
        rep.meta("fleet", &fleet_desc);
        rep.meta("jobs", &jobs.len().to_string());
        rep.meta("policies", &names.join(", "));
        rep.meta("max slowdown", &format!("{max_slowdown:.2}"));
        rep.meta("node simulations", &ev.sims().to_string());
        for plan in &plans {
            rep.figure(
                &format!("policy {}", plan.policy),
                &schedule_gantt(&jobs, fleet.nodes.len(), plan).render(900.0),
            );
        }
        let rows = plans
            .iter()
            .map(|p| {
                vec![
                    p.policy.clone(),
                    format!("{:.6}", p.makespan),
                    format!("{:.4}", p.throughput),
                    p.colocated.to_string(),
                    p.violations.to_string(),
                ]
            })
            .collect();
        rep.table(
            "Policy comparison",
            &[
                "policy",
                "makespan_s",
                "throughput_jobs_per_s",
                "colocated",
                "violations",
            ],
            rows,
        );
        if let Some(snap) = mc_obs::recorder().and_then(|r| r.snapshot()) {
            rep.metrics(&snap);
        }
        fs::write(path, rep.render()).map_err(|e| McError::io(path, e))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

/// Build a per-node occupancy Gantt for one schedule plan: one row per
/// fleet node, one bar per placed job running from the common start to
/// its predicted finish, alternating colours so overlapping co-located
/// bars stay distinguishable.
fn schedule_gantt(
    jobs: &[mc_sched::JobSpec],
    nodes: usize,
    plan: &mc_sched::SchedulePlan,
) -> mc_viz::Gantt {
    use mc_viz::{GanttBar, GanttRow, COMM_COLOR, COMP_COLOR};
    let mut rows: Vec<GanttRow> = (0..nodes)
        .map(|n| GanttRow {
            label: format!("node {n}"),
            bars: Vec::new(),
        })
        .collect();
    for (i, p) in plan.placements.iter().enumerate() {
        rows[p.node].bars.push(GanttBar {
            t0: 0.0,
            t1: p.finish,
            color: if i % 2 == 0 { COMP_COLOR } else { COMM_COLOR }.to_string(),
            label: jobs[p.job].name.clone(),
        });
    }
    mc_viz::Gantt {
        title: format!("policy {}", plan.policy),
        rows,
    }
}

/// Dispatch a parsed command line.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "topo" => topo(args),
        "bench" => bench(args),
        "calibrate" => calibrate_cmd(args),
        "predict" => predict(args),
        "advise" => advise(args),
        "evaluate" => evaluate_cmd(args),
        "replay" => replay_cmd(args),
        "schedule" => schedule_cmd(args),
        "serve" => {
            // The one long-lived subcommand: streams responses directly
            // rather than rendering a string.
            if args.get("listen").is_some() {
                let server = crate::net::NetServer::bind(args)?;
                // The announce line is the only place a client learns an
                // ephemeral port, so it must be flushed before serving.
                {
                    let mut out = std::io::stdout().lock();
                    writeln!(out, "{}", server.announce_line())
                        .and_then(|()| out.flush())
                        .map_err(|e| mc_model::McError::io("stdout", e))?;
                }
                server.run()?;
            } else {
                crate::serve::serve_loop(args, std::io::stdin().lock(), std::io::stdout().lock())?;
            }
            Ok(String::new())
        }
        "help" => Ok(USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        run(&Args::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn topo_all_and_single() {
        let all = run_line(&["topo"]).unwrap();
        assert!(all.contains("henri"));
        assert!(all.contains("occigen"));
        let one = run_line(&["topo", "--platform", "diablo"]).unwrap();
        assert!(one.contains("diablo"));
        assert!(!one.contains("occigen"));
    }

    #[test]
    fn bench_prints_a_sweep_table() {
        let out = run_line(&["bench", "--platform", "occigen"]).unwrap();
        assert!(out.contains("comp alone"));
        assert_eq!(out.lines().count(), 2 + 13); // header x2 + 13 core counts
    }

    #[test]
    fn calibrate_prints_both_instantiations() {
        let out = run_line(&["calibrate", "--platform", "henri"]).unwrap();
        assert!(out.contains("M_local"));
        assert!(out.contains("M_remote"));
        assert!(out.contains("Bcomm_seq"));
    }

    #[test]
    fn sparse_calibration_flag_works() {
        let out = run_line(&[
            "calibrate",
            "--platform",
            "henri-subnuma",
            "--sparse",
            "yes",
        ])
        .unwrap();
        assert!(out.contains("sparse sweeps"));
        assert!(out.contains("% of runs saved"));
        assert!(out.contains("M_remote"));
    }

    #[test]
    fn predict_reports_overlap_shares() {
        let out = run_line(&[
            "predict",
            "--platform",
            "henri",
            "--cores",
            "17",
            "--comp-numa",
            "0",
            "--comm-numa",
            "0",
        ])
        .unwrap();
        assert!(out.contains("in parallel"));
        assert!(out.contains("overlap keeps"));
    }

    #[test]
    fn predict_round_trips_through_a_model_file() {
        let dir = std::env::temp_dir().join("memcontend-test-model.txt");
        let path = dir.to_str().unwrap();
        run_line(&["calibrate", "--platform", "henri", "--save", path]).unwrap();
        let out = run_line(&[
            "predict",
            "--model",
            path,
            "--cores",
            "17",
            "--comp-numa",
            "0",
            "--comm-numa",
            "1",
        ])
        .unwrap();
        assert!(out.contains("GB/s"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn advise_lists_a_podium() {
        let out = run_line(&[
            "advise",
            "--platform",
            "henri-subnuma",
            "--compute-gb",
            "48",
            "--comm-gb",
            "8",
        ])
        .unwrap();
        assert!(out.contains("makespan"));
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn evaluate_prints_a_table2_row() {
        let out = run_line(&["evaluate", "--platform", "occigen"]).unwrap();
        assert!(out.contains("average"));
        assert!(out.contains('%'));
    }

    #[test]
    fn unknown_platform_and_command_error() {
        assert_eq!(
            run_line(&["topo", "--platform", "zzz"]),
            Err(CliError::UnknownPlatform("zzz".into()))
        );
        assert_eq!(
            run_line(&["frobnicate"]),
            Err(CliError::UnknownCommand("frobnicate".into()))
        );
    }

    #[test]
    fn unknown_platform_lists_the_candidates_everywhere() {
        // Every subcommand that takes --platform routes through the same
        // error, whose message enumerates platforms::extended().
        for cmd in ["topo", "bench", "calibrate", "evaluate", "advise", "replay"] {
            let e = run_line(&[cmd, "--platform", "zzz", "--generate", "halo2d"]).unwrap_err();
            let msg = e.to_string();
            assert!(e.is_usage(), "{cmd}: {msg}");
            for name in ["henri", "henri-subnuma", "grillon"] {
                assert!(msg.contains(name), "{cmd}: {msg}");
            }
        }
    }

    #[test]
    fn replay_generates_and_reports_slowdown() {
        let out = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "allreduce",
            "--ranks",
            "2",
            "--iters",
            "1",
            "--compute-mb",
            "32",
            "--comm-mb",
            "4",
        ])
        .unwrap();
        assert!(out.contains("trace replay — 2 ranks"), "{out}");
        assert!(out.contains("contention slowdown:"), "{out}");
        assert!(out.contains("rank timelines"), "{out}");
    }

    #[test]
    fn replay_flag_mistakes_are_usage_errors() {
        let base = ["replay", "--platform", "henri"];
        let e = run_line(&[&base[..], &["--generate", "zzz"]].concat()).unwrap_err();
        assert!(matches!(e, CliError::UnknownPattern(_)));
        assert!(e.is_usage());
        assert!(e.to_string().contains("halo2d"), "{e}");
        let e = run_line(&base).unwrap_err();
        assert!(e.is_usage(), "{e}");
        let e = run_line(&[&base[..], &["--generate", "halo2d", "--input", "x.jsonl"]].concat())
            .unwrap_err();
        assert!(e.is_usage(), "{e}");
        let e =
            run_line(&[&base[..], &["--generate", "halo2d", "--ranks", "1"]].concat()).unwrap_err();
        assert!(e.is_usage(), "{e}");
        let e = run_line(&[&base[..], &["--generate", "halo2d", "--comp-numa", "9"]].concat())
            .unwrap_err();
        assert!(matches!(e, CliError::NumaOutOfRange { .. }), "{e}");
    }

    #[test]
    fn replay_round_trips_a_saved_trace_and_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memcontend-replay-{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap();
        let svg_path = dir.join(format!("memcontend-replay-{}.svg", std::process::id()));
        let svg_path = svg_path.to_str().unwrap();
        let first = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "halo2d",
            "--ranks",
            "4",
            "--iters",
            "1",
            "--compute-mb",
            "64",
            "--comm-mb",
            "8",
            "--save-trace",
            path,
        ])
        .unwrap();
        // Replaying the saved trace reproduces the report byte for byte
        // (modulo the gantt footer line).
        let second = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--input",
            path,
            "--gantt",
            svg_path,
        ])
        .unwrap();
        assert!(
            second.starts_with(&first),
            "diverged:\n{first}\nvs\n{second}"
        );
        assert!(second.contains("gantt chart written to"), "{second}");
        let svg = std::fs::read_to_string(svg_path).unwrap();
        assert!(svg.contains("<svg"), "{}", &svg[..60.min(svg.len())]);
        // A malformed trace file is invalid data (exit 3), not usage.
        std::fs::write(path, "{\"rank\":0,\"event\":\"warp\"}\n").unwrap();
        let e = run_line(&["replay", "--platform", "henri", "--input", path]).unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_INVALID_DATA, "{e}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(svg_path).ok();
    }

    #[test]
    fn streamed_replay_matches_the_eager_summary() {
        let base = [
            "replay",
            "--platform",
            "henri",
            "--generate",
            "halo2d",
            "--ranks",
            "4",
            "--iters",
            "2",
            "--compute-mb",
            "64",
            "--comm-mb",
            "8",
        ];
        let eager = run_line(&base).unwrap();
        let streamed = run_line(&[&base[..], &["--stream", "yes"]].concat()).unwrap();
        // Identical makespans and slowdown, byte for byte.
        let head = |s: &str| {
            s.lines()
                .take(4)
                .map(String::from)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&eager), head(&streamed));
    }

    #[test]
    fn streamed_file_replay_needs_the_header_and_excludes_search() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memcontend-stream-{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap();
        run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "pipeline",
            "--ranks",
            "3",
            "--iters",
            "2",
            "--stream",
            "yes",
            "--save-trace",
            path,
        ])
        .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("{\"ranks\":3}\n"), "{}", &text[..40]);
        let out = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--input",
            path,
            "--stream",
            "yes",
        ])
        .unwrap();
        assert!(out.contains("trace replay — 3 ranks"), "{out}");

        // A header-less file cannot be streamed (invalid data, exit 3) …
        std::fs::write(path, "{\"rank\":0,\"event\":\"wait\"}\n").unwrap();
        let e = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--input",
            path,
            "--stream",
            "yes",
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_INVALID_DATA, "{e}");
        assert!(e.to_string().contains("header"), "{e}");
        // … and --stream --search is a usage error.
        let e = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "halo2d",
            "--stream",
            "yes",
            "--search",
            "yes",
        ])
        .unwrap_err();
        assert!(e.is_usage(), "{e}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_search_ranks_placements_and_crosschecks_the_advisor() {
        let out = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "allreduce",
            "--ranks",
            "2",
            "--iters",
            "1",
            "--cores",
            "12",
            "--compute-mb",
            "256",
            "--comm-mb",
            "16",
            "--search",
            "yes",
        ])
        .unwrap();
        assert!(out.contains("placement search (best first):"), "{out}");
        // henri has 2 NUMA nodes: 4 placements evaluated.
        assert_eq!(
            out.lines().filter(|l| l.contains("m_comp=")).count(),
            4,
            "{out}"
        );
        assert!(out.contains("advisor cross-check:"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("memcontend"));
        assert!(out.contains("henri-cxl"), "{out}");
        assert!(out.contains("--comm-mode"), "{out}");
    }

    #[test]
    fn replay_cxl_mode_prints_the_head_to_head() {
        let base = [
            "replay",
            "--platform",
            "henri-cxl",
            "--generate",
            "halo2d",
            "--ranks",
            "4",
            "--iters",
            "2",
            "--cores",
            "17",
            "--compute-mb",
            "1024",
            "--comm-mb",
            "64",
        ];
        let out = run_line(&[&base[..], &["--comm-mode", "cxl"]].concat()).unwrap();
        assert!(out.contains("comm-mode head-to-head"), "{out}");
        assert!(out.contains("verdict:"), "{out}");
        // The streamed form agrees byte for byte.
        let streamed =
            run_line(&[&base[..], &["--comm-mode", "cxl", "--stream", "yes"]].concat()).unwrap();
        let head = |s: &str| s.lines().take(8).collect::<Vec<_>>().join("\n");
        assert_eq!(head(&out), head(&streamed));
        // Plain messaging mode never prints the comparison.
        let plain = run_line(&[&base[..], &["--comm-mode", "messages"]].concat()).unwrap();
        assert!(!plain.contains("comm-mode head-to-head"), "{plain}");
        assert_eq!(plain, run_line(&base).unwrap());
    }

    #[test]
    fn replay_cxl_mode_flag_mistakes_are_typed_errors() {
        let base = ["replay", "--platform", "henri", "--generate", "halo2d"];
        // A platform without a pool is invalid data (exit 3), not a panic.
        let e = run_line(&[&base[..], &["--comm-mode", "cxl"]].concat()).unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_INVALID_DATA, "{e}");
        assert!(e.to_string().contains("CXL"), "{e}");
        // An unknown mode and --search with cxl are usage errors.
        let e = run_line(&[&base[..], &["--comm-mode", "zzz"]].concat()).unwrap_err();
        assert!(e.is_usage(), "{e}");
        assert!(e.to_string().contains("comm-mode"), "{e}");
        let e = run_line(
            &[
                &["replay", "--platform", "henri-cxl", "--generate", "halo2d"][..],
                &["--comm-mode", "cxl", "--search", "yes"],
            ]
            .concat(),
        )
        .unwrap_err();
        assert!(e.is_usage(), "{e}");
    }

    #[test]
    fn replay_report_writes_self_contained_html() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memcontend-report-{}.html", std::process::id()));
        let path = path.to_str().unwrap();
        let out = run_line(&[
            "replay",
            "--platform",
            "henri",
            "--generate",
            "allreduce",
            "--ranks",
            "2",
            "--iters",
            "1",
            "--compute-mb",
            "32",
            "--comm-mb",
            "4",
            "--report",
            path,
        ])
        .unwrap();
        assert!(out.contains("report written to"), "{out}");
        let html = std::fs::read_to_string(path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"), "{}", &html[..60]);
        assert!(html.contains("<dt>platform</dt><dd>henri</dd>"), "{html}");
        assert!(html.contains("<dt>contention slowdown</dt>"), "{html}");
        assert!(html.contains("<svg"), "{html}");
        // Self-contained: nothing references external resources.
        assert!(!html.contains("src="), "{html}");
        assert!(!html.contains("href="), "{html}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn schedule_report_charts_every_policy() {
        let queue = write_queue("report", SMALL_QUEUE);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "memcontend-sched-report-{}.html",
            std::process::id()
        ));
        let path = path.to_str().unwrap();
        let out = run_line(&[
            "schedule",
            "--jobs",
            &queue,
            "--platform",
            "henri",
            "--nodes",
            "2",
            "--policy",
            "all",
            "--report",
            path,
        ])
        .unwrap();
        assert!(out.contains("report written to"), "{out}");
        let html = std::fs::read_to_string(path).unwrap();
        for policy in ["first_fit", "round_robin", "contention_aware"] {
            assert!(html.contains(&format!("policy {policy}")), "{html}");
        }
        assert!(html.contains("<h2>Policy comparison</h2>"), "{html}");
        assert!(html.contains("solver"), "{html}");
        assert!(html.contains("node 0"), "{html}");
        assert!(!html.contains("src="), "{html}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(queue).ok();
    }

    fn write_queue(tag: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "memcontend-queue-{tag}-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, contents).unwrap();
        path.to_str().unwrap().to_string()
    }

    const SMALL_QUEUE: &str = "\
        {\"name\":\"solver\",\"compute_gb\":25,\"comm_gb\":2,\"max_cores\":8}\n\
        {\"name\":\"shuffle\",\"compute_gb\":2,\"comm_gb\":10,\"max_cores\":8}\n\
        {\"name\":\"mix\",\"compute_gb\":12,\"comm_gb\":4,\"max_cores\":8}\n";

    #[test]
    fn schedule_compares_policies_and_reports_placements() {
        let path = write_queue("compare", SMALL_QUEUE);
        let out = run_line(&[
            "schedule",
            "--jobs",
            &path,
            "--platform",
            "henri",
            "--nodes",
            "2",
            "--policy",
            "all",
        ])
        .unwrap();
        for policy in ["first_fit", "round_robin", "contention_aware"] {
            assert!(out.contains(&format!("policy {policy}")), "{out}");
        }
        assert!(out.contains("policy comparison"), "{out}");
        assert!(out.contains("solver"), "{out}");
        assert!(out.contains("makespan_s "), "{out}");
        assert!(out.contains("node simulations:"), "{out}");
        // Same invocation, same bytes: the report is deterministic.
        let again = run_line(&[
            "schedule",
            "--jobs",
            &path,
            "--platform",
            "henri",
            "--nodes",
            "2",
            "--policy",
            "all",
        ])
        .unwrap();
        assert_eq!(out, again);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn schedule_accepts_mixed_fleets_and_pattern_jobs() {
        let path = write_queue(
            "mixed",
            "{\"name\":\"halo\",\"pattern\":\"halo2d\",\"ranks\":4,\"iters\":1,\
             \"cores\":2,\"compute_mb\":64,\"comm_mb\":16,\"max_cores\":6}\n\
             {\"name\":\"inline\",\"compute_gb\":8}\n",
        );
        let out = run_line(&["schedule", "--jobs", &path, "--fleet", "henri*1,dahu*1"]).unwrap();
        assert!(out.contains("henri x1 + dahu x1"), "{out}");
        assert!(out.contains("halo"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn schedule_degenerate_inputs_are_typed_errors_not_panics() {
        let path = write_queue("degenerate", SMALL_QUEUE);
        let base = ["schedule", "--jobs", &path, "--platform", "henri"];

        // Zero-node fleet: usage error (exit 2).
        let e = run_line(&[&base[..], &["--nodes", "0"]].concat()).unwrap_err();
        assert_eq!(e, CliError::NonPositive("nodes"));
        // Sub-1.0 slowdown threshold: usage error.
        let e = run_line(&[&base[..], &["--max-slowdown", "0.5"]].concat()).unwrap_err();
        assert!(e.is_usage(), "{e}");
        assert!(e.to_string().contains("max-slowdown"), "{e}");
        // Unknown policy: usage error naming the candidates.
        let e = run_line(&[&base[..], &["--policy", "zzz"]].concat()).unwrap_err();
        assert!(e.is_usage(), "{e}");
        assert!(e.to_string().contains("contention_aware"), "{e}");
        // Bad fleet specs: usage errors.
        let e = run_line(&["schedule", "--jobs", &path, "--fleet", "henri*x"]).unwrap_err();
        assert!(matches!(e, CliError::BadValue("fleet", _)), "{e}");
        let e = run_line(&["schedule", "--jobs", &path, "--fleet", "zzz*2"]).unwrap_err();
        assert!(matches!(e, CliError::UnknownPlatform(_)), "{e}");
        let e = run_line(&["schedule", "--jobs", &path, "--fleet", "henri*0"]).unwrap_err();
        assert_eq!(e, CliError::NonPositive("fleet"));

        // Empty queue: invalid data (exit 3), not a panic.
        let empty = write_queue("empty", "\n");
        let e = run_line(&["schedule", "--jobs", &empty, "--platform", "henri"]).unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_INVALID_DATA, "{e}");
        assert!(e.to_string().contains("empty"), "{e}");
        std::fs::remove_file(empty).ok();

        // A job wider than every node: invalid data naming the job.
        let wide = write_queue(
            "wide",
            "{\"name\":\"huge\",\"compute_gb\":4,\"max_cores\":4096}\n",
        );
        let e = run_line(&["schedule", "--jobs", &wide, "--platform", "henri"]).unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_INVALID_DATA, "{e}");
        assert!(e.to_string().contains("huge"), "{e}");
        std::fs::remove_file(wide).ok();

        // Missing queue file: I/O (exit 4).
        let e = run_line(&[
            "schedule",
            "--jobs",
            "/nonexistent/queue.jsonl",
            "--platform",
            "henri",
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), crate::args::EXIT_IO, "{e}");
        std::fs::remove_file(path).ok();
    }
}
