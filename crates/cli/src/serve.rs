//! The `memcontend serve` subcommand: a long-lived, batched prediction
//! service speaking JSON lines over stdin/stdout.
//!
//! ## Protocol
//!
//! One request per line, one response per line, in order. A request is a
//! JSON object carrying either an `"op"` or a `"batch"`:
//!
//! ```text
//! {"op":"predict","platform":"henri","cores":17,"comp_numa":0,"comm_numa":1}
//! {"op":"predict","model":"model.txt","cores":8,"comp_numa":0,"comm_numa":0}
//! {"op":"calibrate","platform":"henri"}
//! {"op":"evaluate","platform":"henri"}
//! {"op":"recommend","platform":"henri","compute_gb":48,"comm_gb":8}
//! {"op":"replay","platform":"henri","pattern":"halo2d","ranks":4}
//! {"op":"replay","platform":"henri","trace_file":"app.trace.jsonl"}
//! {"batch":[{...},{...}]}
//! ```
//!
//! Any request may carry an `"id"` (string or number) echoed in its
//! response. Success responses are `{"ok":true,"op":...,...}`; failures
//! are `{"ok":false,"error":{"class":C,"exit_code":N,"message":M}}`
//! where `class`/`exit_code` follow the CLI's established contract —
//! `usage`/2 for malformed requests, `data`/3 for invalid model data,
//! `io`/4 for file failures. A bad request never terminates the loop;
//! the process exits 0 at EOF (and 2/3/4 only for *startup* failures:
//! bad flags, an unreadable `--warm` file).
//!
//! ## Caching and batching
//!
//! The model-backed ops answer from a shared [`ModelRegistry`] — a sharded LRU
//! cache of calibrated models keyed by (platform, bench config,
//! calibration placements) — so only the first request against a
//! platform pays for calibration sweeps; every later one is a registry
//! hit (`"cached":true` in the response). `--warm PLATFORM=FILE[,...]`
//! seeds the registry from persisted model files at startup. A
//! `{"batch":[...]}` envelope fans its requests out over a bounded,
//! point-stealing worker pool (the pooled-sweep idiom of
//! `mc_membench::sweep`) and returns responses in request order.
//!
//! Everything is instrumented through `mc-obs` (spans `serve` /
//! `serve.batch` / `serve.request`, counters `serve.requests` and
//! `registry.hit`/`registry.miss`, histogram `serve.request_seconds`),
//! exported via the global `--metrics`/`--trace` flags.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mc_membench::{
    calibration_placements, calibration_sweeps, sweep_platform_parallel, BenchConfig,
};
use mc_model::{
    evaluate, model_from_text, rank, ContentionModel, McError, ModelParams, ModelRegistry,
    PhaseProfile, RegistryKey,
};
use mc_obs::{tags, TagValue};
use mc_replay::generate::{self, GenParams};
use mc_replay::{ReplayConfig, Trace};
use mc_topology::{platforms, NumaId, Platform};

use crate::args::{Args, CliError, EXIT_INVALID_DATA, EXIT_IO};
use crate::json::{obj, Json};

/// Default registry capacity: comfortably above the built-in platform
/// count so a service scanning every machine still gets all hits.
const DEFAULT_CAPACITY: usize = 64;

/// Upper default on batch workers: batches are short bursts; more
/// threads than this mostly contend on the registry shards.
const MAX_DEFAULT_WORKERS: usize = 8;

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_WORKERS)
}

/// Parse `--workers`/`--capacity` and build the warm-loaded registry.
/// Failures here are *startup* failures — the only fatal (exit 2/3/4)
/// path a serve transport keeps.
pub(crate) fn build_registry(args: &Args) -> Result<(ModelRegistry, usize), CliError> {
    let workers: usize = args.num_or("workers", default_workers())?;
    if workers == 0 {
        return Err(CliError::NonPositive("workers"));
    }
    let capacity: usize = args.num_or("capacity", DEFAULT_CAPACITY)?;
    if capacity == 0 {
        return Err(CliError::NonPositive("capacity"));
    }
    let registry = ModelRegistry::new(capacity);
    warm_load(&registry, args)?;
    Ok((registry, workers))
}

/// Run the stdin/stdout serve loop (the binary passes locked
/// stdin/stdout; tests pass buffers).
///
/// Startup failures (bad flags, an unreadable `--warm` file) are fatal.
/// A transport that dies *mid-session* — a truncated pipe, a read error
/// — ends the session like EOF instead of aborting the process: the
/// requests already answered stay answered, and the exit code stays 0.
pub fn serve_loop(
    args: &Args,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), CliError> {
    let (registry, workers) = build_registry(args)?;

    let _span = mc_obs::span(
        "serve",
        &[
            (tags::WORKERS, TagValue::U64(workers as u64)),
            (tags::TRANSPORT, TagValue::Str("stdio")),
        ],
    );
    // The shared line-oriented parser: skips blank and `#` lines,
    // bounds nesting depth against hostile requests, and attributes
    // syntax errors to their line number.
    for item in mc_json::parse_lines(input) {
        let response = match item {
            Ok((_line, request)) => dispatch(&registry, &request, workers),
            Err(mc_json::LineError::Io { line, error }) => {
                count_disconnect("stdio");
                eprintln!("serve: input failed at line {line} ({error}); ending session");
                break;
            }
            Err(mc_json::LineError::Json { line, error }) => {
                count_request("invalid", "usage");
                error_response(
                    None,
                    &CliError::Protocol(format!("request line {line} is not valid JSON ({error})")),
                )
            }
        };
        if write_response(&mut output, &response).is_err() {
            count_disconnect("stdio");
            eprintln!("serve: output failed; ending session");
            break;
        }
    }
    Ok(())
}

/// Write one response line and flush — clients block on the reply, so it
/// must never sit in a buffer.
pub(crate) fn write_response(output: &mut impl Write, response: &Json) -> std::io::Result<()> {
    writeln!(output, "{}", response.render())?;
    output.flush()
}

/// Count a session torn down by a transport failure (tagged with the
/// transport so a stdio pipe break and a dropped TCP client stay
/// distinguishable).
pub(crate) fn count_disconnect(transport: &str) {
    if let Some(rec) = mc_obs::recorder() {
        rec.add(
            "serve.disconnects",
            &[(tags::TRANSPORT, TagValue::Str(transport))],
            1,
        );
    }
}

/// Seed the registry from every `--warm` flag at startup. Failures here
/// are fatal (exit 2/3/4): a service that silently starts cold when
/// asked to start warm would defeat the point of the flag.
fn warm_load(registry: &ModelRegistry, args: &Args) -> Result<(), CliError> {
    for spec in args.get_all("warm") {
        for part in split_warm_spec(spec) {
            let Some((name, path)) = part.split_once('=') else {
                return Err(CliError::Protocol(format!(
                    "--warm entry '{part}' is not PLATFORM=FILE"
                )));
            };
            let platform = platforms::by_name(name)
                .ok_or_else(|| CliError::UnknownPlatform(name.to_string()))?;
            let text = std::fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
            registry
                .warm_from_text(platform_key(&platform), &text)
                .map_err(CliError::from)?;
        }
    }
    Ok(())
}

/// Split one `--warm` value into entries. The historical
/// `PLAT=FILE,PLAT=FILE` list form is honoured only when *every*
/// comma-separated segment contains `=`; otherwise the commas belong to
/// a file path and the value is a single entry. Paths whose comma-split
/// tails happen to contain `=` must use one `--warm` flag per entry —
/// the unambiguous form.
fn split_warm_spec(spec: &str) -> Vec<&str> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() > 1 && parts.iter().all(|p| p.contains('=')) {
        parts
    } else {
        vec![spec]
    }
}

pub(crate) fn platform_key(platform: &Platform) -> RegistryKey {
    RegistryKey::new(platform.name(), "default", calibration_placements(platform))
}

/// Route one parsed line: batch envelope or single request.
pub(crate) fn dispatch(registry: &ModelRegistry, request: &Json, workers: usize) -> Json {
    if request.get("batch").is_some() {
        handle_batch(registry, request, workers)
    } else {
        handle_request(registry, request)
    }
}

/// Fan a batch out over a point-stealing worker pool; responses come
/// back in request order (each lands in its pre-assigned slot, exactly
/// like the pooled sweep writes measurement points).
fn handle_batch(registry: &ModelRegistry, request: &Json, workers: usize) -> Json {
    let id = request.get("id").cloned();
    let Some(items) = request.get("batch").and_then(Json::as_array) else {
        count_request("batch", "usage");
        return error_response(
            id.as_ref(),
            &CliError::Protocol("'batch' must be an array of requests".into()),
        );
    };
    let _span = mc_obs::span(
        "serve.batch",
        &[(tags::BATCH_SIZE, TagValue::U64(items.len() as u64))],
    );
    if let Some(rec) = mc_obs::recorder() {
        rec.add("serve.batches", &[], 1);
        rec.observe("serve.batch_size", &[], items.len() as f64);
    }

    let workers = workers.min(items.len()).max(1);
    let responses: Vec<Json> = if workers == 1 {
        items
            .iter()
            .map(|item| handle_batch_item(registry, item))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<(usize, Json)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    let response = handle_batch_item(registry, &items[idx]);
                    slots
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push((idx, response));
                });
            }
        });
        let mut measured = slots.into_inner().unwrap_or_else(|p| p.into_inner());
        measured.sort_unstable_by_key(|&(idx, _)| idx);
        measured.into_iter().map(|(_, r)| r).collect()
    };

    let mut members = vec![("ok", Json::Bool(true))];
    if let Some(id) = id {
        members.push(("id", id));
    }
    members.push(("batch", Json::Arr(responses)));
    obj(members)
}

fn handle_batch_item(registry: &ModelRegistry, item: &Json) -> Json {
    if item.get("batch").is_some() {
        count_request("batch", "usage");
        return error_response(
            item.get("id"),
            &CliError::Protocol("batches cannot nest".into()),
        );
    }
    handle_request(registry, item)
}

/// Answer one non-batch request; never panics, never kills the loop.
fn handle_request(registry: &ModelRegistry, request: &Json) -> Json {
    let id = request.get("id").cloned();
    let op = request
        .get("op")
        .and_then(Json::as_str)
        .unwrap_or("invalid")
        .to_string();
    let _span = mc_obs::span("serve.request", &[(tags::OP, TagValue::Str(&op))]);
    let started = mc_obs::enabled().then(Instant::now);
    let result = try_request(registry, request);
    if let (Some(started), Some(rec)) = (started, mc_obs::recorder()) {
        rec.observe(
            "serve.request_seconds",
            &[(tags::OP, TagValue::Str(&op))],
            started.elapsed().as_secs_f64(),
        );
    }
    match result {
        Ok(response) => {
            count_request(&op, "ok");
            match id {
                Some(id) => prepend_id(response, id),
                None => response,
            }
        }
        Err(e) => {
            count_request(&op, class_of(&e));
            error_response(id.as_ref(), &e)
        }
    }
}

fn try_request(registry: &ModelRegistry, request: &Json) -> Result<Json, CliError> {
    if !matches!(request, Json::Obj(_)) {
        return Err(CliError::Protocol("request must be a JSON object".into()));
    }
    let op = request
        .get("op")
        .ok_or_else(|| CliError::Protocol("missing 'op' (or 'batch')".into()))?
        .as_str()
        .ok_or_else(|| CliError::Protocol("'op' must be a string".into()))?;
    match op {
        "predict" => predict(registry, request),
        "calibrate" => calibrate(registry, request),
        "evaluate" => evaluate_op(registry, request),
        "recommend" => recommend(registry, request),
        "replay" => replay_op(request),
        "stats" => stats_op(registry),
        other => Err(CliError::Protocol(format!("unknown op '{other}'"))),
    }
}

/// `"platform"` field → a known platform, or a protocol error.
fn req_platform(request: &Json) -> Result<Platform, CliError> {
    let name = req_str(request, "platform")?;
    platforms::by_name(name).ok_or_else(|| CliError::UnknownPlatform(name.to_string()))
}

fn req_str<'a>(request: &'a Json, field: &str) -> Result<&'a str, CliError> {
    request
        .get(field)
        .ok_or_else(|| CliError::Protocol(format!("missing '{field}'")))?
        .as_str()
        .ok_or_else(|| CliError::Protocol(format!("'{field}' must be a string")))
}

fn req_u64(request: &Json, field: &str) -> Result<u64, CliError> {
    request
        .get(field)
        .ok_or_else(|| CliError::Protocol(format!("missing '{field}'")))?
        .as_u64()
        .ok_or_else(|| CliError::Protocol(format!("'{field}' must be a non-negative integer")))
}

fn req_f64(request: &Json, field: &str) -> Result<f64, CliError> {
    let v = request
        .get(field)
        .ok_or_else(|| CliError::Protocol(format!("missing '{field}'")))?
        .as_f64()
        .ok_or_else(|| CliError::Protocol(format!("'{field}' must be a number")))?;
    if v < 0.0 {
        return Err(CliError::Protocol(format!("'{field}' must be >= 0")));
    }
    Ok(v)
}

/// Resolve the model a request addresses: by `"platform"` (calibrated on
/// miss) or by `"model"` file path (parsed on miss). Returns the model
/// and whether the registry already held it.
fn resolve_model(
    registry: &ModelRegistry,
    request: &Json,
) -> Result<(std::sync::Arc<ContentionModel>, bool), CliError> {
    if let Some(path) = request.get("model") {
        let path = path
            .as_str()
            .ok_or_else(|| CliError::Protocol("'model' must be a string path".into()))?;
        let zero = (NumaId::new(0), NumaId::new(0));
        let key = RegistryKey::new(format!("file:{path}"), "file", (zero, zero));
        return registry
            .get_or_insert_with(&key, || {
                let text = std::fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
                model_from_text(&text).map_err(McError::from)
            })
            .map_err(CliError::from);
    }
    let platform = req_platform(request)?;
    registry
        .get_or_insert_with(&platform_key(&platform), || {
            let (local, remote) = calibration_sweeps(&platform, BenchConfig::default());
            ContentionModel::calibrate(&platform.topology, &local, &remote).map_err(McError::from)
        })
        .map_err(CliError::from)
}

/// Range-check a NUMA field against the model's grid.
fn req_numa(request: &Json, field: &'static str, numa_count: usize) -> Result<NumaId, CliError> {
    let raw = req_u64(request, field)?;
    if raw > u16::MAX as u64 || raw as usize >= numa_count {
        return Err(CliError::NumaOutOfRange {
            option: field,
            numa: raw.min(u16::MAX as u64) as u16,
            count: numa_count,
        });
    }
    Ok(NumaId::new(raw as u16))
}

fn numa_count_of(model: &ContentionModel) -> usize {
    model.placements().len().isqrt()
}

fn predict(registry: &ModelRegistry, request: &Json) -> Result<Json, CliError> {
    let (model, cached) = resolve_model(registry, request)?;
    let cores = req_u64(request, "cores")? as usize;
    if cores == 0 {
        return Err(CliError::NonPositive("cores"));
    }
    let numa_count = numa_count_of(&model);
    let m_comp = req_numa(request, "comp_numa", numa_count)?;
    let m_comm = req_numa(request, "comm_numa", numa_count)?;
    let par = model.predict(cores, m_comp, m_comm);
    let alone = model.predict_alone(cores, m_comp, m_comm);
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("predict".into())),
        ("cores", Json::Num(cores as f64)),
        ("comp_numa", Json::Num(m_comp.index() as f64)),
        ("comm_numa", Json::Num(m_comm.index() as f64)),
        ("comp", Json::Num(par.comp)),
        ("comm", Json::Num(par.comm)),
        ("comp_alone", Json::Num(alone.comp)),
        ("comm_alone", Json::Num(alone.comm)),
        ("cached", Json::Bool(cached)),
    ]))
}

fn params_json(p: &ModelParams) -> Json {
    obj(vec![
        ("n_max_par", Json::Num(p.n_max_par as f64)),
        ("t_max_par", Json::Num(p.t_max_par)),
        ("n_max_seq", Json::Num(p.n_max_seq as f64)),
        ("t_max_seq", Json::Num(p.t_max_seq)),
        ("t_max2_par", Json::Num(p.t_max2_par)),
        ("delta_l", Json::Num(p.delta_l)),
        ("delta_r", Json::Num(p.delta_r)),
        ("b_comp_seq", Json::Num(p.b_comp_seq)),
        ("b_comm_seq", Json::Num(p.b_comm_seq)),
        ("alpha", Json::Num(p.alpha)),
    ])
}

fn calibrate(registry: &ModelRegistry, request: &Json) -> Result<Json, CliError> {
    let platform = req_platform(request)?;
    let (model, cached) = resolve_model(registry, request)?;
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("calibrate".into())),
        ("platform", Json::Str(platform.name().to_string())),
        ("local", params_json(model.local().params())),
        ("remote", params_json(model.remote().params())),
        ("cached", Json::Bool(cached)),
    ]))
}

fn evaluate_op(registry: &ModelRegistry, request: &Json) -> Result<Json, CliError> {
    let platform = req_platform(request)?;
    let (model, cached) = resolve_model(registry, request)?;
    let sweep = sweep_platform_parallel(&platform, BenchConfig::default());
    let samples = [
        calibration_placements(&platform).0,
        calibration_placements(&platform).1,
    ];
    let e = evaluate(model.as_ref(), &sweep, &samples);
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("evaluate".into())),
        ("platform", Json::Str(platform.name().to_string())),
        ("comm_samples", Json::Num(e.comm_samples)),
        ("comm_non_samples", Json::Num(e.comm_non_samples)),
        ("comm_all", Json::Num(e.comm_all)),
        ("comp_samples", Json::Num(e.comp_samples)),
        ("comp_non_samples", Json::Num(e.comp_non_samples)),
        ("comp_all", Json::Num(e.comp_all)),
        ("average", Json::Num(e.average)),
        ("skipped", Json::Num(e.skipped as f64)),
        ("cached", Json::Bool(cached)),
    ]))
}

fn recommend(registry: &ModelRegistry, request: &Json) -> Result<Json, CliError> {
    let platform = req_platform(request)?;
    let (model, cached) = resolve_model(registry, request)?;
    let compute_gb = req_f64(request, "compute_gb")?;
    let comm_gb = req_f64(request, "comm_gb")?;
    let max_cores = match request.get("max_cores") {
        None => platform.max_compute_cores(),
        Some(v) => v.as_u64().ok_or_else(|| {
            CliError::Protocol("'max_cores' must be a non-negative integer".into())
        })? as usize,
    };
    if max_cores == 0 {
        return Err(CliError::NonPositive("max_cores"));
    }
    let top = match request.get("top") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| CliError::Protocol("'top' must be a non-negative integer".into()))?
            as usize,
    };
    let phase = PhaseProfile {
        compute_bytes: compute_gb * 1e9,
        comm_bytes: comm_gb * 1e9,
        max_cores,
    };
    let ranked = rank(model.as_ref(), &phase);
    let considered = ranked.len();
    let recommendations: Vec<Json> = ranked
        .into_iter()
        .take(top.max(1))
        .map(|r| {
            obj(vec![
                ("cores", Json::Num(r.n_cores as f64)),
                ("comp_numa", Json::Num(r.m_comp.index() as f64)),
                ("comm_numa", Json::Num(r.m_comm.index() as f64)),
                ("comp_bw", Json::Num(r.comp_bw)),
                ("comm_bw", Json::Num(r.comm_bw)),
                ("makespan", Json::Num(r.makespan)),
            ])
        })
        .collect();
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("recommend".into())),
        ("platform", Json::Str(platform.name().to_string())),
        ("considered", Json::Num(considered as f64)),
        ("recommendations", Json::Arr(recommendations)),
        ("cached", Json::Bool(cached)),
    ]))
}

/// Optional positive-integer field with a default.
fn opt_usize(request: &Json, field: &'static str, default: usize) -> Result<usize, CliError> {
    match request.get(field) {
        None => Ok(default),
        Some(v) => {
            let n = v.as_u64().ok_or_else(|| {
                CliError::Protocol(format!("'{field}' must be a non-negative integer"))
            })? as usize;
            if n == 0 {
                return Err(CliError::NonPositive(field));
            }
            Ok(n)
        }
    }
}

/// Optional NUMA field, defaulting to node 0, range-checked.
fn opt_numa(request: &Json, field: &'static str, numa_count: usize) -> Result<NumaId, CliError> {
    match request.get(field) {
        None => Ok(NumaId::new(0)),
        Some(_) => req_numa(request, field, numa_count),
    }
}

/// `{"op":"replay",...}`: replay a synthetic pattern or a recorded trace
/// file and report the predicted contention slowdown. No registry entry
/// is involved — the replay simulates the platform directly.
fn replay_op(request: &Json) -> Result<Json, CliError> {
    let platform = req_platform(request)?;
    let trace = match (request.get("pattern"), request.get("trace_file")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Protocol(
                "'pattern' and 'trace_file' are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Protocol(
                "replay needs 'pattern' or 'trace_file'".into(),
            ))
        }
        (Some(_), None) => {
            let name = req_str(request, "pattern")?;
            let numa_count = platform.topology.numa_count();
            let defaults = GenParams::default();
            let ranks = opt_usize(request, "ranks", defaults.ranks)?;
            if ranks < 2 {
                return Err(CliError::Protocol("'ranks' must be at least 2".into()));
            }
            let params = GenParams {
                ranks,
                iters: opt_usize(request, "iters", defaults.iters)?,
                cores: opt_usize(request, "cores", defaults.cores)?,
                compute_bytes: match request.get("compute_mb") {
                    None => defaults.compute_bytes,
                    Some(_) => (req_f64(request, "compute_mb")? * (1 << 20) as f64) as u64,
                },
                comm_bytes: match request.get("comm_mb") {
                    None => defaults.comm_bytes,
                    Some(_) => (req_f64(request, "comm_mb")? * (1 << 20) as f64) as u64,
                },
                comp_numa: opt_numa(request, "comp_numa", numa_count)?,
                comm_numa: opt_numa(request, "comm_numa", numa_count)?,
            };
            generate::by_name(name, &params)
                .ok_or_else(|| CliError::UnknownPattern(name.to_string()))?
        }
        (None, Some(_)) => {
            let path = req_str(request, "trace_file")?;
            let text = std::fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
            Trace::from_json_lines(&text).map_err(CliError::from)?
        }
    };
    let out = mc_replay::replay(&platform, &trace, &ReplayConfig::default())?;
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("replay".into())),
        ("platform", Json::Str(platform.name().to_string())),
        ("ranks", Json::Num(out.ranks as f64)),
        ("events", Json::Num(out.events as f64)),
        ("makespan", Json::Num(out.contended.makespan)),
        ("baseline", Json::Num(out.baseline.makespan)),
        ("slowdown", Json::Num(out.slowdown)),
    ]))
}

/// `{"op":"stats"}`: the service's own health numbers — registry
/// counters (the hit-rate a load generator snapshots) and resident-set
/// telemetry. `current_rss_kb` is the instantaneous `VmRSS`, usable for
/// in-process deltas; `peak_rss_kb` is the process-lifetime high-water
/// mark. Off Linux both are `null`.
fn stats_op(registry: &ModelRegistry) -> Result<Json, CliError> {
    let s = registry.stats();
    let rss = |v: Option<u64>| v.map_or(Json::Null, |kb| Json::Num(kb as f64));
    Ok(obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::Str("stats".into())),
        ("models", Json::Num(s.len as f64)),
        ("hits", Json::Num(s.hits as f64)),
        ("misses", Json::Num(s.misses as f64)),
        ("evictions", Json::Num(s.evictions as f64)),
        ("hit_rate", Json::Num(s.hit_rate())),
        ("current_rss_kb", rss(mc_obs::current_rss_kb())),
        ("peak_rss_kb", rss(mc_obs::peak_rss_kb())),
    ]))
}

/// The error class string for a response: the exit-code contract's
/// `usage`/`data`/`io`, plus `overload` for admission rejections (a
/// transient service condition, not a caller mistake — clients back off
/// and retry rather than fixing the request).
pub(crate) fn class_of(e: &CliError) -> &'static str {
    match e {
        CliError::Overload(_) => "overload",
        _ => match e.exit_code() {
            EXIT_INVALID_DATA => "data",
            EXIT_IO => "io",
            _ => "usage",
        },
    }
}

pub(crate) fn error_response(id: Option<&Json>, e: &CliError) -> Json {
    let mut members = vec![("ok", Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id", id.clone()));
    }
    members.push((
        "error",
        obj(vec![
            ("class", Json::Str(class_of(e).into())),
            ("exit_code", Json::Num(e.exit_code() as f64)),
            ("message", Json::Str(e.to_string())),
        ]),
    ));
    obj(members)
}

/// Insert the echoed id right after `"ok"` so responses read uniformly.
fn prepend_id(response: Json, id: Json) -> Json {
    match response {
        Json::Obj(mut members) => {
            members.insert(1.min(members.len()), ("id".to_string(), id));
            Json::Obj(members)
        }
        other => other,
    }
}

pub(crate) fn count_request(op: &str, result: &str) {
    if let Some(rec) = mc_obs::recorder() {
        rec.add(
            "serve.requests",
            &[
                (tags::OP, TagValue::Str(op)),
                (tags::RESULT, TagValue::Str(result)),
            ],
            1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve(lines: &str, extra: &[&str]) -> Vec<Json> {
        let mut argv = vec!["serve"];
        argv.extend_from_slice(extra);
        let args = Args::parse(argv).unwrap();
        let mut out = Vec::new();
        serve_loop(&args, Cursor::new(lines.as_bytes()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    fn ok(resp: &Json) -> bool {
        resp.get("ok") == Some(&Json::Bool(true))
    }

    fn error_class(resp: &Json) -> Option<&str> {
        resp.get("error")?.get("class")?.as_str()
    }

    #[test]
    fn predict_misses_then_hits() {
        let req = r#"{"op":"predict","platform":"henri","cores":17,"comp_numa":0,"comm_numa":1}"#;
        let out = serve(&format!("{req}\n{req}\n"), &[]);
        assert_eq!(out.len(), 2);
        assert!(ok(&out[0]) && ok(&out[1]));
        assert_eq!(out[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(out[1].get("cached"), Some(&Json::Bool(true)));
        // Identical predictions either way.
        assert_eq!(out[0].get("comp"), out[1].get("comp"));
        assert!(out[0].get("comp").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn ops_share_one_registry_entry_per_platform() {
        let lines = concat!(
            r#"{"op":"calibrate","platform":"henri"}"#,
            "\n",
            r#"{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"op":"recommend","platform":"henri","compute_gb":10,"comm_gb":1}"#,
            "\n",
        );
        let out = serve(lines, &[]);
        assert!(out.iter().all(ok), "{out:?}");
        assert_eq!(out[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(out[1].get("cached"), Some(&Json::Bool(true)));
        assert_eq!(out[2].get("cached"), Some(&Json::Bool(true)));
        let recs = out[2].get("recommendations").unwrap().as_array().unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].get("makespan").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn batch_responses_come_back_in_request_order() {
        // Mixed good/bad items, ids echoed: order must match the request
        // array regardless of worker scheduling.
        let mut items = Vec::new();
        for i in 1..=12 {
            items.push(format!(
                r#"{{"id":{i},"op":"predict","platform":"henri","cores":{i},"comp_numa":0,"comm_numa":0}}"#
            ));
        }
        items.push(r#"{"id":13,"op":"nonsense"}"#.to_string());
        let line = format!("{{\"id\":\"b\",\"batch\":[{}]}}\n", items.join(","));
        let out = serve(&line, &["--workers", "4"]);
        assert_eq!(out.len(), 1);
        assert!(ok(&out[0]));
        assert_eq!(out[0].get("id").and_then(Json::as_str), Some("b"));
        let batch = out[0].get("batch").unwrap().as_array().unwrap();
        assert_eq!(batch.len(), 13);
        for (i, resp) in batch.iter().take(12).enumerate() {
            assert_eq!(
                resp.get("id").and_then(Json::as_u64),
                Some(i as u64 + 1),
                "slot {i} out of order"
            );
            assert_eq!(resp.get("cores").and_then(Json::as_u64), Some(i as u64 + 1));
        }
        assert_eq!(error_class(&batch[12]), Some("usage"));
        assert_eq!(batch[12].get("id").and_then(Json::as_u64), Some(13));
    }

    #[test]
    fn error_classes_map_the_exit_code_contract() {
        let lines = concat!(
            "not json\n",
            r#"{"op":"frobnicate"}"#,
            "\n",
            r#"{"op":"predict","platform":"zzz","cores":1,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"op":"predict","platform":"henri","cores":0,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"op":"predict","platform":"henri","cores":1,"comp_numa":9,"comm_numa":0}"#,
            "\n",
            r#"{"op":"predict","model":"/nonexistent/m.txt","cores":1,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"batch":42}"#,
            "\n",
        );
        let out = serve(lines, &[]);
        let classes: Vec<_> = out.iter().map(|r| error_class(r).unwrap()).collect();
        assert_eq!(
            classes,
            ["usage", "usage", "usage", "usage", "usage", "io", "usage"]
        );
        let codes: Vec<_> = out
            .iter()
            .map(|r| r.get("error").unwrap().get("exit_code").unwrap().as_u64())
            .collect();
        assert_eq!(codes[5], Some(4));
        assert!(codes.iter().take(5).all(|c| *c == Some(2)));
    }

    #[test]
    fn malformed_model_file_is_a_data_error() {
        let dir = std::env::temp_dir().join(format!("memcontend-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(&path, "[meta]\nnuma_per_socket = NaN\n").unwrap();
        let line = format!(
            r#"{{"op":"predict","model":"{}","cores":1,"comp_numa":0,"comm_numa":0}}"#,
            path.display()
        );
        let out = serve(&format!("{line}\n"), &[]);
        assert_eq!(error_class(&out[0]), Some("data"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn model_file_requests_round_trip_and_cache() {
        let dir = std::env::temp_dir().join(format!("memcontend-serve-ok-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
        let model = ContentionModel::calibrate(&p.topology, &local, &remote).unwrap();
        std::fs::write(&path, mc_model::model_to_text(&model)).unwrap();
        let line = format!(
            r#"{{"op":"predict","model":"{}","cores":8,"comp_numa":0,"comm_numa":1}}"#,
            path.display()
        );
        let out = serve(&format!("{line}\n{line}\n"), &[]);
        assert!(ok(&out[0]) && ok(&out[1]));
        assert_eq!(out[1].get("cached"), Some(&Json::Bool(true)));
        let expect = model.predict(8, NumaId::new(0), NumaId::new(1));
        assert_eq!(out[0].get("comp").unwrap().as_f64().unwrap(), expect.comp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_loaded_platform_hits_on_first_request() {
        let dir = std::env::temp_dir().join(format!("memcontend-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("henri.txt");
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
        let model = ContentionModel::calibrate(&p.topology, &local, &remote).unwrap();
        std::fs::write(&path, mc_model::model_to_text(&model)).unwrap();
        let warm = format!("henri={}", path.display());
        let out = serve(
            "{\"op\":\"predict\",\"platform\":\"henri\",\"cores\":4,\"comp_numa\":0,\"comm_numa\":0}\n",
            &["--warm", &warm],
        );
        assert!(ok(&out[0]));
        assert_eq!(
            out[0].get("cached"),
            Some(&Json::Bool(true)),
            "warm-loaded model must make the very first request a hit"
        );
        std::fs::remove_file(&path).ok();
    }

    /// A reader that yields its canned bytes, then fails with an I/O
    /// error — a client whose pipe breaks mid-session.
    struct TruncatedReader {
        data: std::io::Cursor<Vec<u8>>,
        failed: bool,
    }

    impl std::io::Read for TruncatedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match std::io::Read::read(&mut self.data, buf)? {
                0 => {
                    self.failed = true;
                    Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "transport died mid-session",
                    ))
                }
                n => Ok(n),
            }
        }
    }

    #[test]
    fn mid_session_read_failure_ends_the_session_not_the_process() {
        // Regression (ISSUE 7): serve_loop used to return Err on any
        // LineError::Io, turning one broken client pipe into exit 4.
        // The requests answered before the failure must stay answered
        // and the loop must end like EOF.
        let req = r#"{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0}"#;
        let reader = std::io::BufReader::new(TruncatedReader {
            data: std::io::Cursor::new(format!("{req}\n").into_bytes()),
            failed: false,
        });
        let args = Args::parse(["serve"]).unwrap();
        let mut out = Vec::new();
        serve_loop(&args, reader, &mut out).expect("a dying transport is not a process failure");
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 1, "the request before the break was answered");
        assert!(ok(&lines[0]));
    }

    #[test]
    fn warm_paths_with_commas_load_via_repeated_flags() {
        let dir =
            std::env::temp_dir().join(format!("memcontend-warm-comma-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The path the comma list form would shred.
        let path = dir.join("henri,v2.txt");
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
        let model = ContentionModel::calibrate(&p.topology, &local, &remote).unwrap();
        std::fs::write(&path, mc_model::model_to_text(&model)).unwrap();
        let warm = format!("henri={}", path.display());
        let out = serve(
            "{\"op\":\"predict\",\"platform\":\"henri\",\"cores\":4,\"comp_numa\":0,\"comm_numa\":0}\n",
            &["--warm", &warm],
        );
        assert!(ok(&out[0]), "{:?}", out[0]);
        assert_eq!(
            out[0].get("cached"),
            Some(&Json::Bool(true)),
            "a comma-bearing path must warm-load via a dedicated flag"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_spec_splitting_keeps_comma_lists_and_comma_paths_apart() {
        // Back-compat list: every segment has '='.
        assert_eq!(split_warm_spec("a=x,b=y"), ["a=x", "b=y"]);
        // A comma inside a path: one entry.
        assert_eq!(
            split_warm_spec("henri=models/a,b.txt"),
            ["henri=models/a,b.txt"]
        );
        // Degenerate inputs stay single entries for the parser to reject.
        assert_eq!(split_warm_spec("nonsense"), ["nonsense"]);
        assert_eq!(split_warm_spec("a=x"), ["a=x"]);
    }

    #[test]
    fn stats_op_reports_registry_counters_and_rss() {
        let lines = concat!(
            r#"{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"op":"predict","platform":"henri","cores":8,"comp_numa":0,"comm_numa":0}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
        );
        let out = serve(lines, &[]);
        let stats = &out[2];
        assert!(ok(stats), "{stats:?}");
        assert_eq!(stats.get("models").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(1));
        assert!((stats.get("hit_rate").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        #[cfg(target_os = "linux")]
        {
            let current = stats.get("current_rss_kb").unwrap().as_u64().unwrap();
            let peak = stats.get("peak_rss_kb").unwrap().as_u64().unwrap();
            assert!(current > 0 && current <= peak);
        }
    }

    #[test]
    fn warm_failures_are_fatal_at_startup() {
        let args = Args::parse(["serve", "--warm", "henri=/nonexistent/m.txt"]).unwrap();
        let e = serve_loop(&args, Cursor::new(&b""[..]), Vec::new()).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_IO);
        let args = Args::parse(["serve", "--warm", "nonsense"]).unwrap();
        let e = serve_loop(&args, Cursor::new(&b""[..]), Vec::new()).unwrap_err();
        assert!(e.is_usage());
        let args = Args::parse(["serve", "--warm", "zzz=file.txt"]).unwrap();
        let e = serve_loop(&args, Cursor::new(&b""[..]), Vec::new()).unwrap_err();
        assert_eq!(e, CliError::UnknownPlatform("zzz".into()));
    }

    #[test]
    fn evaluate_op_reports_the_breakdown() {
        let out = serve("{\"op\":\"evaluate\",\"platform\":\"henri\"}\n", &[]);
        assert!(ok(&out[0]), "{:?}", out[0]);
        let avg = out[0].get("average").unwrap().as_f64().unwrap();
        assert!(avg > 0.0 && avg < 10.0, "henri MAPE ≈ paper: {avg}");
        assert_eq!(out[0].get("skipped").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn replay_op_predicts_a_slowdown() {
        let line = concat!(
            r#"{"op":"replay","platform":"henri","pattern":"allreduce","#,
            r#""ranks":2,"iters":1,"compute_mb":32,"comm_mb":4}"#,
            "\n",
        );
        let out = serve(line, &[]);
        assert!(ok(&out[0]), "{:?}", out[0]);
        assert_eq!(out[0].get("ranks").and_then(Json::as_u64), Some(2));
        let makespan = out[0].get("makespan").unwrap().as_f64().unwrap();
        let baseline = out[0].get("baseline").unwrap().as_f64().unwrap();
        let slowdown = out[0].get("slowdown").unwrap().as_f64().unwrap();
        assert!(makespan > 0.0 && baseline > 0.0);
        assert!(slowdown >= 1.0 - 1e-9, "slowdown {slowdown}");
    }

    #[test]
    fn replay_op_rejects_bad_inputs() {
        let lines = concat!(
            r#"{"op":"replay","platform":"henri"}"#,
            "\n",
            r#"{"op":"replay","platform":"henri","pattern":"zzz"}"#,
            "\n",
            r#"{"op":"replay","platform":"henri","pattern":"halo2d","ranks":1}"#,
            "\n",
            r#"{"op":"replay","platform":"henri","trace_file":"/nonexistent/t.jsonl"}"#,
            "\n",
            r#"{"op":"replay","platform":"henri","pattern":"halo2d","comp_numa":9}"#,
            "\n",
        );
        let out = serve(lines, &[]);
        let classes: Vec<_> = out.iter().map(|r| error_class(r).unwrap()).collect();
        assert_eq!(classes, ["usage", "usage", "usage", "io", "usage"]);
        assert!(out[1]
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("halo2d"));
    }

    #[test]
    fn replay_op_reads_a_trace_file_and_flags_bad_data() {
        let dir = std::env::temp_dir().join(format!("memcontend-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.trace.jsonl");
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            compute_bytes: 64 << 20,
            comm_bytes: 8 << 20,
            ..GenParams::default()
        });
        std::fs::write(&good, trace.to_json_lines()).unwrap();
        let bad = dir.join("bad.trace.jsonl");
        std::fs::write(&bad, "{\"rank\":0,\"event\":\"warp\"}\n").unwrap();
        let lines = format!(
            "{{\"op\":\"replay\",\"platform\":\"henri\",\"trace_file\":\"{}\"}}\n\
             {{\"op\":\"replay\",\"platform\":\"henri\",\"trace_file\":\"{}\"}}\n",
            good.display(),
            bad.display()
        );
        let out = serve(&lines, &[]);
        assert!(ok(&out[0]), "{:?}", out[0]);
        assert_eq!(out[0].get("ranks").and_then(Json::as_u64), Some(4));
        assert_eq!(error_class(&out[1]), Some("data"));
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn blank_lines_are_ignored_and_eof_ends_cleanly() {
        let out = serve("\n   \n", &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn registry_hits_dominate_a_hundred_request_batch() {
        // The serving acceptance bar: a 100-request batch against one
        // platform is ≥ 90 % registry hits. Populate-once pins it to
        // exactly one miss — whichever worker gets there first — and 99
        // hits, visible as the per-response `cached` flag. (The
        // metrics-export view of the same bar lives in the black-box
        // protocol tests, where the service runs in its own process.)
        let items: Vec<String> = (0..100)
            .map(|i| {
                format!(
                    r#"{{"op":"predict","platform":"henri","cores":{},"comp_numa":0,"comm_numa":1}}"#,
                    i % 17 + 1
                )
            })
            .collect();
        let line = format!("{{\"batch\":[{}]}}\n", items.join(","));
        let out = serve(&line, &["--workers", "4"]);
        let batch = out[0].get("batch").unwrap().as_array().unwrap();
        assert_eq!(batch.len(), 100);
        assert!(batch.iter().all(ok));
        let hits = batch
            .iter()
            .filter(|r| r.get("cached") == Some(&Json::Bool(true)))
            .count();
        assert_eq!(hits, 99, "populate-once: one miss, ninety-nine hits");
    }
}
