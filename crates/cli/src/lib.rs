//! # mc-cli — the `memcontend` command-line tool
//!
//! A thin, fully-testable command layer over the workspace: every
//! subcommand is a function from parsed arguments to a rendered string, so
//! the binary only parses `argv` and prints.
//!
//! ```text
//! memcontend topo       [--platform NAME]
//! memcontend bench      --platform NAME [--comp-numa N] [--comm-numa N]
//! memcontend calibrate  --platform NAME [--save FILE]
//! memcontend predict    (--platform NAME | --model FILE) --cores N \
//!                       --comp-numa A --comm-numa B
//! memcontend advise     --platform NAME --compute-gb X --comm-gb Y
//! memcontend evaluate   --platform NAME
//! memcontend serve      [--workers N] [--capacity N] [--warm PLAT=FILE]... \
//!                       [--listen HOST:PORT] [--credits N]
//! ```
//!
//! `serve` is the exception to "function to rendered string": it runs a
//! long-lived JSON-lines request/response loop — over stdin/stdout, or
//! with `--listen` over TCP for many credit-gated tenant connections
//! (see [`net`]) — backed by a sharded LRU registry of calibrated
//! models (see [`serve`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod json;
pub mod net;
pub mod serve;

pub use args::{Args, CliError, EXIT_INVALID_DATA, EXIT_IO, EXIT_USAGE};
pub use commands::run;
