//! Network transport for `memcontend serve`: `--listen HOST:PORT`.
//!
//! The stdin/stdout loop serves exactly one client; this module serves
//! many, over a plain [`std::net::TcpListener`] (the workspace's
//! no-external-crates policy rules out async runtimes, and blocking
//! threads are the right cost model here: connection threads spend
//! their lives parked in `read`, while the CPU-heavy work — batch
//! fan-out, calibration — stays bounded by the existing worker pool and
//! the registry's populate-once locking).
//!
//! ## Session protocol
//!
//! Every connection speaks the same JSON-lines request/response
//! protocol as the stdio transport, with two additions:
//!
//! * **Hello.** The first line must authenticate a tenant id:
//!   `{"hello":{"tenant":"alice"}}` →
//!   `{"ok":true,"hello":{"tenant":"alice","credits":16,"queue":16}}`.
//!   Anything else is answered with a `usage` error and the connection
//!   closes.
//! * **Shutdown.** `{"op":"shutdown"}` (after hello) acknowledges, then
//!   stops the accept loop so the process can exit 0 — the handle a
//!   load generator or CI harness uses to end a run cleanly.
//!
//! ## Admission control
//!
//! Each tenant holds a fixed budget of request *credits* (the
//! flow-controlled request/release primitive of gwr's `Resource`): a
//! single request costs one credit, a `{"batch":[...]}` envelope costs
//! one per item, and credits return when the response hits the wire.
//! A request that cannot be granted immediately queues — briefly,
//! boundedly — and a tenant flooding past its budget gets a typed
//! `{"ok":false,"error":{"class":"overload",...}}` rejection instead of
//! growing the registry and worker queues without bound. Other tenants'
//! credits are untouched, so one tenant's flood cannot starve the rest.
//!
//! ## Fault isolation
//!
//! A connection whose transport fails mid-session — truncated line,
//! reset, dead peer — tears down only itself: the accept loop and every
//! other connection keep serving (counted under `serve.disconnects`
//! tagged `transport=tcp`). The fatal exit-code paths stay where they
//! were: startup (bad flags, unreadable `--warm` file, unbindable
//! address).

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mc_model::{McError, ModelRegistry};
use mc_obs::{tags, TagValue};

use crate::args::{Args, CliError};
use crate::json::{obj, Json};
use crate::serve;

/// Default per-tenant credit budget: enough to keep a well-behaved
/// client's pipeline full, small enough that one tenant cannot occupy
/// every batch worker for long.
const DEFAULT_CREDITS: usize = 16;

/// Default bound on concurrent connections; past it new connections are
/// refused with an `overload` response before any request is read.
const DEFAULT_MAX_CONNS: usize = 256;

/// Default time a request may wait for credits before an `overload`
/// rejection — long enough to ride out a burst, short enough that a
/// blocked client learns quickly.
const DEFAULT_WAIT_MS: u64 = 1000;

/// Longest tenant id accepted; ids become observability tags, so they
/// must not be an unbounded-cardinality channel.
const MAX_TENANT_LEN: usize = 64;

/// Why an admission request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// The request wants more credits than the tenant's whole budget —
    /// it could never be granted, so it fails immediately.
    TooLarge {
        /// Credits the request needs (its batch size).
        requested: usize,
        /// The tenant's total budget.
        capacity: usize,
    },
    /// The tenant's wait queue is already at its bound.
    QueueFull {
        /// Requests already waiting.
        waiting: usize,
        /// The queue bound.
        max_queue: usize,
    },
    /// Credits did not free up within the configured wait.
    TimedOut {
        /// How long the request waited.
        waited_ms: u64,
    },
}

impl Overload {
    fn message(&self) -> String {
        match self {
            Overload::TooLarge {
                requested,
                capacity,
            } => format!("request needs {requested} credits but the tenant budget is {capacity}"),
            Overload::QueueFull { waiting, max_queue } => {
                format!("credit queue is full ({waiting} waiting, bound {max_queue})")
            }
            Overload::TimedOut { waited_ms } => {
                format!("no credits freed within {waited_ms} ms")
            }
        }
    }

    /// The tag value recorded under `serve.overload`.
    fn reason(&self) -> &'static str {
        match self {
            Overload::TooLarge { .. } => "too_large",
            Overload::QueueFull { .. } => "queue_full",
            Overload::TimedOut { .. } => "timed_out",
        }
    }
}

struct GateState {
    available: usize,
    waiting: usize,
}

/// One tenant's credit pool: `acquire` takes credits (queueing
/// boundedly when none are free), `release` returns them. The gwr
/// `Resource` request/release idiom, with the waits bounded in both
/// queue depth and time so a flood degrades into typed rejections.
pub struct CreditGate {
    capacity: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl CreditGate {
    /// A gate holding `capacity` credits with at most `max_queue`
    /// requests waiting for them.
    pub fn new(capacity: usize, max_queue: usize) -> Self {
        CreditGate {
            capacity,
            max_queue,
            state: Mutex::new(GateState {
                available: capacity,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Take `units` credits, waiting up to `wait` for them to free.
    /// Rejections are immediate when the request can never be granted
    /// (`TooLarge`) or the queue is at its bound (`QueueFull`).
    pub fn acquire(&self, units: usize, wait: Duration) -> Result<(), Overload> {
        if units > self.capacity {
            return Err(Overload::TooLarge {
                requested: units,
                capacity: self.capacity,
            });
        }
        let mut state = self.lock();
        if state.available >= units {
            state.available -= units;
            return Ok(());
        }
        if state.waiting >= self.max_queue {
            return Err(Overload::QueueFull {
                waiting: state.waiting,
                max_queue: self.max_queue,
            });
        }
        state.waiting += 1;
        let started = Instant::now();
        let deadline = started + wait;
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                state.waiting -= 1;
                return Err(Overload::TimedOut {
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            };
            state = self
                .freed
                .wait_timeout(state, remaining)
                .unwrap_or_else(|p| p.into_inner())
                .0;
            if state.available >= units {
                state.available -= units;
                state.waiting -= 1;
                return Ok(());
            }
        }
    }

    /// Return `units` credits (saturating at the budget, so a spurious
    /// double release cannot mint credit).
    pub fn release(&self, units: usize) {
        let mut state = self.lock();
        state.available = (state.available + units).min(self.capacity);
        self.freed.notify_all();
    }

    /// Credits currently free (test/diagnostic visibility).
    pub fn available(&self) -> usize {
        self.lock().available
    }
}

/// The admission controller: one [`CreditGate`] per tenant, created on
/// first hello, all sized by the same configuration. Budgets are
/// per-tenant by construction, which is the isolation property — there
/// is no global pool a flood could drain.
pub struct Admission {
    credits: usize,
    max_queue: usize,
    wait: Duration,
    gates: Mutex<HashMap<String, Arc<CreditGate>>>,
}

impl Admission {
    /// A controller granting each tenant `credits` credits, with at most
    /// `max_queue` waiting requests and a `wait` bound per request.
    pub fn new(credits: usize, max_queue: usize, wait: Duration) -> Self {
        Admission {
            credits,
            max_queue,
            wait,
            gates: Mutex::new(HashMap::new()),
        }
    }

    /// The gate for a tenant, created at first sight.
    pub fn gate(&self, tenant: &str) -> Arc<CreditGate> {
        let mut gates = self.gates.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            gates
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(CreditGate::new(self.credits, self.max_queue))),
        )
    }

    /// Per-request credit budget (batch size, else 1).
    pub fn units_for(request: &Json) -> usize {
        request
            .get("batch")
            .and_then(Json::as_array)
            .map(<[Json]>::len)
            .unwrap_or(1)
            .max(1)
    }
}

/// Everything a connection thread shares with the accept loop.
struct Shared {
    registry: ModelRegistry,
    admission: Admission,
    workers: usize,
    shutdown: AtomicBool,
    active: AtomicUsize,
    addr: SocketAddr,
}

/// A bound, not-yet-running TCP serve: [`NetServer::bind`] resolves the
/// flags and the address (startup failures stay fatal here), then
/// [`NetServer::run`] serves until a shutdown request.
pub struct NetServer {
    listener: TcpListener,
    shared: Arc<Shared>,
    max_conns: usize,
}

impl NetServer {
    /// Bind the listen address and build the shared state. `--listen
    /// HOST:PORT` may use port 0; [`NetServer::local_addr`] reports the
    /// port actually bound.
    pub fn bind(args: &Args) -> Result<NetServer, CliError> {
        let (registry, workers) = serve::build_registry(args)?;
        let credits: usize = args.num_or("credits", DEFAULT_CREDITS)?;
        if credits == 0 {
            return Err(CliError::NonPositive("credits"));
        }
        let max_queue: usize = args.num_or("queue", credits)?;
        let wait_ms: u64 = args.num_or("wait-ms", DEFAULT_WAIT_MS)?;
        let max_conns: usize = args.num_or("max-conns", DEFAULT_MAX_CONNS)?;
        if max_conns == 0 {
            return Err(CliError::NonPositive("max-conns"));
        }
        let addr = args.require("listen")?;
        let listener = TcpListener::bind(addr).map_err(|e| McError::io(addr, e))?;
        let local = listener.local_addr().map_err(|e| McError::io(addr, e))?;
        Ok(NetServer {
            listener,
            shared: Arc::new(Shared {
                registry,
                admission: Admission::new(credits, max_queue, Duration::from_millis(wait_ms)),
                workers,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                addr: local,
            }),
            max_conns,
        })
    }

    /// The address actually bound (resolves `--listen HOST:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The announce line the binary prints before serving — the one
    /// machine-readable place a client learns an ephemeral port.
    pub fn announce_line(&self) -> String {
        obj(vec![("listening", Json::Str(self.shared.addr.to_string()))]).render()
    }

    /// Accept and serve connections until a `{"op":"shutdown"}` request
    /// flips the flag. Accept errors are transient (counted, skipped);
    /// connection failures never propagate here.
    pub fn run(self) -> Result<(), CliError> {
        let _span = mc_obs::span(
            "serve",
            &[
                (tags::WORKERS, TagValue::U64(self.shared.workers as u64)),
                (tags::TRANSPORT, TagValue::Str("tcp")),
            ],
        );
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            if self.shared.active.load(Ordering::Acquire) >= self.max_conns {
                refuse_connection(stream, self.max_conns);
                continue;
            }
            self.shared.active.fetch_add(1, Ordering::AcqRel);
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                handle_connection(&shared, stream);
                shared.active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        Ok(())
    }
}

/// Tell an over-capacity client why it is being dropped, best-effort.
fn refuse_connection(mut stream: TcpStream, max_conns: usize) {
    let e = CliError::Overload(format!("connection limit {max_conns} reached"));
    count_overload("", "conn_limit");
    let _ = serve::write_response(&mut stream, &serve::error_response(None, &e));
}

/// A tenant id fit to become an observability tag: non-empty, bounded,
/// and drawn from a filename-safe alphabet.
fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= MAX_TENANT_LEN
        && tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parse the mandatory first line: `{"hello":{"tenant":ID}}`.
fn hello_tenant(request: &Json) -> Result<String, CliError> {
    let hello = request.get("hello").ok_or_else(|| {
        CliError::Protocol("first line must be {\"hello\":{\"tenant\":...}}".into())
    })?;
    let tenant = hello
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| CliError::Protocol("'hello' needs a string 'tenant'".into()))?;
    if !valid_tenant(tenant) {
        return Err(CliError::Protocol(format!(
            "tenant id must be 1..={MAX_TENANT_LEN} chars of [A-Za-z0-9._-], got '{tenant}'"
        )));
    }
    Ok(tenant.to_string())
}

/// Serve one connection to completion. Never panics the accept loop;
/// every exit path is a clean connection teardown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Responses are single lines a client blocks on: no Nagle delay.
    stream.set_nodelay(true).ok();
    let reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(_) => {
            serve::count_disconnect("tcp");
            return;
        }
    };
    let mut writer = stream;
    let mut lines = mc_json::parse_lines(reader);

    // First line: the hello handshake, answered before any credit moves.
    let tenant = match lines.next() {
        None => return,
        Some(Err(_)) => {
            serve::count_disconnect("tcp");
            return;
        }
        Some(Ok((_line, request))) => match hello_tenant(&request) {
            Ok(tenant) => tenant,
            Err(e) => {
                // An unauthenticated line gets its error and the door.
                serve::count_request("hello", "usage");
                let _ = serve::write_response(&mut writer, &serve::error_response(None, &e));
                return;
            }
        },
    };
    let ack = obj(vec![
        ("ok", Json::Bool(true)),
        (
            "hello",
            obj(vec![
                ("tenant", Json::Str(tenant.clone())),
                ("credits", Json::Num(shared.admission.credits as f64)),
                ("queue", Json::Num(shared.admission.max_queue as f64)),
            ]),
        ),
    ]);
    if serve::write_response(&mut writer, &ack).is_err() {
        serve::count_disconnect("tcp");
        return;
    }

    if let Some(rec) = mc_obs::recorder() {
        rec.add(
            "serve.connections",
            &[(tags::TENANT, TagValue::Str(&tenant))],
            1,
        );
    }
    let gate = shared.admission.gate(&tenant);

    for item in lines {
        let (response, units_held) = match item {
            Err(mc_json::LineError::Io { .. }) => {
                serve::count_disconnect("tcp");
                return;
            }
            Err(mc_json::LineError::Json { line, error }) => {
                serve::count_request("invalid", "usage");
                let e =
                    CliError::Protocol(format!("request line {line} is not valid JSON ({error})"));
                (serve::error_response(None, &e), 0)
            }
            Ok((_line, request)) => {
                if request.get("op").and_then(Json::as_str) == Some("shutdown") {
                    let ack = obj(vec![
                        ("ok", Json::Bool(true)),
                        ("op", Json::Str("shutdown".into())),
                    ]);
                    let _ = serve::write_response(&mut writer, &ack);
                    initiate_shutdown(shared);
                    return;
                }
                let units = Admission::units_for(&request);
                match gate.acquire(units, shared.admission.wait) {
                    Err(overload) => {
                        count_overload(&tenant, overload.reason());
                        serve::count_request("admission", "overload");
                        let e = CliError::Overload(overload.message());
                        (serve::error_response(request.get("id"), &e), 0)
                    }
                    Ok(()) => {
                        let started = mc_obs::enabled().then(Instant::now);
                        let response = serve::dispatch(&shared.registry, &request, shared.workers);
                        if let (Some(started), Some(rec)) = (started, mc_obs::recorder()) {
                            rec.observe(
                                "serve.tenant_seconds",
                                &[(tags::TENANT, TagValue::Str(&tenant))],
                                started.elapsed().as_secs_f64(),
                            );
                        }
                        (response, units)
                    }
                }
            }
        };
        let wrote = serve::write_response(&mut writer, &response);
        // Credits return when the response hits the wire — and also when
        // it cannot (the gate is tenant-wide, shared across connections;
        // a dead connection must not strand its tenant's credits).
        if units_held > 0 {
            gate.release(units_held);
        }
        if wrote.is_err() {
            serve::count_disconnect("tcp");
            return;
        }
    }
}

fn count_overload(tenant: &str, reason: &'static str) {
    if let Some(rec) = mc_obs::recorder() {
        rec.add(
            "serve.overload",
            &[
                (tags::TENANT, TagValue::Str(tenant)),
                (tags::REASON, TagValue::Str(reason)),
            ],
            1,
        );
    }
}

/// Flip the shutdown flag and poke the accept loop awake with a
/// throwaway connection to our own address.
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(500));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write as _};

    #[test]
    fn credits_grant_immediately_while_available() {
        let gate = CreditGate::new(4, 2);
        for _ in 0..4 {
            gate.acquire(1, Duration::ZERO).unwrap();
        }
        assert_eq!(gate.available(), 0);
        gate.release(3);
        assert_eq!(gate.available(), 3);
        gate.acquire(3, Duration::ZERO).unwrap();
    }

    #[test]
    fn oversized_requests_fail_fast() {
        let gate = CreditGate::new(4, 2);
        assert_eq!(
            gate.acquire(5, Duration::from_secs(60)),
            Err(Overload::TooLarge {
                requested: 5,
                capacity: 4
            }),
            "an impossible request must not wait"
        );
        // The budget itself is fine.
        gate.acquire(4, Duration::ZERO).unwrap();
    }

    #[test]
    fn exhausted_credits_time_out_with_a_typed_rejection() {
        let gate = CreditGate::new(1, 4);
        gate.acquire(1, Duration::ZERO).unwrap();
        match gate.acquire(1, Duration::from_millis(20)) {
            Err(Overload::TimedOut { .. }) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn queue_bound_rejects_the_flood() {
        let gate = Arc::new(CreditGate::new(1, 1));
        gate.acquire(1, Duration::ZERO).unwrap();
        // One waiter is admitted to the queue…
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire(1, Duration::from_secs(5)))
        };
        // …and once it is parked, the next request bounces.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let state = gate.lock();
            if state.waiting == 1 {
                break;
            }
            drop(state);
            assert!(Instant::now() < deadline, "waiter never queued");
            std::thread::yield_now();
        }
        match gate.acquire(1, Duration::from_secs(5)) {
            Err(Overload::QueueFull {
                waiting: 1,
                max_queue: 1,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Releasing wakes the queued waiter.
        gate.release(1);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn release_saturates_at_capacity() {
        let gate = CreditGate::new(2, 1);
        gate.release(10);
        assert_eq!(gate.available(), 2, "double release must not mint credit");
    }

    #[test]
    fn admission_isolates_tenants() {
        let adm = Admission::new(2, 1, Duration::ZERO);
        let alice = adm.gate("alice");
        let bob = adm.gate("bob");
        alice.acquire(2, Duration::ZERO).unwrap();
        // Alice is drained; Bob's budget is untouched.
        bob.acquire(2, Duration::ZERO).unwrap();
        assert!(Arc::ptr_eq(&adm.gate("alice"), &alice), "gates are stable");
    }

    #[test]
    fn units_follow_batch_size() {
        let single = Json::parse(r#"{"op":"predict"}"#).unwrap();
        assert_eq!(Admission::units_for(&single), 1);
        let batch = Json::parse(r#"{"batch":[{},{},{}]}"#).unwrap();
        assert_eq!(Admission::units_for(&batch), 3);
        let empty = Json::parse(r#"{"batch":[]}"#).unwrap();
        assert_eq!(Admission::units_for(&empty), 1, "empty batch still costs");
    }

    #[test]
    fn tenant_ids_are_validated() {
        for good in ["alice", "team-7", "a.b_c", &"x".repeat(MAX_TENANT_LEN)] {
            assert!(valid_tenant(good), "{good}");
        }
        for bad in ["", "a b", "a/b", "é", &"x".repeat(MAX_TENANT_LEN + 1)] {
            assert!(!valid_tenant(bad), "{bad}");
        }
    }

    /// End-to-end over a real socket: bind on an ephemeral port, serve,
    /// drive two tenants, shut down. Covers hello, dispatch, overload,
    /// and the clean-shutdown handshake in one place without spawning a
    /// process.
    #[test]
    fn listen_session_round_trips_and_shuts_down() {
        let args = Args::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--credits",
            "2",
            "--workers",
            "2",
        ])
        .unwrap();
        let server = NetServer::bind(&args).unwrap();
        let addr = server.local_addr();
        assert!(server.announce_line().contains("listening"));
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect(addr);
        let ack = client.send(r#"{"hello":{"tenant":"alice"}}"#);
        assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{ack:?}");
        assert_eq!(
            ack.get("hello").unwrap().get("credits").unwrap().as_u64(),
            Some(2)
        );

        let resp = client
            .send(r#"{"op":"predict","platform":"henri","cores":4,"comp_numa":0,"comm_numa":0}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");

        // A batch past the 2-credit budget is a typed overload, and the
        // connection survives to serve the next request.
        let over =
            client.send(r#"{"id":"flood","batch":[{"op":"stats"},{"op":"stats"},{"op":"stats"}]}"#);
        assert_eq!(over.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            over.get("error").unwrap().get("class").unwrap().as_str(),
            Some("overload")
        );
        assert_eq!(over.get("id").and_then(Json::as_str), Some("flood"));
        let again = client.send(r#"{"op":"stats"}"#);
        assert_eq!(again.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            again.get("misses").and_then(Json::as_u64),
            Some(1),
            "the predict above calibrated exactly one model"
        );

        // A second connection without a hello is refused politely.
        let mut rude = Client::connect(addr);
        let refused = rude.send(r#"{"op":"stats"}"#);
        assert_eq!(refused.get("ok"), Some(&Json::Bool(false)));

        let bye = client.send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        handle.join().unwrap().unwrap();
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        line: String,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect to test server");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
                line: String::new(),
            }
        }

        fn send(&mut self, request: &str) -> Json {
            writeln!(self.writer, "{request}").expect("request written");
            self.line.clear();
            self.reader
                .read_line(&mut self.line)
                .expect("response read");
            Json::parse(self.line.trim()).expect("response parses")
        }
    }
}
