//! Hand-rolled argument parsing (keeps the dependency set to the approved
//! crates; the grammar is small enough that a parser library would be
//! heavier than the parser).

use std::collections::BTreeMap;
use std::fmt;

use mc_model::{ErrorCategory, McError};

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs, keys without the leading dashes.
    pub options: BTreeMap<String, String>,
    /// Every value of each repeatable flag (see [`REPEATABLE`]), in the
    /// order given. Non-repeatable flags never appear here.
    multi: BTreeMap<String, Vec<String>>,
}

/// Flags that may be given more than once. Everything else repeating is
/// still a [`CliError::DuplicateFlag`] — last-wins would silently drop a
/// value. `--warm` repeats because its value embeds a file path, and
/// paths may contain the `,` the single-flag list form splits on.
const REPEATABLE: &[&str] = &["warm"];

/// CLI errors: usage mistakes plus everything the model pipeline can
/// report ([`McError`]), with a distinct exit code per class.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A flag is missing its value.
    MissingValue(String),
    /// The same flag was given twice; last-wins would silently drop the
    /// first value, so repetition is a usage error instead.
    DuplicateFlag(String),
    /// A required option is absent.
    MissingOption(&'static str),
    /// An option value failed to parse.
    BadValue(&'static str, String),
    /// Unknown platform name.
    UnknownPlatform(String),
    /// A NUMA-node option points past the platform's nodes.
    NumaOutOfRange {
        /// The offending option name.
        option: &'static str,
        /// The value given.
        numa: u16,
        /// Number of NUMA nodes the platform has.
        count: usize,
    },
    /// An option that must be at least one was zero.
    NonPositive(&'static str),
    /// Unexpected positional argument.
    UnexpectedPositional(String),
    /// A malformed serve-protocol request (not JSON, missing or
    /// ill-typed field, unknown op). The service analogue of a usage
    /// error: exit code 2 when it escapes to the process boundary.
    Protocol(String),
    /// A flag combination that the grammar cannot express as a single
    /// missing/bad option (e.g. mutually exclusive flags).
    Usage(String),
    /// A tenant exceeded its admission credits on the listen transport.
    /// Surfaced in-band as the `overload` error class so clients can
    /// back off and retry; never escapes to the process boundary.
    Overload(String),
    /// Unknown `--generate` pattern name.
    UnknownPattern(String),
    /// A trace failed to parse or replay (invalid data, exit 3).
    Replay(mc_replay::ReplayError),
    /// The scheduler rejected its inputs (degenerate queue or fleet,
    /// exit 3) or failed reading a trace file (exit 4).
    Sched(mc_sched::SchedError),
    /// The model pipeline failed (bad data or I/O).
    Data(McError),
}

/// Exit code for command-line usage errors.
pub const EXIT_USAGE: u8 = 2;
/// Exit code for invalid or degenerate input data.
pub const EXIT_INVALID_DATA: u8 = 3;
/// Exit code for file I/O failures.
pub const EXIT_IO: u8 = 4;

impl CliError {
    /// The process exit code for this error: [`EXIT_USAGE`] for usage
    /// mistakes, [`EXIT_INVALID_DATA`] for degenerate or invalid data,
    /// [`EXIT_IO`] for file I/O failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Data(e) => match e.category() {
                ErrorCategory::InvalidData => EXIT_INVALID_DATA,
                ErrorCategory::Io => EXIT_IO,
            },
            CliError::Replay(e) => match e.category() {
                ErrorCategory::InvalidData => EXIT_INVALID_DATA,
                ErrorCategory::Io => EXIT_IO,
            },
            CliError::Sched(e) => match e.category() {
                ErrorCategory::InvalidData => EXIT_INVALID_DATA,
                ErrorCategory::Io => EXIT_IO,
            },
            _ => EXIT_USAGE,
        }
    }

    /// Whether printing the usage text alongside the error helps (true
    /// exactly for usage errors).
    pub fn is_usage(&self) -> bool {
        self.exit_code() == EXIT_USAGE
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::NoCommand => write!(f, "no subcommand given"),
            CliError::UnknownCommand(c) => write!(f, "unknown subcommand '{c}'"),
            CliError::MissingValue(k) => write!(f, "--{k} needs a value"),
            CliError::DuplicateFlag(k) => write!(f, "--{k} given more than once"),
            CliError::MissingOption(k) => write!(f, "missing required option --{k}"),
            CliError::BadValue(k, v) => write!(f, "cannot parse --{k} value '{v}'"),
            CliError::UnknownPlatform(p) => {
                let names: Vec<String> = mc_topology::platforms::extended()
                    .iter()
                    .map(|pl| pl.name().to_string())
                    .collect();
                write!(
                    f,
                    "unknown platform '{p}' (expected one of: {})",
                    names.join(", ")
                )
            }
            CliError::NumaOutOfRange {
                option,
                numa,
                count,
            } => write!(
                f,
                "--{option} {numa} is out of range: the platform has {count} NUMA nodes (0..={})",
                count.saturating_sub(1)
            ),
            CliError::NonPositive(k) => write!(f, "--{k} must be at least 1"),
            CliError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
            CliError::Protocol(m) => write!(f, "bad request: {m}"),
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Overload(m) => write!(f, "overloaded: {m}"),
            CliError::UnknownPattern(p) => write!(
                f,
                "unknown pattern '{p}' (expected one of: {})",
                mc_replay::generate::names().join(", ")
            ),
            CliError::Replay(e) => write!(f, "{e}"),
            CliError::Sched(e) => write!(f, "{e}"),
            CliError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Data(e) => Some(e),
            CliError::Replay(e) => Some(e),
            CliError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<McError> for CliError {
    fn from(e: McError) -> Self {
        CliError::Data(e)
    }
}

impl From<mc_replay::ReplayError> for CliError {
    fn from(e: mc_replay::ReplayError) -> Self {
        CliError::Replay(e)
    }
}

impl From<mc_sched::SchedError> for CliError {
    fn from(e: mc_sched::SchedError) -> Self {
        CliError::Sched(e)
    }
}

impl From<mc_replay::TraceError> for CliError {
    fn from(e: mc_replay::TraceError) -> Self {
        CliError::Replay(mc_replay::ReplayError::Trace(e))
    }
}

impl Args {
    /// Parse an `argv`-style iterator (without the program name).
    pub fn parse<I, S>(argv: I) -> Result<Args, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = argv.into_iter().map(Into::into);
        let command = iter.next().ok_or(CliError::NoCommand)?;
        if command.starts_with('-') {
            return Err(CliError::NoCommand);
        }
        let mut options = BTreeMap::new();
        let mut multi: BTreeMap<String, Vec<String>> = BTreeMap::new();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                // Both `--key value` and `--key=value` spellings are
                // accepted; `=` binds the value inline.
                let (key, value) = match key.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let value = iter
                            .next()
                            .ok_or_else(|| CliError::MissingValue(key.to_string()))?;
                        (key.to_string(), value)
                    }
                };
                if REPEATABLE.contains(&key.as_str()) {
                    multi.entry(key).or_default().push(value);
                } else if options.insert(key.clone(), value).is_some() {
                    return Err(CliError::DuplicateFlag(key));
                }
            } else {
                return Err(CliError::UnexpectedPositional(arg));
            }
        }
        Ok(Args {
            command,
            options,
            multi,
        })
    }

    /// A required string option (for a repeatable flag, its last value).
    pub fn require(&self, key: &'static str) -> Result<&str, CliError> {
        self.get(key).ok_or(CliError::MissingOption(key))
    }

    /// An optional string option. For a repeatable flag given more than
    /// once, this is the *last* value; [`Args::get_all`] has them all.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str).or_else(|| {
            self.multi
                .get(key)
                .and_then(|v| v.last())
                .map(String::as_str)
        })
    }

    /// Every value a repeatable flag was given, in order; empty when the
    /// flag is absent (or not repeatable — those live in `options`).
    pub fn get_all(&self, key: &str) -> &[String] {
        self.multi.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A required numeric option.
    pub fn require_num<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, CliError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| CliError::BadValue(key, raw.to_string()))
    }

    /// An optional numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::BadValue(key, raw.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(["bench", "--platform", "henri", "--comp-numa", "1"]).unwrap();
        assert_eq!(a.command, "bench");
        assert_eq!(a.require("platform").unwrap(), "henri");
        assert_eq!(a.require_num::<u16>("comp-numa").unwrap(), 1);
    }

    #[test]
    fn equals_form_binds_values_inline() {
        let a = Args::parse(["bench", "--platform=henri", "--comp-numa=1"]).unwrap();
        assert_eq!(a.require("platform").unwrap(), "henri");
        assert_eq!(a.require_num::<u16>("comp-numa").unwrap(), 1);
        // Values containing '=' split at the first one only.
        let a = Args::parse(["serve", "--warm=henri=model.txt"]).unwrap();
        assert_eq!(a.require("warm").unwrap(), "henri=model.txt");
        // An inline empty value is an empty string, not a parse error.
        let a = Args::parse(["bench", "--platform="]).unwrap();
        assert_eq!(a.require("platform").unwrap(), "");
    }

    #[test]
    fn duplicate_flags_error_instead_of_last_wins() {
        for argv in [
            vec!["bench", "--platform", "henri", "--platform", "dahu"],
            vec!["bench", "--platform=henri", "--platform=dahu"],
            vec!["bench", "--platform", "henri", "--platform=dahu"],
        ] {
            let e = Args::parse(argv).unwrap_err();
            assert_eq!(e, CliError::DuplicateFlag("platform".into()));
            assert_eq!(e.exit_code(), EXIT_USAGE);
            assert!(e.is_usage());
            assert!(e.to_string().contains("--platform"));
        }
    }

    #[test]
    fn warm_repeats_instead_of_erroring() {
        // Paths may contain commas; the repeated-flag form is the
        // unambiguous spelling, so --warm must not hit DuplicateFlag.
        let a = Args::parse([
            "serve",
            "--warm",
            "henri=models/a,b.txt",
            "--warm=dahu=d.txt",
        ])
        .unwrap();
        assert_eq!(a.get_all("warm"), ["henri=models/a,b.txt", "dahu=d.txt"]);
        // get() on a repeated flag reports the last value.
        assert_eq!(a.get("warm"), Some("dahu=d.txt"));
        // A single occurrence is visible through both accessors.
        let a = Args::parse(["serve", "--warm", "henri=m.txt"]).unwrap();
        assert_eq!(a.get_all("warm"), ["henri=m.txt"]);
        assert_eq!(a.get("warm"), Some("henri=m.txt"));
        // Absent: empty slice, not a panic.
        assert!(Args::parse(["serve"]).unwrap().get_all("warm").is_empty());
        // Non-repeatable flags still reject duplication.
        let e = Args::parse(["serve", "--workers", "2", "--workers", "3"]).unwrap_err();
        assert_eq!(e, CliError::DuplicateFlag("workers".into()));
    }

    #[test]
    fn empty_argv_is_no_command() {
        assert_eq!(Args::parse(Vec::<String>::new()), Err(CliError::NoCommand));
    }

    #[test]
    fn flag_without_value_errors() {
        assert_eq!(
            Args::parse(["bench", "--platform"]),
            Err(CliError::MissingValue("platform".into()))
        );
    }

    #[test]
    fn positional_after_command_errors() {
        assert_eq!(
            Args::parse(["bench", "henri"]),
            Err(CliError::UnexpectedPositional("henri".into()))
        );
    }

    #[test]
    fn missing_required_option_errors() {
        let a = Args::parse(["bench"]).unwrap();
        assert_eq!(
            a.require("platform"),
            Err(CliError::MissingOption("platform"))
        );
    }

    #[test]
    fn bad_numeric_value_errors() {
        let a = Args::parse(["bench", "--cores", "many"]).unwrap();
        assert!(matches!(
            a.require_num::<usize>("cores"),
            Err(CliError::BadValue("cores", _))
        ));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(["bench"]).unwrap();
        assert_eq!(a.num_or("cores", 4usize).unwrap(), 4);
    }

    #[test]
    fn errors_display_helpfully() {
        assert!(CliError::MissingOption("platform")
            .to_string()
            .contains("--platform"));
        let e = CliError::NumaOutOfRange {
            option: "comp-numa",
            numa: 7,
            count: 2,
        };
        assert!(e.to_string().contains("--comp-numa 7"));
        assert!(e.to_string().contains("2 NUMA nodes"));
    }

    #[test]
    fn exit_codes_split_usage_data_and_io() {
        use mc_model::{CalibrationError, McError};
        assert_eq!(CliError::NoCommand.exit_code(), EXIT_USAGE);
        assert_eq!(CliError::NonPositive("cores").exit_code(), EXIT_USAGE);
        assert_eq!(
            CliError::UnknownPlatform("zzz".into()).exit_code(),
            EXIT_USAGE
        );
        let data = CliError::from(McError::from(CalibrationError::EmptySweep));
        assert_eq!(data.exit_code(), EXIT_INVALID_DATA);
        assert!(!data.is_usage());
        let io = CliError::Data(McError::Io {
            path: "model.txt".into(),
            message: "no such file".into(),
        });
        assert_eq!(io.exit_code(), EXIT_IO);
        // Scheduler errors route through their category: degenerate
        // inputs are data errors, trace-file failures are I/O.
        let sched = CliError::from(mc_sched::SchedError::EmptyQueue);
        assert_eq!(sched.exit_code(), EXIT_INVALID_DATA);
        let sched_io = CliError::Sched(mc_sched::SchedError::Io {
            path: "q.jsonl".into(),
            message: "no such file".into(),
        });
        assert_eq!(sched_io.exit_code(), EXIT_IO);
    }
}
