//! Re-export of the shared [`mc_json`] crate.
//!
//! The hand-rolled JSON module started life here for the serve protocol
//! (PR 4) and was promoted to its own crate once the trace replayer
//! needed the same parser; this module remains so `mc_cli::json::Json`
//! keeps working for existing callers. See `mc-json` for the parser,
//! the deterministic writer, and the typed nesting-depth limit.

pub use mc_json::{obj, Json, JsonError, JsonErrorKind, MAX_DEPTH};
