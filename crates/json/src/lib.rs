//! # mc-json — a minimal JSON value type with a hand-rolled parser and writer
//!
//! The serve protocol and the trace replayer both speak JSON lines, and
//! the workspace's no-external-crates policy rules out `serde_json` (the
//! `serde` in the tree is an offline marker shim). The grammar needed is
//! small — requests are flat objects, trace events are flat objects,
//! responses are objects of numbers and strings — so a recursive-descent
//! parser of ~150 lines keeps the dependency set unchanged. Object key
//! order is preserved, which makes the writer deterministic and
//! golden-transcript-friendly.
//!
//! Two safety properties hold by construction:
//!
//! * **Bounded recursion.** Nesting beyond [`MAX_DEPTH`] (or an explicit
//!   limit given to [`Json::parse_with_depth`]) is a *typed* error
//!   ([`JsonErrorKind::TooDeep`]) instead of a stack overflow, so a
//!   hostile or corrupt input line can never take the process down.
//! * **Round-trip stability.** `parse(render(v)) == v` for every finite
//!   value, asserted by a property test over generated values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

/// Deepest nesting [`Json::parse`] accepts. Far beyond anything the serve
/// protocol or a trace line legitimately contains, far below what
/// overflows a thread stack.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as f64; the grammar has one number
    /// type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins).
    Obj(Vec<(String, Json)>),
}

/// What class of parse failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed input: bad token, bad escape, trailing characters, …
    Syntax,
    /// The value nests deeper than the configured depth limit. Callers
    /// that treat input as data (the trace parser) surface this as
    /// invalid data rather than a crash.
    TooDeep,
}

/// A parse failure: byte offset, message, and failure class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
    /// Failure class (syntax vs. depth limit).
    pub kind: JsonErrorKind,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    /// Nesting is bounded by [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Json::parse_with_depth(text, MAX_DEPTH)
    }

    /// Parse with an explicit nesting limit: a value nested more than
    /// `max_depth` containers deep fails with
    /// [`JsonErrorKind::TooDeep`].
    pub fn parse_with_depth(text: &str, max_depth: usize) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth_left: max_depth,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// holding one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render this value as compact JSON (no whitespace), preserving
    /// object member order. Non-finite numbers render as `null` — JSON
    /// has no NaN/inf and a corrupt stream helps nobody.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Remaining container levels this parse may still open.
    depth_left: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
            kind: JsonErrorKind::Syntax,
        }
    }

    /// Account for entering one container level; typed failure when the
    /// budget is spent.
    fn descend(&mut self) -> Result<(), JsonError> {
        if self.depth_left == 0 {
            return Err(JsonError {
                offset: self.pos,
                message: "nesting too deep",
                kind: JsonErrorKind::TooDeep,
            });
        }
        self.depth_left -= 1;
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth_left += 1;
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.ascend();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.ascend();
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.ascend();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.ascend();
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            // Consume one UTF-8 scalar; the input is a &str so boundaries
            // are trustworthy.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| self.err("invalid UTF-8"))?;
            let mut chars = rest.chars();
            let c = chars
                .next()
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // protocol; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if (c as u32) < 0x20 => return Err(self.err("control character in string")),
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: "invalid number",
            kind: JsonErrorKind::Syntax,
        })?;
        // str::parse accepts "inf"/"NaN" spellings JSON forbids, but the
        // scanner above only admits digit/exponent characters, so any
        // non-finite here is an overflow like 1e999 — reject it.
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: "number out of range",
                kind: JsonErrorKind::Syntax,
            });
        }
        Ok(Json::Num(n))
    }
}

/// Why one line of a JSON-lines stream failed.
#[derive(Debug)]
pub enum LineError {
    /// Reading the line from the underlying stream failed.
    Io {
        /// 1-based number of the line being read when the error hit.
        line: usize,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The line was read but is not a valid JSON document.
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying parse error (syntax or [`JsonErrorKind::TooDeep`]).
        error: JsonError,
    },
}

impl LineError {
    /// The 1-based line number the error occurred on.
    pub fn line(&self) -> usize {
        match self {
            LineError::Io { line, .. } | LineError::Json { line, .. } => *line,
        }
    }
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Io { line, error } => write!(f, "line {line}: {error}"),
            LineError::Json { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for LineError {}

/// Iterator over the JSON documents of a line-oriented stream; see
/// [`parse_lines`].
pub struct ParsedLines<R> {
    reader: R,
    line: usize,
    buf: String,
    max_depth: usize,
}

impl<R: std::io::BufRead> Iterator for ParsedLines<R> {
    type Item = Result<(usize, Json), LineError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line += 1;
            let line = self.line;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(error) => return Some(Err(LineError::Io { line, error })),
            }
            let trimmed = self.buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(match Json::parse_with_depth(trimmed, self.max_depth) {
                Ok(v) => Ok((line, v)),
                Err(error) => Err(LineError::Json { line, error }),
            });
        }
    }
}

/// Parse a JSON-lines stream incrementally: one document per line,
/// yielded with its 1-based line number, reading one line at a time so
/// memory stays bounded by the longest line, not the whole input. Blank
/// lines and `#` comment lines are skipped. Errors are per line and
/// typed ([`LineError::Json`] keeps the [`JsonErrorKind`], so depth
/// bombs stay [`JsonErrorKind::TooDeep`]); iteration can continue past
/// a failed line.
pub fn parse_lines<R: std::io::BufRead>(reader: R) -> ParsedLines<R> {
    parse_lines_with_depth(reader, MAX_DEPTH)
}

/// [`parse_lines`] with an explicit per-line nesting limit.
pub fn parse_lines_with_depth<R: std::io::BufRead>(reader: R, max_depth: usize) -> ParsedLines<R> {
    ParsedLines {
        reader,
        line: 0,
        buf: String::new(),
        max_depth,
    }
}

/// Convenience: an object builder preserving insertion order.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let j = Json::parse(
            r#"{"op":"predict","platform":"henri","cores":17,"comp_numa":0,"comm_numa":1}"#,
        )
        .unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("predict"));
        assert_eq!(j.get("cores").and_then(Json::as_u64), Some(17));
        assert_eq!(j.get("comm_numa").and_then(Json::as_u64), Some(1));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_render() {
        let cases = [
            r#"{"a":1,"b":[true,false,null],"c":{"d":"x\ny"},"e":-2.5}"#,
            r#"[1,2.25,"three"]"#,
            r#""just a string""#,
            "42",
            "null",
        ];
        for case in cases {
            let j = Json::parse(case).unwrap();
            assert_eq!(j.render(), case);
            assert_eq!(Json::parse(&j.render()).unwrap(), j);
        }
    }

    #[test]
    fn whitespace_and_escapes_are_handled() {
        let j = Json::parse(" { \"k\" : \"a\\\"b\\\\c\\u0041\" , \"n\" : [ ] } ").unwrap();
        assert_eq!(j.get("k").and_then(Json::as_str), Some("a\"b\\cA"));
        assert_eq!(
            j.get("n").and_then(Json::as_array).map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn errors_carry_positions() {
        for (text, offset) in [("{", 1), ("[1,]", 3), ("{\"a\" 1}", 5), ("nul", 0)] {
            let e = Json::parse(text).unwrap_err();
            assert_eq!(e.offset, offset, "{text:?}: {e}");
            assert_eq!(e.kind, JsonErrorKind::Syntax);
        }
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("1e999").is_err(), "overflow is not a value");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(4.0).as_u64(), Some(4));
        assert_eq!(Json::Num(4.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("4".into()).as_u64(), None);
    }

    #[test]
    fn render_integers_without_fraction_and_nonfinite_as_null() {
        assert_eq!(Json::Num(17.0).render(), "17");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(obj(vec![("a", Json::Bool(true))]).render(), r#"{"a":true}"#);
    }

    #[test]
    fn duplicate_keys_last_wins_on_lookup() {
        let j = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn nesting_beyond_the_limit_is_a_typed_error_not_an_overflow() {
        // 1 000 000 open brackets would overflow the stack of a naive
        // recursive parser; here it is a typed error.
        let hostile = "[".repeat(1_000_000);
        let e = Json::parse(&hostile).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        assert_eq!(e.message, "nesting too deep");
        assert_eq!(e.offset, MAX_DEPTH, "fails exactly at the limit");

        // Same through objects.
        let hostile = "{\"k\":".repeat(1_000_000);
        let e = Json::parse(&hostile).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
    }

    #[test]
    fn parse_lines_yields_numbered_documents() {
        let text = "# header comment\n{\"a\":1}\n\n  {\"b\":2}\n";
        let got: Vec<_> = parse_lines(text.as_bytes()).collect();
        assert_eq!(got.len(), 2);
        let (line, v) = got[0].as_ref().unwrap();
        assert_eq!(*line, 2);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        let (line, v) = got[1].as_ref().unwrap();
        assert_eq!(*line, 4, "blank lines still count");
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn parse_lines_errors_are_per_line_and_typed() {
        let deep = format!("{{\"a\":1}}\n{}\n{{\"b\":2}}\n", "[".repeat(200));
        let got: Vec<_> = parse_lines(deep.as_bytes()).collect();
        assert_eq!(got.len(), 3);
        assert!(got[0].is_ok());
        match &got[1] {
            Err(LineError::Json { line: 2, error }) => {
                assert_eq!(error.kind, JsonErrorKind::TooDeep);
            }
            other => panic!("expected TooDeep at line 2, got {other:?}"),
        }
        // Iteration continues past the failed line.
        let (line, _) = got[2].as_ref().unwrap();
        assert_eq!(*line, 3);

        let bad = "{oops\n";
        match parse_lines(bad.as_bytes()).next() {
            Some(Err(e @ LineError::Json { line: 1, .. })) => {
                assert_eq!(e.line(), 1);
            }
            other => panic!("expected syntax error at line 1, got {other:?}"),
        }
    }

    #[test]
    fn parse_lines_matches_whole_input_parsing() {
        let text = "{\"k\":[1,2]}\n\"str\"\n42\n";
        let streamed: Vec<Json> = parse_lines(text.as_bytes()).map(|r| r.unwrap().1).collect();
        let eager: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(streamed, eager);
    }

    #[test]
    fn depth_limit_is_exact() {
        // depth d value: d nested arrays around a scalar.
        let nested = |d: usize| format!("{}1{}", "[".repeat(d), "]".repeat(d));
        assert!(Json::parse_with_depth(&nested(3), 3).is_ok());
        let e = Json::parse_with_depth(&nested(4), 3).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        // Scalars never descend: limit 0 still parses them.
        assert_eq!(Json::parse_with_depth("42", 0).unwrap(), Json::Num(42.0));
        // Siblings do not accumulate: the budget is per-path, not global.
        assert!(Json::parse_with_depth("[[1],[2],[3]]", 2).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use proptest::TestRng;

    /// Build a random finite JSON value from a seed, with bounded depth
    /// and width (the shim has no recursive strategy combinator, so the
    /// recursion lives here and the strategy supplies entropy).
    fn build(rng: &mut TestRng, depth: usize) -> Json {
        let pick = if depth == 0 {
            rng.below(4) // leaves only
        } else {
            rng.below(6)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.below(2) == 0),
            2 => {
                // Mix integers (render without fraction) and fractions.
                if rng.below(2) == 0 {
                    Json::Num(rng.below(20_001) as f64 - 10_000.0)
                } else {
                    Json::Num((rng.unit_f64() - 0.5) * 1e6)
                }
            }
            3 => {
                let len = rng.below(8);
                let s: String = (0..len)
                    .map(|_| {
                        // Printable ASCII plus the escapes the writer
                        // special-cases.
                        const ALPHABET: &[u8] = b"ab\"\\\n\r\tz 0{}[]:,\x01";
                        ALPHABET[rng.below(ALPHABET.len())] as char
                    })
                    .collect();
                Json::Str(s)
            }
            4 => {
                let len = rng.below(4);
                Json::Arr((0..len).map(|_| build(rng, depth - 1)).collect())
            }
            _ => {
                let len = rng.below(4);
                Json::Obj(
                    (0..len)
                        .map(|i| (format!("k{i}"), build(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn parse_render_round_trips(seed in 0u64..u64::MAX) {
            let mut rng = TestRng::new(seed);
            let value = build(&mut rng, 4);
            let text = value.render();
            let back = Json::parse(&text).unwrap_or_else(|e| {
                panic!("rendered value failed to parse: {e}\n{text}")
            });
            prop_assert_eq!(&back, &value, "render: {}", text);
            // Rendering is a fixed point: render∘parse∘render == render.
            prop_assert_eq!(back.render(), text);
        }
    }
}
