//! The fabric: resources and flow construction for a concrete platform.
//!
//! A [`Fabric`] is built once per [`Platform`]. Given the set of currently
//! active streams (CPU cores writing to a NUMA node, NIC DMA writing
//! received data to a NUMA node), it builds the corresponding resource
//! capacities and flow requests, applies the platform quirks, and runs the
//! tiered max-min solver to obtain every stream's instantaneous rate.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use mc_topology::{NumaId, Platform, SocketId};

use crate::solver::{allocate_into, Allocation, FlowClass, FlowSet, SolverScratch};

/// What kind of hardware component a resource index denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// The memory controller of one NUMA node.
    MemCtrl(NumaId),
    /// One direction of an inter-socket link.
    LinkDir {
        /// Source socket.
        from: SocketId,
        /// Destination socket.
        to: SocketId,
    },
    /// The PCIe link hosting the NIC.
    Pcie(SocketId),
    /// The NIC wire (network line rate after protocol efficiency).
    NicWire,
}

/// One active stream, as seen by the fabric.
///
/// The derived ordering is what the engine's solve cache sorts by to
/// canonicalise a stream multiset — any total order works, it only has to
/// be consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StreamSpec {
    /// One computing core on socket 0 issuing non-temporal stores to
    /// `numa`. The benchmark always computes on the first socket (§II-B:
    /// "we will model performances ... when cores of only one socket are
    /// computing").
    CpuWrite {
        /// Target NUMA node of the stores.
        numa: NumaId,
    },
    /// One computing core on an explicit socket — the configuration the
    /// paper leaves for future work (§II-B: "considering computing cores
    /// of all sockets accessing the same NUMA node ... is another
    /// problematic that is left for future work").
    CpuWriteFrom {
        /// Socket hosting the core.
        socket: SocketId,
        /// Target NUMA node of the stores.
        numa: NumaId,
    },
    /// The NIC DMA engine writing a received message into `numa`.
    DmaRecv {
        /// NUMA node holding the communication buffer.
        numa: NumaId,
    },
    /// The NIC DMA engine reading an outgoing message from `numa` (the
    /// send side of the paper's future-work "ping-pongs instead of only
    /// pongs" scenario).
    DmaSend {
        /// NUMA node holding the send buffer.
        numa: NumaId,
    },
}

impl StreamSpec {
    /// Target NUMA node of the stream.
    pub fn numa(&self) -> NumaId {
        match *self {
            StreamSpec::CpuWrite { numa }
            | StreamSpec::CpuWriteFrom { numa, .. }
            | StreamSpec::DmaRecv { numa }
            | StreamSpec::DmaSend { numa } => numa,
        }
    }

    /// Whether this is a DMA stream.
    pub fn is_dma(&self) -> bool {
        matches!(
            self,
            StreamSpec::DmaRecv { .. } | StreamSpec::DmaSend { .. }
        )
    }

    /// Source socket of a CPU stream (`None` for DMA streams).
    pub fn cpu_socket(&self) -> Option<SocketId> {
        match *self {
            StreamSpec::CpuWrite { .. } => Some(SocketId::new(0)),
            StreamSpec::CpuWriteFrom { socket, .. } => Some(socket),
            _ => None,
        }
    }
}

/// Result of solving the rates of a set of streams.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveResult {
    /// Rate of each stream in GB/s, same order as the input.
    pub rates: Vec<f64>,
    /// Load per fabric resource in GB/s (indexable via
    /// [`Fabric::resource_index`]).
    pub resource_load: Vec<f64>,
    /// Effective capacity per resource used for this solve.
    pub capacities: Vec<f64>,
}

impl SolveResult {
    /// Sum of the rates of all CPU streams.
    pub fn cpu_total(&self, streams: &[StreamSpec]) -> f64 {
        self.rates
            .iter()
            .zip(streams)
            .filter(|(_, s)| !s.is_dma())
            .map(|(r, _)| r)
            .sum()
    }

    /// Sum of the rates of all DMA streams.
    pub fn dma_total(&self, streams: &[StreamSpec]) -> f64 {
        self.rates
            .iter()
            .zip(streams)
            .filter(|(_, s)| s.is_dma())
            .map(|(r, _)| r)
            .sum()
    }
}

/// A flow path as stored in the precomputed path table: at most four
/// resource indices (NIC wire, PCIe, memory controller, inter-socket
/// link), inline so lookups touch no heap.
#[derive(Debug, Clone, Copy, Default)]
struct SmallPath {
    len: u8,
    idx: [u32; 4],
}

impl SmallPath {
    fn push(&mut self, i: usize) {
        self.idx[usize::from(self.len)] = i as u32;
        self.len += 1;
    }

    fn as_slice(&self) -> &[u32] {
        &self.idx[..usize::from(self.len)]
    }
}

/// Every flow path the fabric can ever hand to the solver, precomputed at
/// [`Fabric::new`] per `(StreamSpec kind, source socket, target NUMA)`.
/// Replaces the per-solve `HashMap<ResourceKind, usize>` lookups of the
/// old path builders.
#[derive(Debug, Clone)]
struct PathTable {
    n_numa: usize,
    /// Memory-controller resource index per NUMA node.
    ctrl: Vec<u32>,
    /// CPU write path per `(source socket, target NUMA)`, indexed by
    /// `socket.index() * n_numa + numa.index()`.
    cpu: Vec<SmallPath>,
    /// NIC DMA receive path per target NUMA node.
    dma_recv: Vec<SmallPath>,
    /// NIC DMA send (NIC read) path per source NUMA node.
    dma_send: Vec<SmallPath>,
}

impl PathTable {
    fn cpu(&self, socket: SocketId, numa: NumaId) -> &[u32] {
        self.cpu[socket.index() * self.n_numa + numa.index()].as_slice()
    }

    fn dma_recv(&self, numa: NumaId) -> &[u32] {
        self.dma_recv[numa.index()].as_slice()
    }

    fn dma_send(&self, numa: NumaId) -> &[u32] {
        self.dma_send[numa.index()].as_slice()
    }
}

/// Reusable buffers for [`Fabric::solve_into`]. Holding one per thread (or
/// per engine) makes repeated solves allocation-free after warmup.
#[derive(Debug, Clone, Default)]
pub struct FabricScratch {
    caps: Vec<f64>,
    cpu_on: Vec<u32>,
    dma_on: Vec<u32>,
    flows: FlowSet,
    solver: SolverScratch,
    alloc: Allocation,
}

/// The simulated memory/IO fabric of one platform.
#[derive(Debug, Clone)]
pub struct Fabric {
    platform: Arc<Platform>,
    kinds: Vec<ResourceKind>,
    index: HashMap<ResourceKind, usize>,
    paths: PathTable,
}

impl Fabric {
    /// Build the fabric for a platform (clones it once into an
    /// [`Arc`]; use [`Fabric::from_arc`] to share an existing one).
    pub fn new(platform: &Platform) -> Self {
        Self::from_arc(Arc::new(platform.clone()))
    }

    /// Build the fabric around a shared platform without cloning it.
    pub fn from_arc(platform: Arc<Platform>) -> Self {
        let topo = &platform.topology;
        let mut kinds = Vec::new();
        for n in topo.numa_ids() {
            kinds.push(ResourceKind::MemCtrl(n));
        }
        for link in &topo.links {
            kinds.push(ResourceKind::LinkDir {
                from: link.a,
                to: link.b,
            });
            kinds.push(ResourceKind::LinkDir {
                from: link.b,
                to: link.a,
            });
        }
        kinds.push(ResourceKind::Pcie(topo.nic.socket));
        kinds.push(ResourceKind::NicWire);
        let index: HashMap<ResourceKind, usize> =
            kinds.iter().enumerate().map(|(i, &k)| (k, i)).collect();

        // Precompute every path the solver can ever see. Path element
        // order matches the historical builders (controller first for CPU
        // writes; wire, PCIe, controller, then link for DMA) so solves
        // stay bit-identical.
        let n_numa = topo.numa_ids().count();
        let n_sockets = topo.sockets.len();
        let nic_socket = topo.nic.socket;
        let link_dir = |from: SocketId, to: SocketId| -> usize {
            *index
                .get(&ResourceKind::LinkDir { from, to })
                .expect("missing inter-socket link resource")
        };
        let mut ctrl = Vec::with_capacity(n_numa);
        let mut dma_recv = Vec::with_capacity(n_numa);
        let mut dma_send = Vec::with_capacity(n_numa);
        let mut cpu = vec![SmallPath::default(); n_sockets * n_numa];
        for numa in topo.numa_ids() {
            let ctrl_idx = index[&ResourceKind::MemCtrl(numa)];
            ctrl.push(ctrl_idx as u32);
            let target_socket = topo.socket_of_numa(numa);
            for s in 0..n_sockets {
                let src = SocketId::new(s as u16);
                let slot = &mut cpu[src.index() * n_numa + numa.index()];
                slot.push(ctrl_idx);
                if target_socket != src {
                    slot.push(link_dir(src, target_socket));
                }
            }
            let mut recv = SmallPath::default();
            recv.push(index[&ResourceKind::NicWire]);
            recv.push(index[&ResourceKind::Pcie(nic_socket)]);
            recv.push(ctrl_idx);
            if target_socket != nic_socket {
                recv.push(link_dir(nic_socket, target_socket));
            }
            dma_recv.push(recv);
            let mut send = SmallPath::default();
            send.push(index[&ResourceKind::NicWire]);
            send.push(index[&ResourceKind::Pcie(nic_socket)]);
            send.push(ctrl_idx);
            if target_socket != nic_socket {
                send.push(link_dir(target_socket, nic_socket));
            }
            dma_send.push(send);
        }

        Fabric {
            platform,
            kinds,
            index,
            paths: PathTable {
                n_numa,
                ctrl,
                cpu,
                dma_recv,
                dma_send,
            },
        }
    }

    /// The platform this fabric simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The shared handle to the platform (cheap to clone).
    pub fn platform_arc(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Number of resources in the fabric.
    pub fn resource_count(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of resource `i`.
    pub fn resource_kind(&self, i: usize) -> ResourceKind {
        self.kinds[i]
    }

    /// Index of a resource kind, if present.
    pub fn resource_index(&self, kind: ResourceKind) -> Option<usize> {
        self.index.get(&kind).copied()
    }

    /// Base (quirk-free) DMA demand when receiving into `numa`: wire rate ×
    /// protocol efficiency × per-node NIC efficiency, capped by the narrower
    /// DMA path across the inter-socket link when the buffer is on the
    /// other socket.
    pub fn dma_demand(&self, numa: NumaId) -> f64 {
        let topo = &self.platform.topology;
        let nic = &topo.nic;
        let mut demand = nic.tech.wire_rate()
            * nic.tech.protocol_efficiency()
            * self.platform.behavior.nic_efficiency_for(numa.index());
        demand = demand.min(nic.pcie.usable_bandwidth());
        if topo.dma_crosses_socket_link(numa) {
            if let Some(link) = topo.link_between(nic.socket, topo.socket_of_numa(numa)) {
                demand = demand.min(link.dma_bandwidth);
            }
        }
        demand
    }

    /// Effective capacities given the current accessor population, written
    /// into `scratch.caps` (with per-NUMA accessor counts staged in
    /// `scratch.cpu_on` / `scratch.dma_on`).
    fn capacities_into(&self, streams: &[StreamSpec], scratch: &mut FabricScratch) {
        let topo = &self.platform.topology;
        let behavior = &self.platform.behavior;
        let n_numa = self.paths.n_numa;
        scratch.cpu_on.clear();
        scratch.cpu_on.resize(n_numa, 0);
        scratch.dma_on.clear();
        scratch.dma_on.resize(n_numa, 0);
        for s in streams {
            let n = s.numa().index();
            if s.is_dma() {
                scratch.dma_on[n] += 1;
            } else {
                scratch.cpu_on[n] += 1;
            }
        }
        scratch.caps.clear();
        for &kind in &self.kinds {
            let cap = match kind {
                ResourceKind::MemCtrl(n) => {
                    let cpu_accessors = f64::from(scratch.cpu_on[n.index()]);
                    let dma_accessors = f64::from(scratch.dma_on[n.index()]);
                    let slots =
                        cpu_accessors + dma_accessors * behavior.arbitration.dma_accessor_weight;
                    behavior.mem_ctrl.effective_capacity(slots)
                }
                ResourceKind::LinkDir { from, to } => topo
                    .link_between(from, to)
                    .map(|l| l.cpu_bandwidth)
                    .unwrap_or(f64::INFINITY),
                ResourceKind::Pcie(s) => {
                    debug_assert_eq!(s, topo.nic.socket);
                    topo.nic.pcie.usable_bandwidth()
                }
                ResourceKind::NicWire => {
                    topo.nic.tech.wire_rate() * topo.nic.tech.protocol_efficiency()
                }
            };
            scratch.caps.push(cap);
        }
    }

    /// Build the solver flows for a set of streams into `scratch.flows`
    /// (reading the capacities staged in `scratch.caps`). `cpu_scale`
    /// scales the per-core demand uniformly — the knob compute kernels
    /// other than non-temporal `memset` use (a copy kernel moves more
    /// bytes per element, a compute-bound kernel far fewer).
    fn flows_into(&self, streams: &[StreamSpec], cpu_scale: f64, scratch: &mut FabricScratch) {
        let behavior = &self.platform.behavior;
        let topo = &self.platform.topology;
        // Per-core demand depends on how many cores stream together
        // (imperfect-scaling quirk) and on locality.
        let n_cpu = streams.iter().filter(|s| !s.is_dma()).count();
        let caps = &scratch.caps;
        let flows = &mut scratch.flows;
        flows.clear();

        for s in streams {
            match *s {
                StreamSpec::CpuWrite { numa } => {
                    let local = topo.is_local(SocketId::new(0), numa);
                    let demand = behavior.core_stream.demand(n_cpu, local) * cpu_scale;
                    flows.push(
                        FlowClass::Cpu,
                        demand,
                        0.0,
                        self.paths.cpu(SocketId::new(0), numa),
                    );
                }
                StreamSpec::CpuWriteFrom { socket, numa } => {
                    let local = topo.is_local(socket, numa);
                    let demand = behavior.core_stream.demand(n_cpu, local) * cpu_scale;
                    flows.push(FlowClass::Cpu, demand, 0.0, self.paths.cpu(socket, numa));
                }
                StreamSpec::DmaRecv { numa } => {
                    let demand = self.dma_demand(numa);
                    let floor = behavior.arbitration.dma_floor_fraction * demand;
                    let capped =
                        self.dma_pressure_cap(streams, caps, numa, demand, floor, cpu_scale);
                    flows.push(
                        FlowClass::Dma,
                        capped,
                        floor.min(capped),
                        self.paths.dma_recv(numa),
                    );
                }
                StreamSpec::DmaSend { numa } => {
                    let demand = self.dma_demand(numa);
                    let floor = behavior.arbitration.dma_floor_fraction * demand;
                    let capped =
                        self.dma_pressure_cap(streams, caps, numa, demand, floor, cpu_scale);
                    flows.push(
                        FlowClass::Dma,
                        capped,
                        floor.min(capped),
                        self.paths.dma_send(numa),
                    );
                }
            }
        }
    }

    /// Throttle the DMA demand according to CPU *issue pressure* on the
    /// hardware domains both kinds of streams occupy.
    ///
    /// Cores issue non-temporal stores at their nominal rate whatever their
    /// target; stalled requests occupy the socket mesh and the target
    /// memory controller's queues. The hardware therefore squeezes DMA
    /// according to the issue pressure, not the eventually-granted CPU
    /// bandwidth — which is why communications experience local-config-like
    /// contention in every placement (paper eq. 6 applies the local model
    /// to all non-both-remote placements).
    ///
    /// Domains considered: the target memory controller, the NIC socket's
    /// mesh, and the target socket's mesh. Per domain, the cap decays
    /// linearly from the full demand (utilisation `u0`, 1.0 unless the
    /// platform has the early-decay quirk) to the floor (utilisation `u1`,
    /// where a leftover-based allocation would hit the floor too).
    fn dma_pressure_cap(
        &self,
        streams: &[StreamSpec],
        capacities: &[f64],
        numa: NumaId,
        demand: f64,
        floor: f64,
        cpu_scale: f64,
    ) -> f64 {
        let behavior = &self.platform.behavior;
        let topo = &self.platform.topology;
        if demand <= floor {
            return demand;
        }
        let u0 = behavior.arbitration.soft_decay_start.unwrap_or(1.0);
        let n_cpu = streams.iter().filter(|s| !s.is_dma()).count();
        // Issue rate of one core: its nominal local streaming rate (the
        // core pushes requests at this rate regardless of target locality),
        // scaled by the kernel's traffic factor.
        let issue = behavior.core_stream.demand(n_cpu, true) * cpu_scale;
        let target_socket = topo.socket_of_numa(numa);
        let nic_socket = topo.nic.socket;
        // Architectures with a narrow cross-socket I/O path feel CPU
        // pressure more strongly when the DMA has to cross the link.
        let cross_factor = if target_socket != nic_socket {
            behavior.arbitration.cross_traffic_pressure_factor
        } else {
            1.0
        };
        let link_cap = |from: SocketId, to: SocketId| -> f64 {
            if from == to {
                f64::INFINITY
            } else {
                topo.link_between(from, to)
                    .map(|l| l.cpu_bandwidth)
                    .unwrap_or(f64::INFINITY)
            }
        };
        // CPU pressure a domain on socket `dom` feels: streams are grouped
        // by their source socket; a group issuing from another socket only
        // delivers what the inter-socket link lets through. `filter`
        // selects which streams pressure the domain at all.
        let sockets = topo.sockets.len();
        let grouped_pressure = |dom: SocketId, filter: &dyn Fn(&StreamSpec) -> bool| -> f64 {
            let mut total = 0.0;
            for src_idx in 0..sockets {
                let src = SocketId::new(src_idx as u16);
                let count = streams
                    .iter()
                    .filter(|s| s.cpu_socket() == Some(src) && filter(s))
                    .count();
                total += (count as f64 * issue).min(link_cap(src, dom));
            }
            total
        };

        // (capacity, cpu pressure) per domain — at most three, held inline
        // so a solve allocates nothing.
        let mut domains = [(0.0_f64, 0.0_f64); 3];
        let mut n_domains = 0;
        // Target memory controller: pressure from CPU streams writing to
        // the same node, delivery-capped when they cross the link.
        let ctrl = self.paths.ctrl[numa.index()] as usize;
        let mc_pressure = grouped_pressure(target_socket, &|s| s.numa() == numa);
        domains[n_domains] = (capacities[ctrl], mc_pressure * cross_factor);
        n_domains += 1;
        // Socket meshes the DMA occupies: entry (NIC socket) and landing
        // (target socket). A CPU stream occupies its source socket's mesh
        // (at issue rate — stalled requests queue there) and its target
        // socket's mesh (delivery-capped by the link).
        let mesh_sockets = if target_socket != nic_socket {
            [Some(nic_socket), Some(target_socket)]
        } else {
            [Some(nic_socket), None]
        };
        for mesh in mesh_sockets.into_iter().flatten() {
            let pressure = grouped_pressure(mesh, &|s| {
                s.cpu_socket() == Some(mesh) || topo.socket_of_numa(s.numa()) == mesh
            });
            domains[n_domains] = (behavior.mesh_capacity, pressure * cross_factor);
            n_domains += 1;
        }

        let mut cap = demand;
        for &(c, pressure) in &domains[..n_domains] {
            if c <= 0.0 {
                return floor;
            }
            let u = (pressure + demand) / c;
            let u1 = (c - floor + demand) / c;
            if u <= u0 || u1 <= u0 {
                continue;
            }
            let t = ((u - u0) / (u1 - u0)).clamp(0.0, 1.0);
            cap = cap.min(demand - (demand - floor) * t);
        }
        cap.max(floor)
    }

    /// Solve the steady-state rates of a set of streams (non-temporal
    /// `memset` kernels: unit CPU demand scale).
    pub fn solve(&self, streams: &[StreamSpec]) -> SolveResult {
        self.solve_with(streams, 1.0)
    }

    /// Solve with an explicit CPU demand scale — the per-core traffic of
    /// the compute kernel relative to a non-temporal `memset` (e.g. ≈ 1.15
    /// for a copy kernel, well below 1 for compute-bound kernels).
    ///
    /// Convenience wrapper around [`Fabric::solve_into`] using a
    /// thread-local scratch, so repeated calls only allocate the returned
    /// `SolveResult`.
    pub fn solve_with(&self, streams: &[StreamSpec], cpu_scale: f64) -> SolveResult {
        thread_local! {
            static SCRATCH: RefCell<FabricScratch> = RefCell::new(FabricScratch::default());
        }
        let mut out = SolveResult {
            rates: Vec::new(),
            resource_load: Vec::new(),
            capacities: Vec::new(),
        };
        SCRATCH.with(|s| self.solve_into(streams, cpu_scale, &mut s.borrow_mut(), &mut out));
        out
    }

    /// Solve the steady-state rates of a set of streams into `out`,
    /// reusing `scratch` — the allocation-free core behind
    /// [`Fabric::solve`] / [`Fabric::solve_with`]. After the scratch and
    /// output buffers have warmed up to the platform's sizes, a call
    /// performs no heap allocation.
    pub fn solve_into(
        &self,
        streams: &[StreamSpec],
        cpu_scale: f64,
        scratch: &mut FabricScratch,
        out: &mut SolveResult,
    ) {
        assert!(cpu_scale > 0.0, "cpu_scale must be positive");
        self.capacities_into(streams, scratch);
        self.flows_into(streams, cpu_scale, scratch);
        allocate_into(
            &scratch.caps,
            &scratch.flows,
            &mut scratch.solver,
            &mut scratch.alloc,
        );
        out.rates.clear();
        out.rates.extend_from_slice(&scratch.alloc.rates);
        out.resource_load.clear();
        out.resource_load
            .extend_from_slice(&scratch.alloc.resource_load);
        out.capacities.clear();
        out.capacities.extend_from_slice(&scratch.caps);
    }

    /// Convenience: streams for `n` computing cores writing to `m_comp`,
    /// optionally plus one DMA receive into `m_comm`.
    pub fn benchmark_streams(
        n_cores: usize,
        m_comp: Option<NumaId>,
        m_comm: Option<NumaId>,
    ) -> Vec<StreamSpec> {
        let mut v = Vec::with_capacity(n_cores + 1);
        if let Some(mc) = m_comp {
            v.extend((0..n_cores).map(|_| StreamSpec::CpuWrite { numa: mc }));
        }
        if let Some(mm) = m_comm {
            v.push(StreamSpec::DmaRecv { numa: mm });
        }
        v
    }
}

/// Check that `FlowClass` mapping matches `StreamSpec` (compile-time
/// assurance for maintainers; used in tests).
pub fn class_of(stream: &StreamSpec) -> FlowClass {
    if stream.is_dma() {
        FlowClass::Dma
    } else {
        FlowClass::Cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn resources_cover_all_components() {
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        // 4 controllers + 2 link directions + pcie + wire = 8.
        assert_eq!(f.resource_count(), 8);
        assert!(f
            .resource_index(ResourceKind::MemCtrl(NumaId::new(3)))
            .is_some());
        assert!(f.resource_index(ResourceKind::NicWire).is_some());
    }

    #[test]
    fn comm_alone_reaches_nominal_bandwidth() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let streams = Fabric::benchmark_streams(0, None, Some(NumaId::new(0)));
        let r = f.solve(&streams);
        let expected = f.dma_demand(NumaId::new(0));
        assert!((r.rates[0] - expected).abs() < 1e-9);
        // EDR ≈ 11.3 GB/s
        assert!((10.5..12.0).contains(&r.rates[0]), "{}", r.rates[0]);
    }

    #[test]
    fn compute_alone_scales_then_saturates() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let one = f.solve(&Fabric::benchmark_streams(1, Some(NumaId::new(0)), None));
        assert!(
            (one.cpu_total(&Fabric::benchmark_streams(1, Some(NumaId::new(0)), None)) - 5.6).abs()
                < 1e-9
        );
        let s10 = Fabric::benchmark_streams(10, Some(NumaId::new(0)), None);
        let r10 = f.solve(&s10);
        assert!((r10.cpu_total(&s10) - 56.0).abs() < 1e-9);
        let s17 = Fabric::benchmark_streams(17, Some(NumaId::new(0)), None);
        let r17 = f.solve(&s17);
        let total = r17.cpu_total(&s17);
        // Saturated below the 17*5.6 = 95.2 demand, near controller capacity.
        assert!(total < 95.0);
        assert!(total > 70.0, "{total}");
    }

    #[test]
    fn parallel_total_never_exceeds_controller_capacity() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        for n in 1..=17 {
            let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let r = f.solve(&s);
            let ctrl = f
                .resource_index(ResourceKind::MemCtrl(NumaId::new(0)))
                .unwrap();
            assert!(
                r.resource_load[ctrl] <= r.capacities[ctrl] + 1e-6,
                "n={n}: {} > {}",
                r.resource_load[ctrl],
                r.capacities[ctrl]
            );
        }
    }

    #[test]
    fn comm_degrades_to_floor_under_heavy_compute() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(17, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let r = f.solve(&s);
        let comm = r.dma_total(&s);
        let demand = f.dma_demand(NumaId::new(0));
        let floor = p.behavior.arbitration.dma_floor_fraction * demand;
        assert!((comm - floor).abs() < 1e-6, "comm {comm} vs floor {floor}");
    }

    #[test]
    fn no_contention_when_streams_use_different_nodes_and_mesh_is_idle() {
        // henri-subnuma: compute on node 0, comm on node 1 — different
        // controllers. With few cores the shared socket mesh is far from
        // saturation, so both streams keep their nominal rates.
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        let n = 3; // well below mesh saturation
        let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(1)));
        let r = f.solve(&s);
        assert!((r.cpu_total(&s) - 3.0 * 5.6).abs() < 1e-6);
        assert!((r.dma_total(&s) - f.dma_demand(NumaId::new(1))).abs() < 1e-6);
    }

    #[test]
    fn mesh_pressure_throttles_comm_even_across_controllers() {
        // Same placement with many cores: the streams land on different
        // controllers but share the socket mesh, so the NIC is squeezed —
        // the behaviour the paper's eq. 6 encodes by applying the local
        // model to every non-both-remote placement.
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(17, Some(NumaId::new(0)), Some(NumaId::new(1)));
        let r = f.solve(&s);
        assert!(r.dma_total(&s) < f.dma_demand(NumaId::new(1)) * 0.5);
    }

    #[test]
    fn diablo_nic_locality_sensitivity() {
        let p = platforms::diablo();
        let f = Fabric::new(&p);
        let to_nic_local = f.dma_demand(NumaId::new(1));
        let to_remote = f.dma_demand(NumaId::new(0));
        assert!(to_nic_local > 20.0, "{to_nic_local}");
        assert!((11.5..13.5).contains(&to_remote), "{to_remote}");
    }

    #[test]
    fn occigen_comm_never_throttled() {
        let p = platforms::occigen();
        let f = Fabric::new(&p);
        let nominal = f.dma_demand(NumaId::new(0));
        for n in 1..=13 {
            let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let r = f.solve(&s);
            assert!(
                (r.dma_total(&s) - nominal).abs() < 1e-6,
                "n={n}: {} vs {nominal}",
                r.dma_total(&s)
            );
        }
    }

    #[test]
    fn remote_compute_limited_by_socket_link() {
        let p = platforms::occigen();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(13, Some(NumaId::new(1)), None);
        let r = f.solve(&s);
        let link_cap = p
            .topology
            .link_between(SocketId::new(0), SocketId::new(1))
            .unwrap()
            .cpu_bandwidth;
        assert!(r.cpu_total(&s) <= link_cap + 1e-6);
        // And the link really is the binding constraint (not the controller).
        assert!((r.cpu_total(&s) - link_cap).abs() < 1e-6);
    }

    #[test]
    fn henri_soft_decay_starts_before_threshold() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let demand = f.dma_demand(NumaId::new(0));
        // At a core count where the hard leftover rule would still give the
        // NIC full demand, the soft-decay quirk already shaves bandwidth.
        // Capacity 80, demand ≈ 11.3: hard squeeze starts at n ≈ 12.3;
        // soft decay (u0 = 0.95) starts at n ≈ 11.9.
        let s12 = Fabric::benchmark_streams(12, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let r12 = f.solve(&s12);
        assert!(
            r12.dma_total(&s12) < demand - 0.2,
            "expected early decay, got {} vs demand {demand}",
            r12.dma_total(&s12)
        );
        // The hard rule alone would leave the NIC untouched here:
        // 12 × 5.6 + 11.3 = 78.5 < 80.
        assert!(12.0 * 5.6 + demand < 80.0);
    }

    #[test]
    fn cpu_write_from_socket_zero_equals_plain_cpu_write() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        for n in [1usize, 8, 17] {
            let plain = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let explicit: Vec<StreamSpec> = plain
                .iter()
                .map(|s| match *s {
                    StreamSpec::CpuWrite { numa } => StreamSpec::CpuWriteFrom {
                        socket: SocketId::new(0),
                        numa,
                    },
                    other => other,
                })
                .collect();
            assert_eq!(f.solve(&plain).rates, f.solve(&explicit).rates, "n={n}");
        }
    }

    #[test]
    fn both_sockets_hammering_one_node_share_its_controller() {
        // §II-B future work: 9 cores on each socket, all writing to NUMA
        // node 0. Socket-1 cores are link-limited; the controller is the
        // shared bottleneck; total stays within its capacity.
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut streams: Vec<StreamSpec> = (0..9)
            .map(|_| StreamSpec::CpuWriteFrom {
                socket: SocketId::new(0),
                numa: NumaId::new(0),
            })
            .collect();
        streams.extend((0..9).map(|_| StreamSpec::CpuWriteFrom {
            socket: SocketId::new(1),
            numa: NumaId::new(0),
        }));
        let solved = f.solve(&streams);
        let total = solved.cpu_total(&streams);
        let ctrl = f
            .resource_index(ResourceKind::MemCtrl(NumaId::new(0)))
            .unwrap();
        assert!(total <= solved.capacities[ctrl] + 1e-9);
        // The remote half cannot exceed the inter-socket link.
        let remote_total: f64 = solved.rates[9..].iter().sum();
        assert!(remote_total <= 36.0 + 1e-9);
        // Mixed access must beat what socket 0 alone could deliver only if
        // the controller has headroom; on henri 18 streams saturate it, so
        // the total sits at the (accessor-degraded) capacity.
        assert!(total > 70.0, "{total}");
    }

    #[test]
    fn mixed_socket_compute_still_squeezes_the_nic() {
        // Cores from both sockets plus the NIC on node 0: the DMA floor
        // still holds (no starvation) and the NIC is squeezed.
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut streams: Vec<StreamSpec> = (0..9)
            .map(|_| StreamSpec::CpuWriteFrom {
                socket: SocketId::new(0),
                numa: NumaId::new(0),
            })
            .collect();
        streams.extend((0..9).map(|_| StreamSpec::CpuWriteFrom {
            socket: SocketId::new(1),
            numa: NumaId::new(0),
        }));
        streams.push(StreamSpec::DmaRecv {
            numa: NumaId::new(0),
        });
        let solved = f.solve(&streams);
        let comm = solved.dma_total(&streams);
        let demand = f.dma_demand(NumaId::new(0));
        let floor = p.behavior.arbitration.dma_floor_fraction * demand;
        assert!(comm < demand, "squeezed: {comm} < {demand}");
        assert!(comm >= floor - 1e-9, "floor holds: {comm} >= {floor}");
    }

    #[test]
    fn class_of_matches_stream_kind() {
        assert_eq!(
            class_of(&StreamSpec::CpuWrite {
                numa: NumaId::new(0)
            }),
            FlowClass::Cpu
        );
        assert_eq!(
            class_of(&StreamSpec::DmaRecv {
                numa: NumaId::new(0)
            }),
            FlowClass::Dma
        );
    }
}
