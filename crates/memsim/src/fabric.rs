//! The fabric: resources and flow construction for a concrete platform.
//!
//! A [`Fabric`] is built once per [`Platform`]. Given the set of currently
//! active streams (CPU cores writing to a NUMA node, NIC DMA writing
//! received data to a NUMA node), it builds the corresponding resource
//! capacities and flow requests, applies the platform quirks, and runs the
//! tiered max-min solver to obtain every stream's instantaneous rate.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Arc;

use mc_topology::graph::{CapacityRule, ResourceGraph, RouteSpec};
use mc_topology::{NumaId, Platform, PoolId, SocketId};

use crate::solver::{allocate_into, Allocation, FlowClass, FlowSet, SolverScratch};

/// What kind of hardware component a resource index denotes.
///
/// Re-exported from the declarative resource graph in `mc-topology`
/// ([`mc_topology::graph`]), where the node set and routes of a platform
/// are now defined; the fabric consumes the graph and keeps the solver
/// on plain indices.
pub use mc_topology::graph::ResourceKind;

/// One active stream, as seen by the fabric.
///
/// The derived ordering is what the engine's solve cache sorts by to
/// canonicalise a stream multiset — any total order works, it only has to
/// be consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StreamSpec {
    /// One computing core on socket 0 issuing non-temporal stores to
    /// `numa`. The benchmark always computes on the first socket (§II-B:
    /// "we will model performances ... when cores of only one socket are
    /// computing").
    CpuWrite {
        /// Target NUMA node of the stores.
        numa: NumaId,
    },
    /// One computing core on an explicit socket — the configuration the
    /// paper leaves for future work (§II-B: "considering computing cores
    /// of all sockets accessing the same NUMA node ... is another
    /// problematic that is left for future work").
    CpuWriteFrom {
        /// Socket hosting the core.
        socket: SocketId,
        /// Target NUMA node of the stores.
        numa: NumaId,
    },
    /// The NIC DMA engine writing a received message into `numa`.
    DmaRecv {
        /// NUMA node holding the communication buffer.
        numa: NumaId,
    },
    /// The NIC DMA engine reading an outgoing message from `numa` (the
    /// send side of the paper's future-work "ping-pongs instead of only
    /// pongs" scenario).
    DmaSend {
        /// NUMA node holding the send buffer.
        numa: NumaId,
    },
    /// A core pushing message payload from its buffer on `numa` into a
    /// shared CXL.mem pool — the write half of message-free
    /// communication. Appended after the legacy variants so the derived
    /// ordering (and thus every cached stream-multiset key) is a strict
    /// extension of the historical one.
    CxlWrite {
        /// NUMA node holding the source buffer.
        numa: NumaId,
        /// Destination pool.
        pool: PoolId,
    },
    /// A core pulling message payload from a shared CXL.mem pool into
    /// its buffer on `numa` — the read half of message-free
    /// communication.
    CxlRead {
        /// NUMA node holding the destination buffer.
        numa: NumaId,
        /// Source pool.
        pool: PoolId,
    },
}

impl StreamSpec {
    /// DRAM-side NUMA node of the stream (for CXL streams, the node
    /// holding the local buffer — its controller is occupied on the
    /// DRAM leg of the route).
    pub fn numa(&self) -> NumaId {
        match *self {
            StreamSpec::CpuWrite { numa }
            | StreamSpec::CpuWriteFrom { numa, .. }
            | StreamSpec::DmaRecv { numa }
            | StreamSpec::DmaSend { numa }
            | StreamSpec::CxlWrite { numa, .. }
            | StreamSpec::CxlRead { numa, .. } => numa,
        }
    }

    /// Whether this is a DMA stream. CXL streams are core-issued
    /// loads/stores, so they are *not* DMA: they neither receive the
    /// arbitration floor nor suffer the issue-pressure cap — the
    /// physical asymmetry the message-free scenario exploits.
    pub fn is_dma(&self) -> bool {
        matches!(
            self,
            StreamSpec::DmaRecv { .. } | StreamSpec::DmaSend { .. }
        )
    }

    /// Source socket of a core-issued stream (`None` for DMA streams).
    /// CXL moves are issued by cores of the computing socket (socket 0,
    /// like [`StreamSpec::CpuWrite`]).
    pub fn cpu_socket(&self) -> Option<SocketId> {
        match *self {
            StreamSpec::CpuWrite { .. }
            | StreamSpec::CxlWrite { .. }
            | StreamSpec::CxlRead { .. } => Some(SocketId::new(0)),
            StreamSpec::CpuWriteFrom { socket, .. } => Some(socket),
            _ => None,
        }
    }

    /// The CXL pool a stream targets (`None` for DRAM-only streams).
    pub fn pool(&self) -> Option<PoolId> {
        match *self {
            StreamSpec::CxlWrite { pool, .. } | StreamSpec::CxlRead { pool, .. } => Some(pool),
            _ => None,
        }
    }
}

/// Result of solving the rates of a set of streams.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveResult {
    /// Rate of each stream in GB/s, same order as the input.
    pub rates: Vec<f64>,
    /// Load per fabric resource in GB/s (indexable via
    /// [`Fabric::resource_index`]).
    pub resource_load: Vec<f64>,
    /// Effective capacity per resource used for this solve.
    pub capacities: Vec<f64>,
}

impl SolveResult {
    /// Sum of the rates of all compute (CPU write) streams.
    pub fn cpu_total(&self, streams: &[StreamSpec]) -> f64 {
        self.rates
            .iter()
            .zip(streams)
            .filter(|(_, s)| !s.is_dma() && s.pool().is_none())
            .map(|(r, _)| r)
            .sum()
    }

    /// Sum of the rates of all DMA streams.
    pub fn dma_total(&self, streams: &[StreamSpec]) -> f64 {
        self.rates
            .iter()
            .zip(streams)
            .filter(|(_, s)| s.is_dma())
            .map(|(r, _)| r)
            .sum()
    }

    /// Sum of the rates of all CXL pool streams.
    pub fn cxl_total(&self, streams: &[StreamSpec]) -> f64 {
        self.rates
            .iter()
            .zip(streams)
            .filter(|(_, s)| s.pool().is_some())
            .map(|(r, _)| r)
            .sum()
    }
}

/// A flow path as stored in the precomputed path table: at most four
/// resource indices (NIC wire, PCIe, memory controller, inter-socket
/// link — or controller, link, CXL port, pool controller), inline so
/// lookups touch no heap.
#[derive(Debug, Clone, Copy, Default)]
struct SmallPath {
    len: u8,
    idx: [u32; 4],
}

impl SmallPath {
    fn push(&mut self, i: usize) {
        self.idx[usize::from(self.len)] = i as u32;
        self.len += 1;
    }

    fn as_slice(&self) -> &[u32] {
        &self.idx[..usize::from(self.len)]
    }
}

/// Every flow path the fabric can ever hand to the solver, precomputed at
/// [`Fabric::new`] per `(StreamSpec kind, source socket, target NUMA)`
/// by resolving [`RouteSpec`]s against the platform's [`ResourceGraph`].
/// Replaces the per-solve `HashMap<ResourceKind, usize>` lookups of the
/// old path builders.
#[derive(Debug, Clone)]
struct PathTable {
    n_numa: usize,
    /// Memory-controller resource index per NUMA node.
    ctrl: Vec<u32>,
    /// CPU write path per `(source socket, target NUMA)`, indexed by
    /// `socket.index() * n_numa + numa.index()`.
    cpu: Vec<SmallPath>,
    /// NIC DMA receive path per target NUMA node.
    dma_recv: Vec<SmallPath>,
    /// NIC DMA send (NIC read) path per source NUMA node.
    dma_send: Vec<SmallPath>,
    /// CXL pool write path per `(pool, source NUMA)`, indexed by
    /// `pool.index() * n_numa + numa.index()`. Empty without pools.
    cxl_write: Vec<SmallPath>,
    /// CXL pool read path per `(pool, destination NUMA)`, same layout.
    cxl_read: Vec<SmallPath>,
}

impl PathTable {
    fn cpu(&self, socket: SocketId, numa: NumaId) -> &[u32] {
        self.cpu[socket.index() * self.n_numa + numa.index()].as_slice()
    }

    fn dma_recv(&self, numa: NumaId) -> &[u32] {
        self.dma_recv[numa.index()].as_slice()
    }

    fn dma_send(&self, numa: NumaId) -> &[u32] {
        self.dma_send[numa.index()].as_slice()
    }

    fn cxl_write(&self, pool: PoolId, numa: NumaId) -> &[u32] {
        self.cxl_write[pool.index() * self.n_numa + numa.index()].as_slice()
    }

    fn cxl_read(&self, pool: PoolId, numa: NumaId) -> &[u32] {
        self.cxl_read[pool.index() * self.n_numa + numa.index()].as_slice()
    }
}

/// Reusable buffers for [`Fabric::solve_into`]. Holding one per thread (or
/// per engine) makes repeated solves allocation-free after warmup.
#[derive(Debug, Clone, Default)]
pub struct FabricScratch {
    caps: Vec<f64>,
    cpu_on: Vec<u32>,
    dma_on: Vec<u32>,
    flows: FlowSet,
    solver: SolverScratch,
    alloc: Allocation,
}

/// The simulated memory/IO fabric of one platform.
#[derive(Debug, Clone)]
pub struct Fabric {
    platform: Arc<Platform>,
    graph: ResourceGraph,
    paths: PathTable,
}

impl Fabric {
    /// Build the fabric for a platform (clones it once into an
    /// [`Arc`]; use [`Fabric::from_arc`] to share an existing one).
    pub fn new(platform: &Platform) -> Self {
        Self::from_arc(Arc::new(platform.clone()))
    }

    /// Build the fabric around a shared platform without cloning it.
    ///
    /// The node set comes from [`ResourceGraph::for_topology`] and every
    /// path the solver can ever see is resolved here, once, via
    /// [`ResourceGraph::route`]. The graph preserves the historical node
    /// emission and hop orders (see its module docs), so solves on
    /// platforms without CXL pools stay bit-identical to the old
    /// hardwired builder.
    pub fn from_arc(platform: Arc<Platform>) -> Self {
        let topo = &platform.topology;
        let graph = ResourceGraph::for_topology(topo);

        let n_numa = topo.numa_ids().count();
        let n_sockets = topo.sockets.len();
        let n_pools = topo.cxl_pools.len();
        let mut hops: Vec<u32> = Vec::with_capacity(4);
        let mut resolve = |spec: RouteSpec| -> SmallPath {
            hops.clear();
            graph.route(topo, spec, &mut hops);
            let mut path = SmallPath::default();
            for &i in &hops {
                path.push(i as usize);
            }
            path
        };

        let mut ctrl = Vec::with_capacity(n_numa);
        let mut dma_recv = Vec::with_capacity(n_numa);
        let mut dma_send = Vec::with_capacity(n_numa);
        let mut cpu = Vec::with_capacity(n_sockets * n_numa);
        for s in 0..n_sockets {
            let socket = SocketId::new(s as u16);
            for numa in topo.numa_ids() {
                cpu.push(resolve(RouteSpec::CpuWrite { socket, numa }));
            }
        }
        for numa in topo.numa_ids() {
            dma_recv.push(resolve(RouteSpec::DmaRecv { numa }));
            dma_send.push(resolve(RouteSpec::DmaSend { numa }));
        }
        let mut cxl_write = Vec::with_capacity(n_pools * n_numa);
        let mut cxl_read = Vec::with_capacity(n_pools * n_numa);
        for pool in topo.cxl_pools.iter().map(|p| p.id) {
            for numa in topo.numa_ids() {
                cxl_write.push(resolve(RouteSpec::CxlWrite { numa, pool }));
                cxl_read.push(resolve(RouteSpec::CxlRead { numa, pool }));
            }
        }
        for numa in topo.numa_ids() {
            let ctrl_idx = graph
                .index_of(ResourceKind::MemCtrl(numa))
                .expect("every NUMA node has a controller");
            ctrl.push(ctrl_idx as u32);
        }

        Fabric {
            platform,
            graph,
            paths: PathTable {
                n_numa,
                ctrl,
                cpu,
                dma_recv,
                dma_send,
                cxl_write,
                cxl_read,
            },
        }
    }

    /// The platform this fabric simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The shared handle to the platform (cheap to clone).
    pub fn platform_arc(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The declarative resource graph the fabric was built from.
    pub fn graph(&self) -> &ResourceGraph {
        &self.graph
    }

    /// Number of resources in the fabric.
    pub fn resource_count(&self) -> usize {
        self.graph.len()
    }

    /// Kind of resource `i`.
    pub fn resource_kind(&self, i: usize) -> ResourceKind {
        self.graph.nodes()[i].kind
    }

    /// Index of a resource kind, if present.
    pub fn resource_index(&self, kind: ResourceKind) -> Option<usize> {
        self.graph.index_of(kind)
    }

    /// Base (quirk-free) DMA demand when receiving into `numa`: wire rate ×
    /// protocol efficiency × per-node NIC efficiency, capped by the narrower
    /// DMA path across the inter-socket link when the buffer is on the
    /// other socket.
    pub fn dma_demand(&self, numa: NumaId) -> f64 {
        let topo = &self.platform.topology;
        let nic = &topo.nic;
        let mut demand = nic.tech.wire_rate()
            * nic.tech.protocol_efficiency()
            * self.platform.behavior.nic_efficiency_for(numa.index());
        demand = demand.min(nic.pcie.usable_bandwidth());
        if topo.dma_crosses_socket_link(numa) {
            if let Some(link) = topo.link_between(nic.socket, topo.socket_of_numa(numa)) {
                demand = demand.min(link.dma_bandwidth);
            }
        }
        demand
    }

    /// Effective capacities given the current accessor population, written
    /// into `scratch.caps` (with per-NUMA accessor counts staged in
    /// `scratch.cpu_on` / `scratch.dma_on`).
    fn capacities_into(&self, streams: &[StreamSpec], scratch: &mut FabricScratch) {
        let behavior = &self.platform.behavior;
        let n_numa = self.paths.n_numa;
        scratch.cpu_on.clear();
        scratch.cpu_on.resize(n_numa, 0);
        scratch.dma_on.clear();
        scratch.dma_on.resize(n_numa, 0);
        for s in streams {
            let n = s.numa().index();
            if s.is_dma() {
                scratch.dma_on[n] += 1;
            } else {
                scratch.cpu_on[n] += 1;
            }
        }
        scratch.caps.clear();
        for node in self.graph.nodes() {
            let cap = match node.capacity {
                CapacityRule::Fixed(c) => c,
                CapacityRule::Controller(n) => {
                    let cpu_accessors = f64::from(scratch.cpu_on[n.index()]);
                    let dma_accessors = f64::from(scratch.dma_on[n.index()]);
                    let slots =
                        cpu_accessors + dma_accessors * behavior.arbitration.dma_accessor_weight;
                    behavior.mem_ctrl.effective_capacity(slots)
                }
            };
            scratch.caps.push(cap);
        }
    }

    /// Build the solver flows for a set of streams into `scratch.flows`
    /// (reading the capacities staged in `scratch.caps`). `cpu_scale`
    /// scales the per-core demand uniformly — the knob compute kernels
    /// other than non-temporal `memset` use (a copy kernel moves more
    /// bytes per element, a compute-bound kernel far fewer).
    fn flows_into(&self, streams: &[StreamSpec], cpu_scale: f64, scratch: &mut FabricScratch) {
        let behavior = &self.platform.behavior;
        let topo = &self.platform.topology;
        // Per-core demand depends on how many cores stream together
        // (imperfect-scaling quirk) and on locality.
        let n_cpu = streams.iter().filter(|s| !s.is_dma()).count();
        let caps = &scratch.caps;
        let flows = &mut scratch.flows;
        flows.clear();

        for s in streams {
            match *s {
                StreamSpec::CpuWrite { numa } => {
                    let local = topo.is_local(SocketId::new(0), numa);
                    let demand = behavior.core_stream.demand(n_cpu, local) * cpu_scale;
                    flows.push(
                        FlowClass::Cpu,
                        demand,
                        0.0,
                        self.paths.cpu(SocketId::new(0), numa),
                    );
                }
                StreamSpec::CpuWriteFrom { socket, numa } => {
                    let local = topo.is_local(socket, numa);
                    let demand = behavior.core_stream.demand(n_cpu, local) * cpu_scale;
                    flows.push(FlowClass::Cpu, demand, 0.0, self.paths.cpu(socket, numa));
                }
                StreamSpec::DmaRecv { numa } => {
                    let demand = self.dma_demand(numa);
                    let floor = behavior.arbitration.dma_floor_fraction * demand;
                    let capped =
                        self.dma_pressure_cap(streams, caps, numa, demand, floor, cpu_scale);
                    flows.push(
                        FlowClass::Dma,
                        capped,
                        floor.min(capped),
                        self.paths.dma_recv(numa),
                    );
                }
                StreamSpec::DmaSend { numa } => {
                    let demand = self.dma_demand(numa);
                    let floor = behavior.arbitration.dma_floor_fraction * demand;
                    let capped =
                        self.dma_pressure_cap(streams, caps, numa, demand, floor, cpu_scale);
                    flows.push(
                        FlowClass::Dma,
                        capped,
                        floor.min(capped),
                        self.paths.dma_send(numa),
                    );
                }
                // CXL pool streams are core-issued, so they compete in the
                // CPU class: no arbitration floor, no issue-pressure cap.
                // Their demand is the pool's per-stream sustainable rate.
                StreamSpec::CxlWrite { numa, pool } => {
                    let demand = topo.cxl_pools[pool.index()].stream_bandwidth;
                    flows.push(
                        FlowClass::Cpu,
                        demand,
                        0.0,
                        self.paths.cxl_write(pool, numa),
                    );
                }
                StreamSpec::CxlRead { numa, pool } => {
                    let demand = topo.cxl_pools[pool.index()].stream_bandwidth;
                    flows.push(FlowClass::Cpu, demand, 0.0, self.paths.cxl_read(pool, numa));
                }
            }
        }
    }

    /// Throttle the DMA demand according to CPU *issue pressure* on the
    /// hardware domains both kinds of streams occupy.
    ///
    /// Cores issue non-temporal stores at their nominal rate whatever their
    /// target; stalled requests occupy the socket mesh and the target
    /// memory controller's queues. The hardware therefore squeezes DMA
    /// according to the issue pressure, not the eventually-granted CPU
    /// bandwidth — which is why communications experience local-config-like
    /// contention in every placement (paper eq. 6 applies the local model
    /// to all non-both-remote placements).
    ///
    /// Domains considered: the target memory controller, the NIC socket's
    /// mesh, and the target socket's mesh. Per domain, the cap decays
    /// linearly from the full demand (utilisation `u0`, 1.0 unless the
    /// platform has the early-decay quirk) to the floor (utilisation `u1`,
    /// where a leftover-based allocation would hit the floor too).
    fn dma_pressure_cap(
        &self,
        streams: &[StreamSpec],
        capacities: &[f64],
        numa: NumaId,
        demand: f64,
        floor: f64,
        cpu_scale: f64,
    ) -> f64 {
        let behavior = &self.platform.behavior;
        let topo = &self.platform.topology;
        if demand <= floor {
            return demand;
        }
        let u0 = behavior.arbitration.soft_decay_start.unwrap_or(1.0);
        let n_cpu = streams.iter().filter(|s| !s.is_dma()).count();
        // Issue rate of one core: its nominal local streaming rate (the
        // core pushes requests at this rate regardless of target locality),
        // scaled by the kernel's traffic factor.
        let issue = behavior.core_stream.demand(n_cpu, true) * cpu_scale;
        let target_socket = topo.socket_of_numa(numa);
        let nic_socket = topo.nic.socket;
        // Architectures with a narrow cross-socket I/O path feel CPU
        // pressure more strongly when the DMA has to cross the link.
        let cross_factor = if target_socket != nic_socket {
            behavior.arbitration.cross_traffic_pressure_factor
        } else {
            1.0
        };
        let link_cap = |from: SocketId, to: SocketId| -> f64 {
            if from == to {
                f64::INFINITY
            } else {
                topo.link_between(from, to)
                    .map(|l| l.cpu_bandwidth)
                    .unwrap_or(f64::INFINITY)
            }
        };
        // CPU pressure a domain on socket `dom` feels: streams are grouped
        // by their source socket; a group issuing from another socket only
        // delivers what the inter-socket link lets through. `filter`
        // selects which streams pressure the domain at all.
        let sockets = topo.sockets.len();
        let grouped_pressure = |dom: SocketId, filter: &dyn Fn(&StreamSpec) -> bool| -> f64 {
            let mut total = 0.0;
            for src_idx in 0..sockets {
                let src = SocketId::new(src_idx as u16);
                let count = streams
                    .iter()
                    .filter(|s| s.cpu_socket() == Some(src) && filter(s))
                    .count();
                total += (count as f64 * issue).min(link_cap(src, dom));
            }
            total
        };

        // (capacity, cpu pressure) per domain — at most three, held inline
        // so a solve allocates nothing.
        let mut domains = [(0.0_f64, 0.0_f64); 3];
        let mut n_domains = 0;
        // Target memory controller: pressure from CPU streams writing to
        // the same node, delivery-capped when they cross the link.
        let ctrl = self.paths.ctrl[numa.index()] as usize;
        let mc_pressure = grouped_pressure(target_socket, &|s| s.numa() == numa);
        domains[n_domains] = (capacities[ctrl], mc_pressure * cross_factor);
        n_domains += 1;
        // Socket meshes the DMA occupies: entry (NIC socket) and landing
        // (target socket). A CPU stream occupies its source socket's mesh
        // (at issue rate — stalled requests queue there) and its target
        // socket's mesh (delivery-capped by the link).
        let mesh_sockets = if target_socket != nic_socket {
            [Some(nic_socket), Some(target_socket)]
        } else {
            [Some(nic_socket), None]
        };
        for mesh in mesh_sockets.into_iter().flatten() {
            let pressure = grouped_pressure(mesh, &|s| {
                s.cpu_socket() == Some(mesh) || topo.socket_of_numa(s.numa()) == mesh
            });
            domains[n_domains] = (behavior.mesh_capacity, pressure * cross_factor);
            n_domains += 1;
        }

        let mut cap = demand;
        for &(c, pressure) in &domains[..n_domains] {
            if c <= 0.0 {
                return floor;
            }
            let u = (pressure + demand) / c;
            let u1 = (c - floor + demand) / c;
            if u <= u0 || u1 <= u0 {
                continue;
            }
            let t = ((u - u0) / (u1 - u0)).clamp(0.0, 1.0);
            cap = cap.min(demand - (demand - floor) * t);
        }
        cap.max(floor)
    }

    /// Solve the steady-state rates of a set of streams (non-temporal
    /// `memset` kernels: unit CPU demand scale).
    pub fn solve(&self, streams: &[StreamSpec]) -> SolveResult {
        self.solve_with(streams, 1.0)
    }

    /// Solve with an explicit CPU demand scale — the per-core traffic of
    /// the compute kernel relative to a non-temporal `memset` (e.g. ≈ 1.15
    /// for a copy kernel, well below 1 for compute-bound kernels).
    ///
    /// Convenience wrapper around [`Fabric::solve_into`] using a
    /// thread-local scratch, so repeated calls only allocate the returned
    /// `SolveResult`.
    pub fn solve_with(&self, streams: &[StreamSpec], cpu_scale: f64) -> SolveResult {
        thread_local! {
            static SCRATCH: RefCell<FabricScratch> = RefCell::new(FabricScratch::default());
        }
        let mut out = SolveResult {
            rates: Vec::new(),
            resource_load: Vec::new(),
            capacities: Vec::new(),
        };
        SCRATCH.with(|s| self.solve_into(streams, cpu_scale, &mut s.borrow_mut(), &mut out));
        out
    }

    /// Solve the steady-state rates of a set of streams into `out`,
    /// reusing `scratch` — the allocation-free core behind
    /// [`Fabric::solve`] / [`Fabric::solve_with`]. After the scratch and
    /// output buffers have warmed up to the platform's sizes, a call
    /// performs no heap allocation.
    pub fn solve_into(
        &self,
        streams: &[StreamSpec],
        cpu_scale: f64,
        scratch: &mut FabricScratch,
        out: &mut SolveResult,
    ) {
        assert!(cpu_scale > 0.0, "cpu_scale must be positive");
        self.capacities_into(streams, scratch);
        self.flows_into(streams, cpu_scale, scratch);
        allocate_into(
            &scratch.caps,
            &scratch.flows,
            &mut scratch.solver,
            &mut scratch.alloc,
        );
        out.rates.clear();
        out.rates.extend_from_slice(&scratch.alloc.rates);
        out.resource_load.clear();
        out.resource_load
            .extend_from_slice(&scratch.alloc.resource_load);
        out.capacities.clear();
        out.capacities.extend_from_slice(&scratch.caps);
    }

    /// Convenience: streams for `n` computing cores writing to `m_comp`,
    /// optionally plus one DMA receive into `m_comm`.
    pub fn benchmark_streams(
        n_cores: usize,
        m_comp: Option<NumaId>,
        m_comm: Option<NumaId>,
    ) -> Vec<StreamSpec> {
        let mut v = Vec::with_capacity(n_cores + 1);
        if let Some(mc) = m_comp {
            v.extend((0..n_cores).map(|_| StreamSpec::CpuWrite { numa: mc }));
        }
        if let Some(mm) = m_comm {
            v.push(StreamSpec::DmaRecv { numa: mm });
        }
        v
    }
}

/// Check that `FlowClass` mapping matches `StreamSpec` (compile-time
/// assurance for maintainers; used in tests).
pub fn class_of(stream: &StreamSpec) -> FlowClass {
    if stream.is_dma() {
        FlowClass::Dma
    } else {
        FlowClass::Cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn resources_cover_all_components() {
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        // 4 controllers + 2 link directions + pcie + wire = 8.
        assert_eq!(f.resource_count(), 8);
        assert!(f
            .resource_index(ResourceKind::MemCtrl(NumaId::new(3)))
            .is_some());
        assert!(f.resource_index(ResourceKind::NicWire).is_some());
    }

    #[test]
    fn comm_alone_reaches_nominal_bandwidth() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let streams = Fabric::benchmark_streams(0, None, Some(NumaId::new(0)));
        let r = f.solve(&streams);
        let expected = f.dma_demand(NumaId::new(0));
        assert!((r.rates[0] - expected).abs() < 1e-9);
        // EDR ≈ 11.3 GB/s
        assert!((10.5..12.0).contains(&r.rates[0]), "{}", r.rates[0]);
    }

    #[test]
    fn compute_alone_scales_then_saturates() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let one = f.solve(&Fabric::benchmark_streams(1, Some(NumaId::new(0)), None));
        assert!(
            (one.cpu_total(&Fabric::benchmark_streams(1, Some(NumaId::new(0)), None)) - 5.6).abs()
                < 1e-9
        );
        let s10 = Fabric::benchmark_streams(10, Some(NumaId::new(0)), None);
        let r10 = f.solve(&s10);
        assert!((r10.cpu_total(&s10) - 56.0).abs() < 1e-9);
        let s17 = Fabric::benchmark_streams(17, Some(NumaId::new(0)), None);
        let r17 = f.solve(&s17);
        let total = r17.cpu_total(&s17);
        // Saturated below the 17*5.6 = 95.2 demand, near controller capacity.
        assert!(total < 95.0);
        assert!(total > 70.0, "{total}");
    }

    #[test]
    fn parallel_total_never_exceeds_controller_capacity() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        for n in 1..=17 {
            let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let r = f.solve(&s);
            let ctrl = f
                .resource_index(ResourceKind::MemCtrl(NumaId::new(0)))
                .unwrap();
            assert!(
                r.resource_load[ctrl] <= r.capacities[ctrl] + 1e-6,
                "n={n}: {} > {}",
                r.resource_load[ctrl],
                r.capacities[ctrl]
            );
        }
    }

    #[test]
    fn comm_degrades_to_floor_under_heavy_compute() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(17, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let r = f.solve(&s);
        let comm = r.dma_total(&s);
        let demand = f.dma_demand(NumaId::new(0));
        let floor = p.behavior.arbitration.dma_floor_fraction * demand;
        assert!((comm - floor).abs() < 1e-6, "comm {comm} vs floor {floor}");
    }

    #[test]
    fn no_contention_when_streams_use_different_nodes_and_mesh_is_idle() {
        // henri-subnuma: compute on node 0, comm on node 1 — different
        // controllers. With few cores the shared socket mesh is far from
        // saturation, so both streams keep their nominal rates.
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        let n = 3; // well below mesh saturation
        let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(1)));
        let r = f.solve(&s);
        assert!((r.cpu_total(&s) - 3.0 * 5.6).abs() < 1e-6);
        assert!((r.dma_total(&s) - f.dma_demand(NumaId::new(1))).abs() < 1e-6);
    }

    #[test]
    fn mesh_pressure_throttles_comm_even_across_controllers() {
        // Same placement with many cores: the streams land on different
        // controllers but share the socket mesh, so the NIC is squeezed —
        // the behaviour the paper's eq. 6 encodes by applying the local
        // model to every non-both-remote placement.
        let p = platforms::henri_subnuma();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(17, Some(NumaId::new(0)), Some(NumaId::new(1)));
        let r = f.solve(&s);
        assert!(r.dma_total(&s) < f.dma_demand(NumaId::new(1)) * 0.5);
    }

    #[test]
    fn diablo_nic_locality_sensitivity() {
        let p = platforms::diablo();
        let f = Fabric::new(&p);
        let to_nic_local = f.dma_demand(NumaId::new(1));
        let to_remote = f.dma_demand(NumaId::new(0));
        assert!(to_nic_local > 20.0, "{to_nic_local}");
        assert!((11.5..13.5).contains(&to_remote), "{to_remote}");
    }

    #[test]
    fn occigen_comm_never_throttled() {
        let p = platforms::occigen();
        let f = Fabric::new(&p);
        let nominal = f.dma_demand(NumaId::new(0));
        for n in 1..=13 {
            let s = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let r = f.solve(&s);
            assert!(
                (r.dma_total(&s) - nominal).abs() < 1e-6,
                "n={n}: {} vs {nominal}",
                r.dma_total(&s)
            );
        }
    }

    #[test]
    fn remote_compute_limited_by_socket_link() {
        let p = platforms::occigen();
        let f = Fabric::new(&p);
        let s = Fabric::benchmark_streams(13, Some(NumaId::new(1)), None);
        let r = f.solve(&s);
        let link_cap = p
            .topology
            .link_between(SocketId::new(0), SocketId::new(1))
            .unwrap()
            .cpu_bandwidth;
        assert!(r.cpu_total(&s) <= link_cap + 1e-6);
        // And the link really is the binding constraint (not the controller).
        assert!((r.cpu_total(&s) - link_cap).abs() < 1e-6);
    }

    #[test]
    fn henri_soft_decay_starts_before_threshold() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let demand = f.dma_demand(NumaId::new(0));
        // At a core count where the hard leftover rule would still give the
        // NIC full demand, the soft-decay quirk already shaves bandwidth.
        // Capacity 80, demand ≈ 11.3: hard squeeze starts at n ≈ 12.3;
        // soft decay (u0 = 0.95) starts at n ≈ 11.9.
        let s12 = Fabric::benchmark_streams(12, Some(NumaId::new(0)), Some(NumaId::new(0)));
        let r12 = f.solve(&s12);
        assert!(
            r12.dma_total(&s12) < demand - 0.2,
            "expected early decay, got {} vs demand {demand}",
            r12.dma_total(&s12)
        );
        // The hard rule alone would leave the NIC untouched here:
        // 12 × 5.6 + 11.3 = 78.5 < 80.
        assert!(12.0 * 5.6 + demand < 80.0);
    }

    #[test]
    fn cpu_write_from_socket_zero_equals_plain_cpu_write() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        for n in [1usize, 8, 17] {
            let plain = Fabric::benchmark_streams(n, Some(NumaId::new(0)), Some(NumaId::new(0)));
            let explicit: Vec<StreamSpec> = plain
                .iter()
                .map(|s| match *s {
                    StreamSpec::CpuWrite { numa } => StreamSpec::CpuWriteFrom {
                        socket: SocketId::new(0),
                        numa,
                    },
                    other => other,
                })
                .collect();
            assert_eq!(f.solve(&plain).rates, f.solve(&explicit).rates, "n={n}");
        }
    }

    #[test]
    fn both_sockets_hammering_one_node_share_its_controller() {
        // §II-B future work: 9 cores on each socket, all writing to NUMA
        // node 0. Socket-1 cores are link-limited; the controller is the
        // shared bottleneck; total stays within its capacity.
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut streams: Vec<StreamSpec> = (0..9)
            .map(|_| StreamSpec::CpuWriteFrom {
                socket: SocketId::new(0),
                numa: NumaId::new(0),
            })
            .collect();
        streams.extend((0..9).map(|_| StreamSpec::CpuWriteFrom {
            socket: SocketId::new(1),
            numa: NumaId::new(0),
        }));
        let solved = f.solve(&streams);
        let total = solved.cpu_total(&streams);
        let ctrl = f
            .resource_index(ResourceKind::MemCtrl(NumaId::new(0)))
            .unwrap();
        assert!(total <= solved.capacities[ctrl] + 1e-9);
        // The remote half cannot exceed the inter-socket link.
        let remote_total: f64 = solved.rates[9..].iter().sum();
        assert!(remote_total <= 36.0 + 1e-9);
        // Mixed access must beat what socket 0 alone could deliver only if
        // the controller has headroom; on henri 18 streams saturate it, so
        // the total sits at the (accessor-degraded) capacity.
        assert!(total > 70.0, "{total}");
    }

    #[test]
    fn mixed_socket_compute_still_squeezes_the_nic() {
        // Cores from both sockets plus the NIC on node 0: the DMA floor
        // still holds (no starvation) and the NIC is squeezed.
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut streams: Vec<StreamSpec> = (0..9)
            .map(|_| StreamSpec::CpuWriteFrom {
                socket: SocketId::new(0),
                numa: NumaId::new(0),
            })
            .collect();
        streams.extend((0..9).map(|_| StreamSpec::CpuWriteFrom {
            socket: SocketId::new(1),
            numa: NumaId::new(0),
        }));
        streams.push(StreamSpec::DmaRecv {
            numa: NumaId::new(0),
        });
        let solved = f.solve(&streams);
        let comm = solved.dma_total(&streams);
        let demand = f.dma_demand(NumaId::new(0));
        let floor = p.behavior.arbitration.dma_floor_fraction * demand;
        assert!(comm < demand, "squeezed: {comm} < {demand}");
        assert!(comm >= floor - 1e-9, "floor holds: {comm} >= {floor}");
    }

    #[test]
    fn class_of_matches_stream_kind() {
        assert_eq!(
            class_of(&StreamSpec::CpuWrite {
                numa: NumaId::new(0)
            }),
            FlowClass::Cpu
        );
        assert_eq!(
            class_of(&StreamSpec::DmaRecv {
                numa: NumaId::new(0)
            }),
            FlowClass::Dma
        );
        // CXL pool streams are core-issued: CPU class.
        assert_eq!(
            class_of(&StreamSpec::CxlRead {
                numa: NumaId::new(0),
                pool: PoolId::new(0)
            }),
            FlowClass::Cpu
        );
    }

    #[test]
    fn cxl_platforms_grow_port_and_pool_resources() {
        let p = platforms::henri_cxl();
        let f = Fabric::new(&p);
        // henri's 6 legacy resources plus one port and one pool controller.
        assert_eq!(f.resource_count(), 8);
        assert_eq!(
            f.resource_index(ResourceKind::CxlPort(PoolId::new(0))),
            Some(6)
        );
        assert_eq!(
            f.resource_index(ResourceKind::CxlCtrl(PoolId::new(0))),
            Some(7)
        );
    }

    #[test]
    fn lone_cxl_stream_runs_at_the_pool_stream_bandwidth() {
        let p = platforms::henri_cxl();
        let f = Fabric::new(&p);
        let expected = p.topology.cxl_pools[0].stream_bandwidth;
        for s in [
            StreamSpec::CxlWrite {
                numa: NumaId::new(0),
                pool: PoolId::new(0),
            },
            StreamSpec::CxlRead {
                numa: NumaId::new(1),
                pool: PoolId::new(0),
            },
        ] {
            let r = f.solve(&[s]);
            assert_eq!(r.rates[0].to_bits(), expected.to_bits(), "{s:?}");
        }
    }

    #[test]
    fn many_cxl_streams_saturate_the_pool_controller() {
        let p = platforms::henri_cxl();
        let f = Fabric::new(&p);
        let pool = &p.topology.cxl_pools[0];
        let streams: Vec<StreamSpec> = (0..8)
            .map(|_| StreamSpec::CxlWrite {
                numa: NumaId::new(0),
                pool: pool.id,
            })
            .collect();
        let r = f.solve(&streams);
        // 8 × 6 = 48 GB/s demanded; the 24 GB/s pool controller is the
        // bottleneck (ports carry 32) and max-min splits it evenly.
        assert!((r.cxl_total(&streams) - pool.pool_bandwidth).abs() < 1e-9);
        for rate in &r.rates {
            assert!((rate - pool.pool_bandwidth / 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uncontended_messaging_beats_the_cxl_pool() {
        // The NIC wire moves ≈ 11.3 GB/s; a single CXL stream sustains
        // only 6 — with idle cores, classic messaging wins.
        let p = platforms::henri_cxl();
        let f = Fabric::new(&p);
        let dma = f.solve(&[StreamSpec::DmaRecv {
            numa: NumaId::new(0),
        }]);
        let cxl = f.solve(&[StreamSpec::CxlRead {
            numa: NumaId::new(0),
            pool: PoolId::new(0),
        }]);
        assert!(dma.rates[0] > cxl.rates[0] * 1.5, "{:?}", (dma, cxl));
    }

    #[test]
    fn contended_cxl_stream_beats_the_dma_floor() {
        // Under heavy compute the NIC is squeezed to its arbitration
        // floor, but a CXL stream competes in the CPU class and keeps
        // the max-min fair share — the message-free crossover.
        let p = platforms::henri_cxl();
        let f = Fabric::new(&p);
        let compute: Vec<StreamSpec> = (0..17)
            .map(|_| StreamSpec::CpuWrite {
                numa: NumaId::new(0),
            })
            .collect();
        let mut msg = compute.clone();
        msg.push(StreamSpec::DmaRecv {
            numa: NumaId::new(0),
        });
        let mut cxl = compute.clone();
        cxl.push(StreamSpec::CxlRead {
            numa: NumaId::new(0),
            pool: PoolId::new(0),
        });
        let r_msg = f.solve(&msg);
        let r_cxl = f.solve(&cxl);
        let dma = r_msg.dma_total(&msg);
        let via_pool = r_cxl.cxl_total(&cxl);
        assert!(
            via_pool > dma * 1.2,
            "cxl {via_pool} should clearly beat floored dma {dma}"
        );
    }

    /// Rebuild a fabric whose path table comes from the pre-graph
    /// hardwired builder (the construction `Fabric::from_arc` used
    /// before the resource graph existed), so the tests below can pin
    /// the graph-resolved routes and solves against it bitwise.
    fn legacy_fabric(platform: &Platform) -> Fabric {
        use std::collections::HashMap;
        let platform = Arc::new(platform.clone());
        let topo = &platform.topology;
        let mut kinds = Vec::new();
        for n in topo.numa_ids() {
            kinds.push(ResourceKind::MemCtrl(n));
        }
        for link in &topo.links {
            kinds.push(ResourceKind::LinkDir {
                from: link.a,
                to: link.b,
            });
            kinds.push(ResourceKind::LinkDir {
                from: link.b,
                to: link.a,
            });
        }
        kinds.push(ResourceKind::Pcie(topo.nic.socket));
        kinds.push(ResourceKind::NicWire);
        let index: HashMap<ResourceKind, usize> =
            kinds.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        // The graph must enumerate the legacy kinds in the legacy order
        // (its own bit-identity invariant) — assert it so the shared
        // capacity vector below is laid out identically.
        let graph = ResourceGraph::for_topology(topo);
        for (i, &kind) in kinds.iter().enumerate() {
            assert_eq!(graph.nodes()[i].kind, kind);
        }

        let n_numa = topo.numa_ids().count();
        let n_sockets = topo.sockets.len();
        let nic_socket = topo.nic.socket;
        let link_dir = |from: SocketId, to: SocketId| -> usize {
            *index
                .get(&ResourceKind::LinkDir { from, to })
                .expect("missing inter-socket link resource")
        };
        let mut ctrl = Vec::with_capacity(n_numa);
        let mut dma_recv = Vec::with_capacity(n_numa);
        let mut dma_send = Vec::with_capacity(n_numa);
        let mut cpu = vec![SmallPath::default(); n_sockets * n_numa];
        for numa in topo.numa_ids() {
            let ctrl_idx = index[&ResourceKind::MemCtrl(numa)];
            ctrl.push(ctrl_idx as u32);
            let target_socket = topo.socket_of_numa(numa);
            for s in 0..n_sockets {
                let src = SocketId::new(s as u16);
                let slot = &mut cpu[src.index() * n_numa + numa.index()];
                slot.push(ctrl_idx);
                if target_socket != src {
                    slot.push(link_dir(src, target_socket));
                }
            }
            let mut recv = SmallPath::default();
            recv.push(index[&ResourceKind::NicWire]);
            recv.push(index[&ResourceKind::Pcie(nic_socket)]);
            recv.push(ctrl_idx);
            if target_socket != nic_socket {
                recv.push(link_dir(nic_socket, target_socket));
            }
            dma_recv.push(recv);
            let mut send = SmallPath::default();
            send.push(index[&ResourceKind::NicWire]);
            send.push(index[&ResourceKind::Pcie(nic_socket)]);
            send.push(ctrl_idx);
            if target_socket != nic_socket {
                send.push(link_dir(target_socket, nic_socket));
            }
            dma_send.push(send);
        }
        Fabric {
            platform,
            graph,
            paths: PathTable {
                n_numa,
                ctrl,
                cpu,
                dma_recv,
                dma_send,
                cxl_write: Vec::new(),
                cxl_read: Vec::new(),
            },
        }
    }

    #[test]
    fn graph_routes_reproduce_the_legacy_path_tables_everywhere() {
        for p in platforms::extended() {
            let name = p.topology.name.clone();
            let f = Fabric::new(&p);
            let l = legacy_fabric(&p);
            assert_eq!(f.paths.ctrl, l.paths.ctrl, "{name}: ctrl");
            let n_numa = f.paths.n_numa;
            for s in 0..p.topology.sockets.len() {
                for m in 0..n_numa {
                    let (socket, numa) = (SocketId::new(s as u16), NumaId::new(m as u16));
                    assert_eq!(
                        f.paths.cpu(socket, numa),
                        l.paths.cpu(socket, numa),
                        "{name}: cpu {s}->{m}"
                    );
                }
            }
            for m in 0..n_numa {
                let numa = NumaId::new(m as u16);
                assert_eq!(
                    f.paths.dma_recv(numa),
                    l.paths.dma_recv(numa),
                    "{name}: recv {m}"
                );
                assert_eq!(
                    f.paths.dma_send(numa),
                    l.paths.dma_send(numa),
                    "{name}: send {m}"
                );
            }
        }
    }

    mod graph_bit_identity {
        use super::*;
        use proptest::prelude::*;

        /// A pseudo-random legacy stream multiset (no CXL — those did
        /// not exist before the graph) over the platform's NUMA nodes.
        fn streams_for(
            p: &Platform,
            cores: usize,
            remote_cores: usize,
            comp_pick: usize,
            comm_pick: usize,
            with_recv: bool,
            with_send: bool,
        ) -> Vec<StreamSpec> {
            let n_numa = p.topology.numa_ids().count();
            let n_sockets = p.topology.sockets.len();
            let comp = NumaId::new((comp_pick % n_numa) as u16);
            let comm = NumaId::new((comm_pick % n_numa) as u16);
            let mut v: Vec<StreamSpec> = (0..cores)
                .map(|_| StreamSpec::CpuWrite { numa: comp })
                .collect();
            v.extend((0..remote_cores).map(|_| StreamSpec::CpuWriteFrom {
                socket: SocketId::new((n_sockets - 1) as u16),
                numa: comp,
            }));
            if with_recv {
                v.push(StreamSpec::DmaRecv { numa: comm });
            }
            if with_send {
                v.push(StreamSpec::DmaSend { numa: comm });
            }
            v
        }

        proptest! {
            /// The graph-built fabric solves every legacy stream
            /// multiset bit-identically to the hardwired builder, on
            /// every built-in platform (CXL variants included — their
            /// extra nodes must not perturb DRAM/NIC solves).
            #[test]
            fn solves_are_bitwise_equal_to_the_legacy_builder(
                pick in 0usize..64,
                cores in 0usize..18,
                remote_cores in 0usize..6,
                comp_pick in 0usize..8,
                comm_pick in 0usize..8,
                recv_pick in 0usize..2,
                send_pick in 0usize..2,
                cpu_scale in 0.25f64..2.0,
            ) {
                let all = platforms::extended();
                let p = &all[pick % all.len()];
                let streams = streams_for(p, cores, remote_cores, comp_pick, comm_pick, recv_pick == 1, send_pick == 1);
                let f = Fabric::new(p);
                let l = legacy_fabric(p);
                let a = f.solve_with(&streams, cpu_scale);
                let b = l.solve_with(&streams, cpu_scale);
                prop_assert_eq!(a.rates.len(), b.rates.len());
                for (x, y) in a.rates.iter().zip(&b.rates) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "rate {} != {}", x, y);
                }
                for (x, y) in a.resource_load.iter().zip(&b.resource_load) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "load {} != {}", x, y);
                }
                for (x, y) in a.capacities.iter().zip(&b.capacities) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "cap {} != {}", x, y);
                }
            }
        }
    }
}
