//! Optional last-level-cache model.
//!
//! The paper deliberately bypasses the LLC with non-temporal stores
//! (§II-C) because modelling the cache is a separate problem; taking the
//! cache into account is listed as future work (§VI). This module provides
//! the minimal LLC model needed to *explore* that future work: a shared
//! capacity cache whose hit ratio follows the classic capacity rule —
//! everything hits while the aggregate working set fits, and the hit ratio
//! decays proportionally beyond.
//!
//! Cache hits never reach the memory controllers, so the effective memory
//! traffic of a cacheable kernel is scaled by the *miss* ratio.

use serde::{Deserialize, Serialize};

/// A shared last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcSpec {
    /// Usable capacity in bytes (e.g. 24.75 MiB for a Xeon Gold 6140).
    pub size_bytes: f64,
}

impl LlcSpec {
    /// A cache of `mib` mebibytes.
    pub fn mib(mib: f64) -> Self {
        LlcSpec {
            size_bytes: mib * 1024.0 * 1024.0,
        }
    }

    /// Hit ratio for `n_accessors` cores each streaming over
    /// `working_set_per_core` bytes. The cache is shared: while the
    /// aggregate working set fits, every access hits; beyond that the hit
    /// ratio is the fraction of the working set the cache can hold.
    pub fn hit_ratio(&self, n_accessors: usize, working_set_per_core: f64) -> f64 {
        let total = n_accessors as f64 * working_set_per_core;
        if total <= 0.0 {
            return 1.0;
        }
        (self.size_bytes / total).clamp(0.0, 1.0)
    }

    /// Miss ratio — the fraction of accesses that become memory traffic.
    pub fn miss_ratio(&self, n_accessors: usize, working_set_per_core: f64) -> f64 {
        1.0 - self.hit_ratio(n_accessors, working_set_per_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_working_set_always_hits() {
        let llc = LlcSpec::mib(32.0);
        assert_eq!(llc.hit_ratio(4, 1024.0 * 1024.0), 1.0);
        assert_eq!(llc.miss_ratio(4, 1024.0 * 1024.0), 0.0);
    }

    #[test]
    fn oversized_working_set_mostly_misses() {
        let llc = LlcSpec::mib(32.0);
        // 16 cores × 256 MiB ≫ 32 MiB → hit ratio 32/4096 < 1 %.
        let hr = llc.hit_ratio(16, 256.0 * 1024.0 * 1024.0);
        assert!(hr < 0.01, "{hr}");
    }

    #[test]
    fn hit_ratio_decreases_with_more_accessors() {
        let llc = LlcSpec::mib(32.0);
        let ws = 8.0 * 1024.0 * 1024.0;
        assert!(llc.hit_ratio(2, ws) >= llc.hit_ratio(8, ws));
    }

    #[test]
    fn zero_working_set_hits() {
        let llc = LlcSpec::mib(32.0);
        assert_eq!(llc.hit_ratio(0, 0.0), 1.0);
    }

    #[test]
    fn ratios_are_complementary() {
        let llc = LlcSpec::mib(24.75);
        for &(n, ws) in &[(1usize, 1e6), (8, 1e7), (32, 1e9)] {
            let sum = llc.hit_ratio(n, ws) + llc.miss_ratio(n, ws);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }
}
