//! Incremental delta-solving of the tiered max-min fixed point.
//!
//! The replay engine's worlds change their active stream multiset only at
//! *phase boundaries* — a compute job starting or draining, a transfer
//! entering or leaving its streaming phase. Between boundaries the
//! progressive-filling fixed point is **constant**, and application
//! schedules revisit the same machine states over and over (every
//! iteration of a halo exchange or allreduce cycles through the same few
//! multisets). [`DeltaSolver`] exploits both facts:
//!
//! 1. **Unchanged multiset → previous solution.** An [`ActiveSet`] keeps
//!    its last solution until a stream is added or removed; re-asking for
//!    rates between transitions costs one pointer clone.
//! 2. **Previously solved multiset → cached fixed point.** On a
//!    transition, the new multiset is looked up in a state cache shared
//!    across all sets using the solver (all nodes of a homogeneous
//!    world). Progressive filling is a pure function of the (multiset,
//!    cpu_scale, fabric) triple, so the cached rates are *exact* —
//!    bit-identical to a fresh solve, as the property tests assert.
//! 3. **Otherwise → full solve.** When a transition produces a multiset
//!    never seen before, the bottleneck (saturated-resource) set may have
//!    changed, and no numerically-safe shortcut from the previous
//!    solution exists: the tiered progressive filling re-runs from
//!    scratch. This is the *fallback rule* — correctness never depends on
//!    an incremental update being exact.
//!
//! Solves run over the **canonical (sorted) expansion** of the multiset.
//! Progressive filling is symmetric — equal specs always receive equal
//! rates — so one rate per *unique* spec fully describes the solution,
//! and any caller can recover its stream's rate by spec
//! ([`SolvedState::rate_of`]) regardless of the order it would have
//! passed streams to [`Fabric::solve`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use crate::fabric::{Fabric, FabricScratch, SolveResult, StreamSpec};

/// One solved machine state: the canonical stream multiset and the rate
/// granted to each unique spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedState {
    /// Unique stream specs, sorted (the canonical multiset support).
    specs: Box<[StreamSpec]>,
    /// Multiplicity of each unique spec.
    counts: Box<[u32]>,
    /// Rate of each unique spec in GB/s (every stream with that spec
    /// receives exactly this rate, by max-min symmetry).
    rates: Box<[f64]>,
}

impl SolvedState {
    /// Rate granted to every stream of the given spec, or `None` when the
    /// spec is not part of this state.
    pub fn rate_of(&self, spec: StreamSpec) -> Option<f64> {
        self.specs.binary_search(&spec).ok().map(|i| self.rates[i])
    }

    /// Number of streams in the state (with multiplicity).
    pub fn stream_count(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }
}

/// A mutable multiset of active streams with O(log u) add/remove (u =
/// unique specs) and a cached solution that survives until the next
/// transition.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// `(spec, multiplicity)`, sorted by spec; multiplicities are ≥ 1.
    counts: Vec<(StreamSpec, u32)>,
    /// Total streams (sum of multiplicities).
    total: u32,
    /// The solution for the current multiset; `None` after any
    /// add/remove until the next [`DeltaSolver::solve`].
    solution: Option<Rc<SolvedState>>,
    /// Number of add/remove transitions since creation.
    transitions: u64,
}

impl ActiveSet {
    /// An empty stream multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one stream; invalidates the cached solution.
    pub fn add(&mut self, spec: StreamSpec) {
        match self.counts.binary_search_by_key(&spec, |e| e.0) {
            Ok(i) => self.counts[i].1 += 1,
            Err(i) => self.counts.insert(i, (spec, 1)),
        }
        self.total += 1;
        self.transitions += 1;
        self.solution = None;
    }

    /// Remove one stream previously added; invalidates the cached
    /// solution.
    ///
    /// # Panics
    ///
    /// Panics if no stream of this spec is active — removals must pair
    /// with adds.
    pub fn remove(&mut self, spec: StreamSpec) {
        let i = self
            .counts
            .binary_search_by_key(&spec, |e| e.0)
            .unwrap_or_else(|_| panic!("removing inactive stream {spec:?}"));
        if self.counts[i].1 == 1 {
            self.counts.remove(i);
        } else {
            self.counts[i].1 -= 1;
        }
        self.total -= 1;
        self.transitions += 1;
        self.solution = None;
    }

    /// Number of active streams (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether no stream is active.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Add/remove transitions since creation.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The current solution, if the set has not changed since the last
    /// [`DeltaSolver::solve`].
    pub fn solution(&self) -> Option<&Rc<SolvedState>> {
        self.solution.as_ref()
    }
}

/// Counters of delta-solver work, the evidence behind BENCH_3: how many
/// rate requests were answered without running progressive filling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rate requests served ([`DeltaSolver::solve`] and
    /// [`DeltaSolver::alone_rate`] calls).
    pub requests: u64,
    /// Requests answered by the set's still-valid previous solution
    /// (no transition since the last solve).
    pub reuse_hits: u64,
    /// Requests after a transition answered by the shared state cache
    /// (the multiset was solved before, possibly for another node).
    pub state_hits: u64,
    /// Full progressive-filling runs — the fallback when a transition
    /// reaches a multiset never solved before.
    pub full_solves: u64,
}

impl DeltaStats {
    /// How many times fewer full solves ran than rate requests arrived
    /// (`inf` when everything was answered from caches).
    pub fn reduction(&self) -> f64 {
        if self.full_solves == 0 {
            f64::INFINITY
        } else {
            self.requests as f64 / self.full_solves as f64
        }
    }
}

/// The incremental solver: shared state cache, scratch buffers, and
/// counters. One instance serves any number of [`ActiveSet`]s over the
/// *same* fabric and CPU demand scale.
#[derive(Debug)]
pub struct DeltaSolver {
    /// Solved states keyed by the hash of (canonical multiset,
    /// scale bits); buckets resolve hash collisions exactly.
    states: HashMap<u64, Vec<Rc<SolvedState>>>,
    /// Memoized single-stream solves (the uncontended baseline's
    /// "alone" rates).
    alone: HashMap<StreamSpec, f64>,
    cpu_scale: f64,
    stats: DeltaStats,
    scratch: FabricScratch,
    result: SolveResult,
    /// Canonical expansion buffer for full solves.
    expanded: Vec<StreamSpec>,
}

impl Default for DeltaSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaSolver {
    /// A solver for non-temporal `memset` kernels (unit CPU demand
    /// scale).
    pub fn new() -> Self {
        Self::with_cpu_scale(1.0)
    }

    /// A solver whose CPU streams issue `cpu_scale` times the traffic of
    /// a non-temporal `memset`.
    pub fn with_cpu_scale(cpu_scale: f64) -> Self {
        assert!(cpu_scale > 0.0, "cpu_scale must be positive");
        DeltaSolver {
            states: HashMap::new(),
            alone: HashMap::new(),
            cpu_scale,
            stats: DeltaStats::default(),
            scratch: FabricScratch::default(),
            result: SolveResult::default(),
            expanded: Vec::new(),
        }
    }

    /// Cumulative counters since creation.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Number of distinct machine states solved so far.
    pub fn states_cached(&self) -> usize {
        self.states.values().map(Vec::len).sum()
    }

    /// Drop all cached states (counters are kept). Required when the
    /// solver is re-pointed at a different fabric.
    pub fn clear(&mut self) {
        self.states.clear();
        self.alone.clear();
    }

    /// The solution for the set's current multiset: the previous solution
    /// when nothing changed, a cached state after a transition to a known
    /// multiset, or a full progressive-filling run otherwise (the
    /// fallback rule). The returned rates are bit-identical to
    /// `fabric.solve(..)` on any expansion of the multiset.
    pub fn solve(&mut self, fabric: &Fabric, set: &mut ActiveSet) -> Rc<SolvedState> {
        self.stats.requests += 1;
        if let Some(sol) = &set.solution {
            self.stats.reuse_hits += 1;
            return Rc::clone(sol);
        }

        let scale_bits = self.cpu_scale.to_bits();
        let mut hasher = DefaultHasher::new();
        set.counts.hash(&mut hasher);
        scale_bits.hash(&mut hasher);
        let key = hasher.finish();

        if let Some(bucket) = self.states.get(&key) {
            for state in bucket {
                if state.specs.len() == set.counts.len()
                    && state
                        .specs
                        .iter()
                        .zip(state.counts.iter())
                        .zip(set.counts.iter())
                        .all(|((s, c), (es, ec))| s == es && c == ec)
                {
                    self.stats.state_hits += 1;
                    set.solution = Some(Rc::clone(state));
                    return Rc::clone(state);
                }
            }
        }

        // Fallback: the bottleneck set may have changed — run the tiered
        // progressive filling from scratch over the canonical expansion.
        self.stats.full_solves += 1;
        self.expanded.clear();
        for &(spec, count) in &set.counts {
            self.expanded
                .extend(std::iter::repeat_n(spec, count as usize));
        }
        fabric.solve_into(
            &self.expanded,
            self.cpu_scale,
            &mut self.scratch,
            &mut self.result,
        );
        let mut rates = Vec::with_capacity(set.counts.len());
        let mut pos = 0usize;
        for &(_, count) in &set.counts {
            rates.push(self.result.rates[pos]);
            pos += count as usize;
        }
        let state = Rc::new(SolvedState {
            specs: set.counts.iter().map(|e| e.0).collect(),
            counts: set.counts.iter().map(|e| e.1).collect(),
            rates: rates.into_boxed_slice(),
        });
        self.states.entry(key).or_default().push(Rc::clone(&state));
        set.solution = Some(Rc::clone(&state));
        state
    }

    /// The rate a single stream of `spec` gets with the fabric to itself
    /// — the uncontended baseline. Memoized; bit-identical to
    /// `fabric.solve(&[spec]).rates[0]`.
    pub fn alone_rate(&mut self, fabric: &Fabric, spec: StreamSpec) -> f64 {
        self.stats.requests += 1;
        if let Some(&rate) = self.alone.get(&spec) {
            self.stats.reuse_hits += 1;
            return rate;
        }
        self.stats.full_solves += 1;
        fabric.solve_into(
            std::slice::from_ref(&spec),
            self.cpu_scale,
            &mut self.scratch,
            &mut self.result,
        );
        let rate = self.result.rates[0];
        self.alone.insert(spec, rate);
        rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::{platforms, NumaId};
    use proptest::prelude::*;

    fn n(i: u16) -> NumaId {
        NumaId::new(i)
    }

    fn cpu(i: u16) -> StreamSpec {
        StreamSpec::CpuWrite { numa: n(i) }
    }

    fn dma(i: u16) -> StreamSpec {
        StreamSpec::DmaRecv { numa: n(i) }
    }

    #[test]
    fn reuse_between_transitions_costs_no_solve() {
        let fabric = Fabric::new(&platforms::henri());
        let mut solver = DeltaSolver::new();
        let mut set = ActiveSet::new();
        set.add(cpu(0));
        set.add(dma(0));
        let a = solver.solve(&fabric, &mut set);
        let b = solver.solve(&fabric, &mut set);
        assert!(Rc::ptr_eq(&a, &b));
        let stats = solver.stats();
        assert_eq!(stats.full_solves, 1);
        assert_eq!(stats.reuse_hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn revisited_states_hit_the_shared_cache() {
        let fabric = Fabric::new(&platforms::henri());
        let mut solver = DeltaSolver::new();
        let mut set = ActiveSet::new();
        // Cycle: {cpu} -> {cpu, dma} -> {cpu} -> {cpu, dma}.
        set.add(cpu(0));
        solver.solve(&fabric, &mut set);
        set.add(dma(0));
        solver.solve(&fabric, &mut set);
        set.remove(dma(0));
        solver.solve(&fabric, &mut set);
        set.add(dma(0));
        solver.solve(&fabric, &mut set);
        let stats = solver.stats();
        assert_eq!(stats.full_solves, 2, "{stats:?}");
        assert_eq!(stats.state_hits, 2, "{stats:?}");
        assert_eq!(solver.states_cached(), 2);
    }

    #[test]
    fn a_second_set_shares_the_state_cache() {
        // Two nodes of a homogeneous world reaching the same machine
        // state: the second solve is answered from the first's cache.
        let fabric = Fabric::new(&platforms::henri());
        let mut solver = DeltaSolver::new();
        let mut a = ActiveSet::new();
        let mut b = ActiveSet::new();
        for set in [&mut a, &mut b] {
            for _ in 0..4 {
                set.add(cpu(0));
            }
            set.add(dma(1));
        }
        let sa = solver.solve(&fabric, &mut a);
        let sb = solver.solve(&fabric, &mut b);
        assert!(Rc::ptr_eq(&sa, &sb));
        assert_eq!(solver.stats().full_solves, 1);
        assert_eq!(solver.stats().state_hits, 1);
    }

    #[test]
    fn rates_are_bit_identical_to_a_fresh_solve() {
        let fabric = Fabric::new(&platforms::henri_subnuma());
        let mut solver = DeltaSolver::new();
        let mut set = ActiveSet::new();
        let streams = [cpu(0), cpu(0), cpu(1), dma(2), dma(0), cpu(0)];
        for s in streams {
            set.add(s);
        }
        let state = solver.solve(&fabric, &mut set);
        // Reference: full solve over the canonical (sorted) expansion.
        let mut sorted = streams.to_vec();
        sorted.sort_unstable();
        let reference = fabric.solve(&sorted);
        for (spec, rate) in sorted.iter().zip(&reference.rates) {
            assert_eq!(
                state.rate_of(*spec).unwrap().to_bits(),
                rate.to_bits(),
                "{spec:?}"
            );
        }
        assert_eq!(state.stream_count(), streams.len());
    }

    #[test]
    fn alone_rates_match_single_stream_solves() {
        let fabric = Fabric::new(&platforms::henri());
        let mut solver = DeltaSolver::new();
        for spec in [cpu(0), cpu(1), dma(0), dma(1)] {
            let a = solver.alone_rate(&fabric, spec);
            let b = solver.alone_rate(&fabric, spec);
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(
                a.to_bits(),
                fabric.solve(&[spec]).rates[0].to_bits(),
                "{spec:?}"
            );
        }
        // 4 solves + 4 memoized repeats.
        assert_eq!(solver.stats().full_solves, 4);
        assert_eq!(solver.stats().reuse_hits, 4);
    }

    #[test]
    #[should_panic(expected = "removing inactive stream")]
    fn removing_an_absent_stream_panics() {
        let mut set = ActiveSet::new();
        set.add(cpu(0));
        set.remove(dma(0));
    }

    #[test]
    fn reduction_reports_the_request_to_solve_ratio() {
        let stats = DeltaStats {
            requests: 100,
            reuse_hits: 80,
            state_hits: 15,
            full_solves: 5,
        };
        assert_eq!(stats.reduction(), 20.0);
        assert_eq!(DeltaStats::default().reduction(), f64::INFINITY);
    }

    proptest! {
        /// The tentpole's correctness bar: across random add/remove
        /// sequences, every rate the delta solver reports is
        /// bit-identical to a from-scratch `Fabric::solve` of the same
        /// multiset.
        #[test]
        fn delta_solve_equals_full_solve_bit_for_bit(
            ops in proptest::collection::vec((0usize..6, 0usize..2), 1..40),
        ) {
            let fabric = Fabric::new(&platforms::henri_subnuma());
            let mut solver = DeltaSolver::new();
            let mut set = ActiveSet::new();
            let mut live: Vec<StreamSpec> = Vec::new();
            let universe = [cpu(0), cpu(1), cpu(3), dma(0), dma(2), dma(3)];
            for (pick, op) in ops {
                if op == 1 || live.is_empty() {
                    let spec = universe[pick];
                    set.add(spec);
                    live.push(spec);
                } else {
                    let spec = live.remove(pick % live.len());
                    set.remove(spec);
                }
                if live.is_empty() {
                    continue;
                }
                let state = solver.solve(&fabric, &mut set);
                let mut sorted = live.clone();
                sorted.sort_unstable();
                let reference = fabric.solve(&sorted);
                for (spec, rate) in sorted.iter().zip(&reference.rates) {
                    prop_assert_eq!(
                        state.rate_of(*spec).unwrap().to_bits(),
                        rate.to_bits()
                    );
                }
            }
        }
    }
}
