//! Tiered max-min fair bandwidth allocation.
//!
//! This is the arbitration core of the simulator. Given a set of resources
//! (memory controllers, inter-socket bus directions, PCIe links, the NIC
//! wire) with finite capacities, and a set of flows each following a path
//! through some of those resources, it computes the steady-state rate of
//! every flow under the arbitration rules the paper hypothesises (§II-A):
//!
//! 1. **DMA floors first** — a minimal bandwidth is reserved for DMA flows
//!    on every resource they cross, "to prevent starvations";
//! 2. **CPU tier** — CPU flows are filled max-min fairly within the
//!    remaining capacity ("the performance of computations decreases
//!    uniformly between computing cores"), each capped at its own demand;
//! 3. **DMA tier** — DMA flows then share whatever capacity is left, again
//!    max-min fairly, between their floor and their demand.
//!
//! Max-min fairness is computed by classic progressive filling: all
//! unfrozen flows grow at the same rate; a flow freezes when it reaches its
//! cap or when a resource on its path saturates.

use serde::{Deserialize, Serialize};

/// Index of a resource in the solver input.
pub type ResourceIdx = usize;

/// Class of a flow, deciding its arbitration tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// CPU-initiated traffic (loads/stores from computing cores). Higher
    /// priority: memory requests from cores win over PCIe requests.
    Cpu,
    /// PCIe-initiated traffic (NIC DMA). Lower priority but with a
    /// guaranteed floor.
    Dma,
}

/// One flow to allocate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReq {
    /// Resources this flow crosses (deduplicated; order irrelevant).
    pub path: Vec<ResourceIdx>,
    /// Maximum rate the flow can use (its demand), in GB/s.
    pub demand: f64,
    /// Guaranteed minimum rate, in GB/s. Must be `<= demand`. Only
    /// meaningful for [`FlowClass::Dma`]; CPU flows use 0.
    pub floor: f64,
    /// Arbitration class.
    pub class: FlowClass,
}

impl FlowReq {
    /// A CPU flow with the given path and demand.
    pub fn cpu(path: Vec<ResourceIdx>, demand: f64) -> Self {
        FlowReq {
            path,
            demand,
            floor: 0.0,
            class: FlowClass::Cpu,
        }
    }

    /// A DMA flow with the given path, demand and guaranteed floor.
    pub fn dma(path: Vec<ResourceIdx>, demand: f64, floor: f64) -> Self {
        FlowReq {
            path,
            demand,
            floor,
            class: FlowClass::Dma,
        }
    }
}

/// Outcome of an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Rate granted to each flow, same order as the input, in GB/s.
    pub rates: Vec<f64>,
    /// Capacity used on each resource, same order as the input, in GB/s.
    pub resource_load: Vec<f64>,
}

impl Allocation {
    /// Total rate granted to flows of a class.
    pub fn total_for(&self, flows: &[FlowReq], class: FlowClass) -> f64 {
        self.rates
            .iter()
            .zip(flows)
            .filter(|(_, f)| f.class == class)
            .map(|(r, _)| r)
            .sum()
    }
}

const EPS: f64 = 1e-9;

/// Progressive-filling max-min within `remaining` capacities.
///
/// `extras[i]` is the maximum additional rate flow `i` may receive;
/// the returned vector holds the granted additional rate. `remaining` is
/// updated in place.
fn max_min_fill(flows: &[FlowReq], mask: &[bool], extras: &[f64], remaining: &mut [f64]) -> Vec<f64> {
    let n = flows.len();
    let mut granted = vec![0.0; n];
    let mut active: Vec<usize> = (0..n)
        .filter(|&i| mask[i] && extras[i] > EPS && !flows[i].path.is_empty())
        .collect();
    // Flows with an empty path are only limited by their own demand.
    for i in 0..n {
        if mask[i] && flows[i].path.is_empty() {
            granted[i] = extras[i];
        }
    }

    while !active.is_empty() {
        // Count active flows per resource.
        let mut counts = vec![0usize; remaining.len()];
        for &i in &active {
            for &r in &flows[i].path {
                counts[r] += 1;
            }
        }
        // Largest uniform increment before a flow caps or a resource
        // saturates.
        let mut delta = f64::INFINITY;
        for &i in &active {
            delta = delta.min(extras[i] - granted[i]);
        }
        for (r, &c) in counts.iter().enumerate() {
            if c > 0 {
                delta = delta.min(remaining[r] / c as f64);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break;
        }
        // Apply the increment.
        for &i in &active {
            granted[i] += delta;
            for &r in &flows[i].path {
                remaining[r] -= delta;
            }
        }
        // Freeze flows that reached their cap or hit a saturated resource.
        let before = active.len();
        active.retain(|&i| {
            if extras[i] - granted[i] <= EPS {
                return false;
            }
            flows[i].path.iter().all(|&r| remaining[r] > EPS)
        });
        if active.len() == before && delta <= EPS {
            // No progress possible (numerical corner); stop.
            break;
        }
    }
    granted
}

/// Allocate rates to `flows` over resources of the given `capacities`.
///
/// See the module documentation for the tier semantics. Floors that are
/// collectively infeasible on a resource are scaled down proportionally so
/// the allocation never exceeds capacity.
pub fn allocate(capacities: &[f64], flows: &[FlowReq]) -> Allocation {
    let n = flows.len();
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut rates = vec![0.0; n];

    // --- Tier 0: reserve DMA floors (scaled down if infeasible). ---------
    let mut floor_scale = 1.0_f64;
    for (r, &cap) in capacities.iter().enumerate() {
        let floor_sum: f64 = flows
            .iter()
            .filter(|f| f.class == FlowClass::Dma && f.path.contains(&r))
            .map(|f| f.floor)
            .sum();
        if floor_sum > cap {
            floor_scale = floor_scale.min(cap / floor_sum);
        }
    }
    for (i, f) in flows.iter().enumerate() {
        if f.class == FlowClass::Dma {
            let fl = (f.floor * floor_scale).min(f.demand);
            rates[i] = fl;
            for &r in &f.path {
                remaining[r] = (remaining[r] - fl).max(0.0);
            }
        }
    }

    // --- Tier 1: CPU flows, max-min within what floors left. -------------
    let cpu_mask: Vec<bool> = flows.iter().map(|f| f.class == FlowClass::Cpu).collect();
    let cpu_extras: Vec<f64> = flows
        .iter()
        .map(|f| if f.class == FlowClass::Cpu { f.demand } else { 0.0 })
        .collect();
    let granted = max_min_fill(flows, &cpu_mask, &cpu_extras, &mut remaining);
    for i in 0..n {
        rates[i] += granted[i];
    }

    // --- Tier 2: DMA flows, floor..demand, max-min in the leftovers. -----
    let dma_mask: Vec<bool> = flows.iter().map(|f| f.class == FlowClass::Dma).collect();
    let dma_extras: Vec<f64> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f.class == FlowClass::Dma {
                (f.demand - rates[i]).max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    let granted = max_min_fill(flows, &dma_mask, &dma_extras, &mut remaining);
    for i in 0..n {
        rates[i] += granted[i];
    }

    let mut resource_load = vec![0.0; capacities.len()];
    for (i, f) in flows.iter().enumerate() {
        for &r in &f.path {
            resource_load[r] += rates[i];
        }
    }
    Allocation {
        rates,
        resource_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn single_cpu_flow_gets_its_demand() {
        let alloc = allocate(&[100.0], &[FlowReq::cpu(vec![0], 5.0)]);
        assert_close(alloc.rates[0], 5.0);
        assert_close(alloc.resource_load[0], 5.0);
    }

    #[test]
    fn cpu_flows_share_saturated_resource_equally() {
        let flows: Vec<FlowReq> = (0..4).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
        let alloc = allocate(&[10.0], &flows);
        for r in &alloc.rates {
            assert_close(*r, 2.5);
        }
    }

    #[test]
    fn dma_floor_is_honoured_under_cpu_pressure() {
        // 10 CPU flows of 5 want 50 on a 20-capacity controller; the DMA
        // flow keeps its floor of 3.
        let mut flows: Vec<FlowReq> = (0..10).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
        flows.push(FlowReq::dma(vec![0], 11.0, 3.0));
        let alloc = allocate(&[20.0], &flows);
        assert_close(alloc.rates[10], 3.0);
        let cpu_total: f64 = alloc.rates[..10].iter().sum();
        assert_close(cpu_total, 17.0);
    }

    #[test]
    fn dma_gets_leftover_up_to_demand_when_cpu_is_light() {
        let flows = vec![FlowReq::cpu(vec![0], 5.0), FlowReq::dma(vec![0], 11.0, 3.0)];
        let alloc = allocate(&[100.0], &flows);
        assert_close(alloc.rates[0], 5.0);
        assert_close(alloc.rates[1], 11.0);
    }

    #[test]
    fn dma_squeezed_gradually_as_cpu_grows() {
        // Capacity 20; CPU requests grow; DMA demand 11, floor 3.
        // leftover(n) = 20 - 5n; dma = clamp(leftover, 3, 11).
        for (n, expected) in [(1, 11.0), (2, 10.0), (3, 5.0), (4, 3.0)] {
            let mut flows: Vec<FlowReq> = (0..n).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
            flows.push(FlowReq::dma(vec![0], 11.0, 3.0));
            let alloc = allocate(&[20.0], &flows);
            assert_close(alloc.rates[n], expected);
        }
    }

    #[test]
    fn no_resource_is_over_capacity() {
        let flows = vec![
            FlowReq::cpu(vec![0, 1], 30.0),
            FlowReq::cpu(vec![0], 30.0),
            FlowReq::dma(vec![1, 2], 30.0, 4.0),
        ];
        let caps = [25.0, 18.0, 12.0];
        let alloc = allocate(&caps, &flows);
        for (load, cap) in alloc.resource_load.iter().zip(&caps) {
            assert!(*load <= cap + 1e-6, "{load} > {cap}");
        }
    }

    #[test]
    fn multi_resource_path_limited_by_tightest() {
        // A flow crossing both a wide and a narrow resource is limited by
        // the narrow one.
        let alloc = allocate(&[100.0, 8.0], &[FlowReq::cpu(vec![0, 1], 50.0)]);
        assert_close(alloc.rates[0], 8.0);
    }

    #[test]
    fn infeasible_floors_are_scaled() {
        let flows = vec![
            FlowReq::dma(vec![0], 10.0, 8.0),
            FlowReq::dma(vec![0], 10.0, 8.0),
        ];
        let alloc = allocate(&[8.0], &flows);
        assert_close(alloc.rates[0], 4.0);
        assert_close(alloc.rates[1], 4.0);
        assert!(alloc.resource_load[0] <= 8.0 + 1e-6);
    }

    #[test]
    fn cpu_priority_over_dma_beyond_floor() {
        // Capacity 10, CPU demands 8, DMA demand 8 floor 1: CPU gets its
        // full 8, DMA gets 2 (floor 1 + leftover 1).
        let flows = vec![FlowReq::cpu(vec![0], 8.0), FlowReq::dma(vec![0], 8.0, 1.0)];
        let alloc = allocate(&[10.0], &flows);
        assert_close(alloc.rates[0], 8.0);
        assert_close(alloc.rates[1], 2.0);
    }

    #[test]
    fn empty_path_flow_gets_demand() {
        let alloc = allocate(&[], &[FlowReq::cpu(vec![], 7.0)]);
        assert_close(alloc.rates[0], 7.0);
    }

    #[test]
    fn zero_demand_flow_gets_zero() {
        let alloc = allocate(&[10.0], &[FlowReq::cpu(vec![0], 0.0)]);
        assert_close(alloc.rates[0], 0.0);
    }

    #[test]
    fn two_dma_flows_share_leftover_fairly() {
        let flows = vec![
            FlowReq::cpu(vec![0], 4.0),
            FlowReq::dma(vec![0], 10.0, 1.0),
            FlowReq::dma(vec![0], 10.0, 1.0),
        ];
        // Capacity 10: CPU 4, floors 2, leftover 4 split 2/2 → DMA 3 each.
        let alloc = allocate(&[10.0], &flows);
        assert_close(alloc.rates[1], 3.0);
        assert_close(alloc.rates[2], 3.0);
    }

    #[test]
    fn dma_floor_capped_by_demand() {
        // floor > demand must not over-allocate.
        let alloc = allocate(&[10.0], &[FlowReq::dma(vec![0], 2.0, 5.0)]);
        assert_close(alloc.rates[0], 2.0);
    }
}
