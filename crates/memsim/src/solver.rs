//! Tiered max-min fair bandwidth allocation.
//!
//! This is the arbitration core of the simulator. Given a set of resources
//! (memory controllers, inter-socket bus directions, PCIe links, the NIC
//! wire) with finite capacities, and a set of flows each following a path
//! through some of those resources, it computes the steady-state rate of
//! every flow under the arbitration rules the paper hypothesises (§II-A):
//!
//! 1. **DMA floors first** — a minimal bandwidth is reserved for DMA flows
//!    on every resource they cross, "to prevent starvations";
//! 2. **CPU tier** — CPU flows are filled max-min fairly within the
//!    remaining capacity ("the performance of computations decreases
//!    uniformly between computing cores"), each capped at its own demand;
//! 3. **DMA tier** — DMA flows then share whatever capacity is left, again
//!    max-min fairly, between their floor and their demand.
//!
//! Max-min fairness is computed by classic progressive filling: all
//! unfrozen flows grow at the same rate; a flow freezes when it reaches its
//! cap or when a resource on its path saturates.

use serde::{Deserialize, Serialize};

/// Index of a resource in the solver input.
pub type ResourceIdx = usize;

/// Class of a flow, deciding its arbitration tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// CPU-initiated traffic (loads/stores from computing cores). Higher
    /// priority: memory requests from cores win over PCIe requests.
    Cpu,
    /// PCIe-initiated traffic (NIC DMA). Lower priority but with a
    /// guaranteed floor.
    Dma,
}

/// One flow to allocate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReq {
    /// Resources this flow crosses (deduplicated; order irrelevant).
    pub path: Vec<ResourceIdx>,
    /// Maximum rate the flow can use (its demand), in GB/s.
    pub demand: f64,
    /// Guaranteed minimum rate, in GB/s. Must be `<= demand`. Only
    /// meaningful for [`FlowClass::Dma`]; CPU flows use 0.
    pub floor: f64,
    /// Arbitration class.
    pub class: FlowClass,
}

impl FlowReq {
    /// A CPU flow with the given path and demand.
    pub fn cpu(path: Vec<ResourceIdx>, demand: f64) -> Self {
        FlowReq {
            path,
            demand,
            floor: 0.0,
            class: FlowClass::Cpu,
        }
    }

    /// A DMA flow with the given path, demand and guaranteed floor.
    pub fn dma(path: Vec<ResourceIdx>, demand: f64, floor: f64) -> Self {
        FlowReq {
            path,
            demand,
            floor,
            class: FlowClass::Dma,
        }
    }
}

/// Outcome of an allocation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Rate granted to each flow, same order as the input, in GB/s.
    pub rates: Vec<f64>,
    /// Capacity used on each resource, same order as the input, in GB/s.
    pub resource_load: Vec<f64>,
}

impl Allocation {
    /// Total rate granted to flows of a class.
    pub fn total_for(&self, flows: &[FlowReq], class: FlowClass) -> f64 {
        self.rates
            .iter()
            .zip(flows)
            .filter(|(_, f)| f.class == class)
            .map(|(r, _)| r)
            .sum()
    }
}

const EPS: f64 = 1e-9;

/// Progressive-filling max-min within `remaining` capacities.
///
/// `extras[i]` is the maximum additional rate flow `i` may receive;
/// the returned vector holds the granted additional rate. `remaining` is
/// updated in place.
fn max_min_fill(
    flows: &[FlowReq],
    mask: &[bool],
    extras: &[f64],
    remaining: &mut [f64],
) -> Vec<f64> {
    let n = flows.len();
    let mut granted = vec![0.0; n];
    let mut active: Vec<usize> = (0..n)
        .filter(|&i| mask[i] && extras[i] > EPS && !flows[i].path.is_empty())
        .collect();
    // Flows with an empty path are only limited by their own demand.
    for i in 0..n {
        if mask[i] && flows[i].path.is_empty() {
            granted[i] = extras[i];
        }
    }

    while !active.is_empty() {
        // Count active flows per resource.
        let mut counts = vec![0usize; remaining.len()];
        for &i in &active {
            for &r in &flows[i].path {
                counts[r] += 1;
            }
        }
        // Largest uniform increment before a flow caps or a resource
        // saturates.
        let mut delta = f64::INFINITY;
        for &i in &active {
            delta = delta.min(extras[i] - granted[i]);
        }
        for (r, &c) in counts.iter().enumerate() {
            if c > 0 {
                delta = delta.min(remaining[r] / c as f64);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break;
        }
        // Apply the increment.
        for &i in &active {
            granted[i] += delta;
            for &r in &flows[i].path {
                remaining[r] -= delta;
            }
        }
        // Freeze flows that reached their cap or hit a saturated resource.
        let before = active.len();
        active.retain(|&i| {
            if extras[i] - granted[i] <= EPS {
                return false;
            }
            flows[i].path.iter().all(|&r| remaining[r] > EPS)
        });
        if active.len() == before && delta <= EPS {
            // No progress possible (numerical corner); stop.
            break;
        }
    }
    granted
}

/// Allocate rates to `flows` over resources of the given `capacities`.
///
/// See the module documentation for the tier semantics. Floors that are
/// collectively infeasible on a resource are scaled down proportionally so
/// the allocation never exceeds capacity.
pub fn allocate(capacities: &[f64], flows: &[FlowReq]) -> Allocation {
    let n = flows.len();
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut rates = vec![0.0; n];

    // --- Tier 0: reserve DMA floors (scaled down if infeasible). ---------
    let mut floor_scale = 1.0_f64;
    for (r, &cap) in capacities.iter().enumerate() {
        let floor_sum: f64 = flows
            .iter()
            .filter(|f| f.class == FlowClass::Dma && f.path.contains(&r))
            .map(|f| f.floor)
            .sum();
        if floor_sum > cap {
            floor_scale = floor_scale.min(cap / floor_sum);
        }
    }
    for (i, f) in flows.iter().enumerate() {
        if f.class == FlowClass::Dma {
            let fl = (f.floor * floor_scale).min(f.demand);
            rates[i] = fl;
            for &r in &f.path {
                remaining[r] = (remaining[r] - fl).max(0.0);
            }
        }
    }

    // --- Tier 1: CPU flows, max-min within what floors left. -------------
    let cpu_mask: Vec<bool> = flows.iter().map(|f| f.class == FlowClass::Cpu).collect();
    let cpu_extras: Vec<f64> = flows
        .iter()
        .map(|f| {
            if f.class == FlowClass::Cpu {
                f.demand
            } else {
                0.0
            }
        })
        .collect();
    let granted = max_min_fill(flows, &cpu_mask, &cpu_extras, &mut remaining);
    for i in 0..n {
        rates[i] += granted[i];
    }

    // --- Tier 2: DMA flows, floor..demand, max-min in the leftovers. -----
    let dma_mask: Vec<bool> = flows.iter().map(|f| f.class == FlowClass::Dma).collect();
    let dma_extras: Vec<f64> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f.class == FlowClass::Dma {
                (f.demand - rates[i]).max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    let granted = max_min_fill(flows, &dma_mask, &dma_extras, &mut remaining);
    for i in 0..n {
        rates[i] += granted[i];
    }

    let mut resource_load = vec![0.0; capacities.len()];
    for (i, f) in flows.iter().enumerate() {
        for &r in &f.path {
            resource_load[r] += rates[i];
        }
    }
    Allocation {
        rates,
        resource_load,
    }
}

// ------------------------------------------------------------------------
// Zero-allocation solve path
//
// The discrete-event engine calls the solver at every event — thousands of
// times per run, once per (placement × core count × phase) point of every
// sweep. The `allocate` entry point above allocates roughly a dozen vectors
// per call; the arena/scratch path below performs the *identical*
// arithmetic (same operations in the same order, hence bit-identical
// results — property-tested in `tests/engine_props.rs`) with zero heap
// allocation after warm-up.

/// A set of flows in structure-of-arrays form with all paths flattened
/// into one offsets + indices arena.
///
/// Building a `FlowSet` reuses its buffers across [`FlowSet::clear`]
/// cycles, so a warm set never allocates. Flow order is the push order and
/// is significant: the solver's progressive filling visits flows in index
/// order, exactly like [`allocate`] visits its `&[FlowReq]` slice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowSet {
    /// `path_off[i]..path_off[i+1]` indexes `path_idx` for flow `i`.
    path_off: Vec<u32>,
    /// Flattened resource indices of all paths.
    path_idx: Vec<u32>,
    demand: Vec<f64>,
    floor: Vec<f64>,
    class: Vec<FlowClass>,
}

impl FlowSet {
    /// An empty flow set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// Whether the set holds no flows.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Remove all flows, keeping the buffers.
    pub fn clear(&mut self) {
        self.path_off.clear();
        self.path_idx.clear();
        self.demand.clear();
        self.floor.clear();
        self.class.clear();
    }

    /// Append one flow crossing the resources in `path` (same semantics as
    /// [`FlowReq::path`]: deduplicated, order preserved).
    pub fn push(&mut self, class: FlowClass, demand: f64, floor: f64, path: &[u32]) {
        if self.path_off.is_empty() {
            self.path_off.push(0);
        }
        self.path_idx.extend_from_slice(path);
        self.path_off.push(self.path_idx.len() as u32);
        self.demand.push(demand);
        self.floor.push(floor);
        self.class.push(class);
    }

    /// Append a [`FlowReq`] (reference-form flow).
    pub fn push_req(&mut self, req: &FlowReq) {
        if self.path_off.is_empty() {
            self.path_off.push(0);
        }
        self.path_idx.extend(req.path.iter().map(|&r| r as u32));
        self.path_off.push(self.path_idx.len() as u32);
        self.demand.push(req.demand);
        self.floor.push(req.floor);
        self.class.push(req.class);
    }

    /// Build a set from reference-form flows.
    pub fn from_reqs(reqs: &[FlowReq]) -> Self {
        let mut set = FlowSet::new();
        for req in reqs {
            set.push_req(req);
        }
        set
    }

    /// Path of flow `i` as resource indices.
    #[inline]
    fn path(&self, i: usize) -> &[u32] {
        &self.path_idx[self.path_off[i] as usize..self.path_off[i + 1] as usize]
    }

    /// Arbitration class of flow `i`.
    pub fn class_of(&self, i: usize) -> FlowClass {
        self.class[i]
    }

    /// Demand of flow `i`.
    pub fn demand_of(&self, i: usize) -> f64 {
        self.demand[i]
    }
}

/// Reusable buffers for [`allocate_into`]. One scratch per thread (or per
/// engine) amortises every solver allocation away.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    remaining: Vec<f64>,
    extras: Vec<f64>,
    granted: Vec<f64>,
    active: Vec<u32>,
    counts: Vec<u32>,
}

/// Progressive filling over the arena representation. Identical arithmetic
/// to [`max_min_fill`], writing granted rates into `scratch.granted`.
fn max_min_fill_pooled(flows: &FlowSet, tier: FlowClass, scratch: &mut SolverScratch) {
    let n = flows.len();
    scratch.granted.clear();
    scratch.granted.resize(n, 0.0);
    scratch.active.clear();
    for i in 0..n {
        if flows.class[i] == tier {
            if flows.path_off[i + 1] == flows.path_off[i] {
                // Flows with an empty path are only limited by their own
                // demand.
                scratch.granted[i] = scratch.extras[i];
            } else if scratch.extras[i] > EPS {
                scratch.active.push(i as u32);
            }
        }
    }

    while !scratch.active.is_empty() {
        // Count active flows per resource.
        scratch.counts.clear();
        scratch.counts.resize(scratch.remaining.len(), 0);
        for &i in &scratch.active {
            for &r in flows.path(i as usize) {
                scratch.counts[r as usize] += 1;
            }
        }
        // Largest uniform increment before a flow caps or a resource
        // saturates.
        let mut delta = f64::INFINITY;
        for &i in &scratch.active {
            delta = delta.min(scratch.extras[i as usize] - scratch.granted[i as usize]);
        }
        for (r, &c) in scratch.counts.iter().enumerate() {
            if c > 0 {
                delta = delta.min(scratch.remaining[r] / c as f64);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break;
        }
        // Apply the increment.
        for &i in &scratch.active {
            scratch.granted[i as usize] += delta;
            for &r in flows.path(i as usize) {
                scratch.remaining[r as usize] -= delta;
            }
        }
        // Freeze flows that reached their cap or hit a saturated resource.
        let before = scratch.active.len();
        let (active, granted, extras, remaining) = (
            &mut scratch.active,
            &scratch.granted,
            &scratch.extras,
            &scratch.remaining,
        );
        active.retain(|&i| {
            if extras[i as usize] - granted[i as usize] <= EPS {
                return false;
            }
            flows
                .path(i as usize)
                .iter()
                .all(|&r| remaining[r as usize] > EPS)
        });
        if active.len() == before && delta <= EPS {
            // No progress possible (numerical corner); stop.
            break;
        }
    }
}

/// Allocate rates to the flows of `flows`, writing into `out` — the
/// zero-allocation twin of [`allocate`].
///
/// `out.rates` and `out.resource_load` are cleared and refilled in place;
/// `scratch` buffers are reused across calls. The arithmetic (operation
/// order included) matches [`allocate`] exactly, so the results are
/// bit-identical — relied upon by the engine's solve memoization and
/// asserted by property tests.
pub fn allocate_into(
    capacities: &[f64],
    flows: &FlowSet,
    scratch: &mut SolverScratch,
    out: &mut Allocation,
) {
    let n = flows.len();
    scratch.remaining.clear();
    scratch.remaining.extend_from_slice(capacities);
    out.rates.clear();
    out.rates.resize(n, 0.0);

    // --- Tier 0: reserve DMA floors (scaled down if infeasible). ---------
    let mut floor_scale = 1.0_f64;
    for (r, &cap) in capacities.iter().enumerate() {
        let mut floor_sum = 0.0;
        for i in 0..n {
            if flows.class[i] == FlowClass::Dma && flows.path(i).contains(&(r as u32)) {
                floor_sum += flows.floor[i];
            }
        }
        if floor_sum > cap {
            floor_scale = floor_scale.min(cap / floor_sum);
        }
    }
    for i in 0..n {
        if flows.class[i] == FlowClass::Dma {
            let fl = (flows.floor[i] * floor_scale).min(flows.demand[i]);
            out.rates[i] = fl;
            for &r in flows.path(i) {
                scratch.remaining[r as usize] = (scratch.remaining[r as usize] - fl).max(0.0);
            }
        }
    }

    // --- Tier 1: CPU flows, max-min within what floors left. -------------
    scratch.extras.clear();
    for i in 0..n {
        scratch.extras.push(if flows.class[i] == FlowClass::Cpu {
            flows.demand[i]
        } else {
            0.0
        });
    }
    max_min_fill_pooled(flows, FlowClass::Cpu, scratch);
    for i in 0..n {
        out.rates[i] += scratch.granted[i];
    }

    // --- Tier 2: DMA flows, floor..demand, max-min in the leftovers. -----
    scratch.extras.clear();
    for i in 0..n {
        scratch.extras.push(if flows.class[i] == FlowClass::Dma {
            (flows.demand[i] - out.rates[i]).max(0.0)
        } else {
            0.0
        });
    }
    max_min_fill_pooled(flows, FlowClass::Dma, scratch);
    for i in 0..n {
        out.rates[i] += scratch.granted[i];
    }

    out.resource_load.clear();
    out.resource_load.resize(capacities.len(), 0.0);
    for i in 0..n {
        for &r in flows.path(i) {
            out.resource_load[r as usize] += out.rates[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn single_cpu_flow_gets_its_demand() {
        let alloc = allocate(&[100.0], &[FlowReq::cpu(vec![0], 5.0)]);
        assert_close(alloc.rates[0], 5.0);
        assert_close(alloc.resource_load[0], 5.0);
    }

    #[test]
    fn cpu_flows_share_saturated_resource_equally() {
        let flows: Vec<FlowReq> = (0..4).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
        let alloc = allocate(&[10.0], &flows);
        for r in &alloc.rates {
            assert_close(*r, 2.5);
        }
    }

    #[test]
    fn dma_floor_is_honoured_under_cpu_pressure() {
        // 10 CPU flows of 5 want 50 on a 20-capacity controller; the DMA
        // flow keeps its floor of 3.
        let mut flows: Vec<FlowReq> = (0..10).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
        flows.push(FlowReq::dma(vec![0], 11.0, 3.0));
        let alloc = allocate(&[20.0], &flows);
        assert_close(alloc.rates[10], 3.0);
        let cpu_total: f64 = alloc.rates[..10].iter().sum();
        assert_close(cpu_total, 17.0);
    }

    #[test]
    fn dma_gets_leftover_up_to_demand_when_cpu_is_light() {
        let flows = vec![FlowReq::cpu(vec![0], 5.0), FlowReq::dma(vec![0], 11.0, 3.0)];
        let alloc = allocate(&[100.0], &flows);
        assert_close(alloc.rates[0], 5.0);
        assert_close(alloc.rates[1], 11.0);
    }

    #[test]
    fn dma_squeezed_gradually_as_cpu_grows() {
        // Capacity 20; CPU requests grow; DMA demand 11, floor 3.
        // leftover(n) = 20 - 5n; dma = clamp(leftover, 3, 11).
        for (n, expected) in [(1, 11.0), (2, 10.0), (3, 5.0), (4, 3.0)] {
            let mut flows: Vec<FlowReq> = (0..n).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
            flows.push(FlowReq::dma(vec![0], 11.0, 3.0));
            let alloc = allocate(&[20.0], &flows);
            assert_close(alloc.rates[n], expected);
        }
    }

    #[test]
    fn no_resource_is_over_capacity() {
        let flows = vec![
            FlowReq::cpu(vec![0, 1], 30.0),
            FlowReq::cpu(vec![0], 30.0),
            FlowReq::dma(vec![1, 2], 30.0, 4.0),
        ];
        let caps = [25.0, 18.0, 12.0];
        let alloc = allocate(&caps, &flows);
        for (load, cap) in alloc.resource_load.iter().zip(&caps) {
            assert!(*load <= cap + 1e-6, "{load} > {cap}");
        }
    }

    #[test]
    fn multi_resource_path_limited_by_tightest() {
        // A flow crossing both a wide and a narrow resource is limited by
        // the narrow one.
        let alloc = allocate(&[100.0, 8.0], &[FlowReq::cpu(vec![0, 1], 50.0)]);
        assert_close(alloc.rates[0], 8.0);
    }

    #[test]
    fn infeasible_floors_are_scaled() {
        let flows = vec![
            FlowReq::dma(vec![0], 10.0, 8.0),
            FlowReq::dma(vec![0], 10.0, 8.0),
        ];
        let alloc = allocate(&[8.0], &flows);
        assert_close(alloc.rates[0], 4.0);
        assert_close(alloc.rates[1], 4.0);
        assert!(alloc.resource_load[0] <= 8.0 + 1e-6);
    }

    #[test]
    fn cpu_priority_over_dma_beyond_floor() {
        // Capacity 10, CPU demands 8, DMA demand 8 floor 1: CPU gets its
        // full 8, DMA gets 2 (floor 1 + leftover 1).
        let flows = vec![FlowReq::cpu(vec![0], 8.0), FlowReq::dma(vec![0], 8.0, 1.0)];
        let alloc = allocate(&[10.0], &flows);
        assert_close(alloc.rates[0], 8.0);
        assert_close(alloc.rates[1], 2.0);
    }

    #[test]
    fn empty_path_flow_gets_demand() {
        let alloc = allocate(&[], &[FlowReq::cpu(vec![], 7.0)]);
        assert_close(alloc.rates[0], 7.0);
    }

    #[test]
    fn zero_demand_flow_gets_zero() {
        let alloc = allocate(&[10.0], &[FlowReq::cpu(vec![0], 0.0)]);
        assert_close(alloc.rates[0], 0.0);
    }

    #[test]
    fn two_dma_flows_share_leftover_fairly() {
        let flows = vec![
            FlowReq::cpu(vec![0], 4.0),
            FlowReq::dma(vec![0], 10.0, 1.0),
            FlowReq::dma(vec![0], 10.0, 1.0),
        ];
        // Capacity 10: CPU 4, floors 2, leftover 4 split 2/2 → DMA 3 each.
        let alloc = allocate(&[10.0], &flows);
        assert_close(alloc.rates[1], 3.0);
        assert_close(alloc.rates[2], 3.0);
    }

    #[test]
    fn dma_floor_capped_by_demand() {
        // floor > demand must not over-allocate.
        let alloc = allocate(&[10.0], &[FlowReq::dma(vec![0], 2.0, 5.0)]);
        assert_close(alloc.rates[0], 2.0);
    }

    /// Run both solver paths and require bit-identical outputs.
    fn assert_paths_agree(caps: &[f64], reqs: &[FlowReq]) {
        let reference = allocate(caps, reqs);
        let set = FlowSet::from_reqs(reqs);
        let mut scratch = SolverScratch::default();
        let mut pooled = Allocation::default();
        allocate_into(caps, &set, &mut scratch, &mut pooled);
        assert_eq!(reference.rates.len(), pooled.rates.len());
        for (a, b) in reference.rates.iter().zip(&pooled.rates) {
            assert_eq!(a.to_bits(), b.to_bits(), "rates diverge: {a} vs {b}");
        }
        for (a, b) in reference.resource_load.iter().zip(&pooled.resource_load) {
            assert_eq!(a.to_bits(), b.to_bits(), "loads diverge: {a} vs {b}");
        }
        // A second solve on the warm scratch must agree too (buffer reuse).
        allocate_into(caps, &set, &mut scratch, &mut pooled);
        for (a, b) in reference.rates.iter().zip(&pooled.rates) {
            assert_eq!(a.to_bits(), b.to_bits(), "warm rates diverge");
        }
    }

    #[test]
    fn pooled_path_matches_reference_on_basic_mixes() {
        assert_paths_agree(&[100.0], &[FlowReq::cpu(vec![0], 5.0)]);
        let mut flows: Vec<FlowReq> = (0..10).map(|_| FlowReq::cpu(vec![0], 5.0)).collect();
        flows.push(FlowReq::dma(vec![0], 11.0, 3.0));
        assert_paths_agree(&[20.0], &flows);
        assert_paths_agree(
            &[25.0, 18.0, 12.0],
            &[
                FlowReq::cpu(vec![0, 1], 30.0),
                FlowReq::cpu(vec![0], 30.0),
                FlowReq::dma(vec![1, 2], 30.0, 4.0),
            ],
        );
        assert_paths_agree(
            &[8.0],
            &[
                FlowReq::dma(vec![0], 10.0, 8.0),
                FlowReq::dma(vec![0], 10.0, 8.0),
            ],
        );
        assert_paths_agree(&[], &[FlowReq::cpu(vec![], 7.0)]);
        assert_paths_agree(&[10.0], &[FlowReq::cpu(vec![0], 0.0)]);
    }

    #[test]
    fn flow_set_push_matches_from_reqs() {
        let reqs = vec![
            FlowReq::cpu(vec![0, 2], 5.0),
            FlowReq::dma(vec![1], 11.0, 3.0),
        ];
        let mut pushed = FlowSet::new();
        pushed.push(FlowClass::Cpu, 5.0, 0.0, &[0, 2]);
        pushed.push(FlowClass::Dma, 11.0, 3.0, &[1]);
        assert_eq!(pushed, FlowSet::from_reqs(&reqs));
        assert_eq!(pushed.len(), 2);
        assert_eq!(pushed.class_of(1), FlowClass::Dma);
        assert_eq!(pushed.demand_of(0), 5.0);
    }

    #[test]
    fn flow_set_clear_keeps_working() {
        let mut set = FlowSet::new();
        set.push(FlowClass::Cpu, 5.0, 0.0, &[0]);
        set.clear();
        assert!(set.is_empty());
        set.push(FlowClass::Cpu, 3.0, 0.0, &[0]);
        let mut scratch = SolverScratch::default();
        let mut out = Allocation::default();
        allocate_into(&[10.0], &set, &mut scratch, &mut out);
        assert_close(out.rates[0], 3.0);
    }
}
