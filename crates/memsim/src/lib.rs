//! # mc-memsim — flow-level simulator of NUMA memory systems
//!
//! The hardware substitute for the paper's six physical testbed machines.
//! It models the memory/IO fabric of a dual-socket NUMA node — memory
//! controllers, inter-socket bus directions, the NIC's PCIe link and wire —
//! as capacity-limited resources, and computes the bandwidth each stream
//! (computing core or NIC DMA engine) obtains with a **tiered max-min
//! solver** implementing the arbitration hypotheses the paper validates
//! (§II-A):
//!
//! * CPU memory requests have priority over PCIe (DMA) requests;
//! * a minimal DMA bandwidth is always guaranteed ("to prevent
//!   starvations");
//! * computing cores degrade uniformly when the bus saturates;
//! * cores also contend with each other — controller capacity shrinks per
//!   extra accessor beyond a knee.
//!
//! A small discrete-event engine ([`engine`]) runs benchmark scenarios
//! (kernel passes, rendezvous handshakes, back-to-back 64 MB messages)
//! against the solver and reports steady-state bandwidths; [`noise`]
//! supplies deterministic run-to-run jitter.
//!
//! ```
//! use mc_memsim::fabric::{Fabric, StreamSpec};
//! use mc_topology::{platforms, NumaId};
//!
//! let fabric = Fabric::new(&platforms::henri());
//! // 17 cores + the NIC all hammering NUMA node 0:
//! let streams = Fabric::benchmark_streams(17, Some(NumaId::new(0)), Some(NumaId::new(0)));
//! let solved = fabric.solve(&streams);
//! let comm = solved.dma_total(&streams);
//! let comp = solved.cpu_total(&streams);
//! assert!(comm < fabric.dma_demand(NumaId::new(0))); // contention!
//! assert!(comp + comm <= 80.0 + 1e-9);               // bus capacity
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod delta;
pub mod engine;
pub mod fabric;
pub mod faults;
pub mod node;
pub mod noise;
pub mod solver;

pub use cache::LlcSpec;
pub use delta::{ActiveSet, DeltaSolver, DeltaStats, SolvedState};
pub use engine::{
    Activity, ActivityKind, ActivityReport, Engine, RunReport, SolveCache, SolverStats, TraceSample,
};
pub use fabric::{Fabric, FabricScratch, ResourceKind, SolveResult, StreamSpec};
pub use faults::{inject, inject_all, EngineFault};
pub use node::{JobFinish, JobLoad, NodeRun, NodeWorld};
pub use noise::Noise;
pub use solver::{allocate, allocate_into, Allocation, FlowClass, FlowReq, FlowSet, SolverScratch};
