//! Flow-level discrete-event engine.
//!
//! Activities (compute kernels, message receptions) alternate between timed
//! phases (kernel-launch overhead, rendezvous handshake, inter-message gap)
//! and *streaming* phases where they move bytes through the fabric. While
//! streaming, their instantaneous rate comes from the tiered max-min solver
//! ([`crate::fabric::Fabric::solve`]); rates are re-solved whenever the set
//! of streaming activities changes (an event). Between events all rates are
//! constant, so byte counters integrate exactly.
//!
//! The engine runs all activities repeatedly until a time horizon and
//! reports, per activity, the bytes moved inside a measurement window —
//! exactly how the paper's benchmark derives bandwidths from `memset`
//! durations and message-reception times, but without the noise of partial
//! first/last operations (steady state, §V: "we rather focus on the steady
//! state").

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use mc_topology::NumaId;

use crate::fabric::{Fabric, FabricScratch, SolveResult, StreamSpec};

/// What an activity does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// A computing core repeatedly `memset`ting a buffer with non-temporal
    /// stores (the paper's compute kernel).
    Compute {
        /// NUMA node holding the computation buffer.
        numa: NumaId,
        /// Bytes written per kernel pass.
        bytes_per_pass: f64,
        /// Fixed overhead between passes, seconds (loop control, OpenMP
        /// barrier).
        pass_overhead: f64,
    },
    /// The communication thread receiving large messages back-to-back.
    CommRecv {
        /// NUMA node holding the receive buffer.
        numa: NumaId,
        /// Message size in bytes (64 MB in the paper).
        msg_bytes: f64,
        /// Rendezvous handshake duration before each message, seconds.
        handshake: f64,
        /// Gap after each message before the next is posted, seconds.
        gap: f64,
    },
    /// The communication thread sending large messages back-to-back (the
    /// NIC reads the payload from memory — the other half of a ping-pong).
    CommSend {
        /// NUMA node holding the send buffer.
        numa: NumaId,
        /// Message size in bytes.
        msg_bytes: f64,
        /// Rendezvous handshake duration before each message, seconds.
        handshake: f64,
        /// Gap after each message, seconds.
        gap: f64,
    },
}

/// An activity plus its start offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Behaviour of the activity.
    pub kind: ActivityKind,
    /// Simulation time at which the activity starts, seconds.
    pub start: f64,
}

/// Phase of a running activity.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting to start (before `Activity::start`) or in a timed phase
    /// ending at the stored absolute time.
    TimedUntil(f64),
    /// Streaming; bytes left in the current unit.
    Streaming(f64),
}

/// Which timed phase a comm activity is in (handshake vs gap) is tracked by
/// this tag; compute activities only have one timed phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TimedTag {
    StartDelay,
    Overhead,
    Handshake,
    Gap,
}

struct ActState {
    kind: ActivityKind,
    phase: Phase,
    tag: TimedTag,
    /// Bytes streamed inside the measurement window.
    measured_bytes: f64,
    /// Total bytes streamed since t = 0.
    total_bytes: f64,
    /// Completed streaming units (passes / messages).
    units_done: u64,
}

impl ActState {
    fn stream_spec(&self) -> StreamSpec {
        match self.kind {
            ActivityKind::Compute { numa, .. } => StreamSpec::CpuWrite { numa },
            ActivityKind::CommRecv { numa, .. } => StreamSpec::DmaRecv { numa },
            ActivityKind::CommSend { numa, .. } => StreamSpec::DmaSend { numa },
        }
    }

    /// Enter the next phase after the current one completes.
    fn advance(&mut self, now: f64) {
        match (&self.kind, self.phase, self.tag) {
            (ActivityKind::Compute { bytes_per_pass, .. }, Phase::TimedUntil(_), _) => {
                self.phase = Phase::Streaming(*bytes_per_pass);
            }
            (ActivityKind::Compute { pass_overhead, .. }, Phase::Streaming(_), _) => {
                self.units_done += 1;
                self.phase = Phase::TimedUntil(now + *pass_overhead);
                self.tag = TimedTag::Overhead;
            }
            (
                ActivityKind::CommRecv { msg_bytes, .. } | ActivityKind::CommSend { msg_bytes, .. },
                Phase::TimedUntil(_),
                TimedTag::Handshake,
            ) => {
                self.phase = Phase::Streaming(*msg_bytes);
            }
            (
                ActivityKind::CommRecv { gap, .. } | ActivityKind::CommSend { gap, .. },
                Phase::Streaming(_),
                _,
            ) => {
                self.units_done += 1;
                self.phase = Phase::TimedUntil(now + *gap);
                self.tag = TimedTag::Gap;
            }
            (
                ActivityKind::CommRecv { handshake, .. } | ActivityKind::CommSend { handshake, .. },
                Phase::TimedUntil(_),
                _,
            ) => {
                // StartDelay or Gap ends → handshake for the next message.
                self.phase = Phase::TimedUntil(now + *handshake);
                self.tag = TimedTag::Handshake;
            }
        }
    }
}

/// Result for one activity after a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Bytes streamed inside the measurement window.
    pub measured_bytes: f64,
    /// Average bandwidth over the measurement window, GB/s.
    pub bandwidth: f64,
    /// Bytes streamed since simulation start.
    pub total_bytes: f64,
    /// Streaming units (kernel passes / messages) completed.
    pub units_done: u64,
}

/// Counters of solver work: actual progressive-filling runs vs solves
/// answered from the memoization cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Times the tiered max-min solver actually ran.
    pub invocations: u64,
    /// Times a solve was answered from the cache without running the
    /// solver.
    pub cache_hits: u64,
}

/// Memoized steady-state solves.
///
/// Keyed on the canonical (sorted) stream multiset plus the `cpu_scale`
/// bits: progressive filling is symmetric, so identical [`StreamSpec`]s
/// always receive identical rates and the solution is a pure function of
/// the multiset. Cached rates are therefore exact — bit-identical to an
/// uncached solve — which the engine property tests assert.
///
/// A cache is only valid for the [`Fabric`] whose solves populated it;
/// share one across [`Engine`]s (via [`Engine::with_solve_cache`]) only
/// when they wrap the same fabric.
#[derive(Debug, Clone, Default)]
pub struct SolveCache {
    map: HashMap<u64, Vec<CacheEntry>>,
    invocations: u64,
    hits: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// The canonical key: the stream multiset, sorted.
    specs: Box<[StreamSpec]>,
    scale_bits: u64,
    /// Rate per *sorted* position; equal specs hold equal rates, so a
    /// binary search by spec recovers the rate of any original position.
    rates: Box<[f64]>,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (stream multiset, cpu_scale) states cached.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative solver counters since the cache was created.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            invocations: self.invocations,
            cache_hits: self.hits,
        }
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Result of an engine run.
///
/// `PartialEq` deliberately ignores [`RunReport::stats`]: two physically
/// identical runs may split solver work between fresh solves and cache
/// hits differently depending on what ran before them, while everything
/// the run *measured* must still match bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-activity reports, same order as the input.
    pub activities: Vec<ActivityReport>,
    /// Number of events (rate re-evaluations) during the run.
    pub events: u64,
    /// The measurement window used, seconds.
    pub window: (f64, f64),
    /// Solver work performed during this run.
    pub stats: SolverStats,
}

impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.activities == other.activities
            && self.events == other.events
            && self.window == other.window
    }
}

impl RunReport {
    /// Sum of measured bandwidths of all compute activities.
    pub fn compute_bandwidth(&self, activities: &[Activity]) -> f64 {
        self.activities
            .iter()
            .zip(activities)
            .filter(|(_, a)| matches!(a.kind, ActivityKind::Compute { .. }))
            .map(|(r, _)| r.bandwidth)
            .sum()
    }

    /// Sum of measured bandwidths of all communication activities.
    pub fn comm_bandwidth(&self, activities: &[Activity]) -> f64 {
        self.activities
            .iter()
            .zip(activities)
            .filter(|(_, a)| {
                matches!(
                    a.kind,
                    ActivityKind::CommRecv { .. } | ActivityKind::CommSend { .. }
                )
            })
            .map(|(r, _)| r.bandwidth)
            .sum()
    }
}

/// One sample of the bandwidth timeline: the instantaneous rates that
/// held from `t` until the next sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time of the re-solve, seconds.
    pub t: f64,
    /// Aggregate CPU bandwidth, GB/s.
    pub compute: f64,
    /// Aggregate DMA bandwidth, GB/s.
    pub comm: f64,
    /// Number of streaming activities.
    pub active: usize,
}

/// Giga multiplier: rates are GB/s, byte counters are bytes.
const GB: f64 = 1e9;
/// Numerical slack when comparing times/bytes.
const EPS: f64 = 1e-12;

/// The discrete-event engine.
///
/// ```
/// use mc_memsim::engine::{Activity, ActivityKind, Engine};
/// use mc_memsim::fabric::Fabric;
/// use mc_topology::{platforms, NumaId};
///
/// let platform = platforms::henri();
/// let fabric = Fabric::new(&platform);
/// let acts = vec![Activity {
///     kind: ActivityKind::Compute {
///         numa: NumaId::new(0),
///         bytes_per_pass: 64e6,
///         pass_overhead: 1e-6,
///     },
///     start: 0.0,
/// }];
/// let report = Engine::new(&fabric).run(&acts, 0.01, 0.05);
/// // One core writes ~5.6 GB/s on henri.
/// assert!((report.activities[0].bandwidth - 5.6).abs() < 0.1);
/// ```
pub struct Engine<'f> {
    fabric: &'f Fabric,
    cpu_scale: f64,
    memoize: bool,
    cache: CacheSlot<'f>,
    scratch: RefCell<EngineScratch>,
}

/// The engine either owns its solve cache or borrows one that outlives it
/// (letting callers persist memoized solves across many runs/engines).
enum CacheSlot<'f> {
    Owned(RefCell<SolveCache>),
    Shared(&'f RefCell<SolveCache>),
}

/// Buffers reused across events and runs: after warmup an event that hits
/// the solve cache allocates nothing at all.
#[derive(Debug, Default)]
struct EngineScratch {
    /// Indices of the currently streaming activities.
    streaming: Vec<usize>,
    /// Their stream specs, same order.
    specs: Vec<StreamSpec>,
    /// `specs`, sorted — the canonical cache key.
    sorted: Vec<StreamSpec>,
    /// (spec, rate) pairs staged while inserting a cache entry.
    pairs: Vec<(StreamSpec, f64)>,
    /// Rate per streaming activity, same order as `streaming`.
    rates: Vec<f64>,
    fabric: FabricScratch,
    solve: SolveResult,
}

impl<'f> Engine<'f> {
    /// Create an engine over a fabric (non-temporal `memset` kernels:
    /// unit CPU demand scale).
    pub fn new(fabric: &'f Fabric) -> Self {
        Self::with_cpu_scale(fabric, 1.0)
    }

    /// Create an engine whose compute activities issue `cpu_scale` times
    /// the memory traffic of a non-temporal `memset` kernel.
    pub fn with_cpu_scale(fabric: &'f Fabric, cpu_scale: f64) -> Self {
        assert!(cpu_scale > 0.0, "cpu_scale must be positive");
        Engine {
            fabric,
            cpu_scale,
            memoize: true,
            cache: CacheSlot::Owned(RefCell::new(SolveCache::new())),
            scratch: RefCell::new(EngineScratch::default()),
        }
    }

    /// Use a caller-owned solve cache instead of the engine's private one,
    /// so memoized solves persist across engines (e.g. one per core count)
    /// over the same fabric. The cache must only ever be used with this
    /// engine's fabric.
    pub fn with_solve_cache(mut self, cache: &'f RefCell<SolveCache>) -> Self {
        self.cache = CacheSlot::Shared(cache);
        self
    }

    /// Disable solve memoization: every event runs the solver. The
    /// reference behaviour memoized runs are property-tested against.
    pub fn uncached(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// Cumulative solver counters of the engine's cache (owned or shared).
    pub fn solver_stats(&self) -> SolverStats {
        self.with_cache(|c| c.stats())
    }

    fn with_cache<R>(&self, f: impl FnOnce(&mut SolveCache) -> R) -> R {
        match &self.cache {
            CacheSlot::Owned(c) => f(&mut c.borrow_mut()),
            CacheSlot::Shared(c) => f(&mut c.borrow_mut()),
        }
    }

    /// Fill `scratch.rates` with the steady-state rate of each spec in
    /// `scratch.specs`, via the solve cache when memoization is on.
    fn solve_rates(&self, scratch: &mut EngineScratch) {
        if !self.memoize {
            self.with_cache(|c| c.invocations += 1);
            self.fabric.solve_into(
                &scratch.specs,
                self.cpu_scale,
                &mut scratch.fabric,
                &mut scratch.solve,
            );
            scratch.rates.clear();
            scratch.rates.extend_from_slice(&scratch.solve.rates);
            return;
        }

        // Canonical key: the sorted multiset plus the scale bits.
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(&scratch.specs);
        scratch.sorted.sort_unstable();
        let scale_bits = self.cpu_scale.to_bits();
        let mut hasher = DefaultHasher::new();
        scratch.sorted.hash(&mut hasher);
        scale_bits.hash(&mut hasher);
        let key = hasher.finish();

        let sorted = &scratch.sorted;
        let specs = &scratch.specs;
        let rates = &mut scratch.rates;
        let hit = self.with_cache(|cache| {
            if let Some(bucket) = cache.map.get(&key) {
                for entry in bucket {
                    if entry.scale_bits == scale_bits && entry.specs[..] == sorted[..] {
                        cache.hits += 1;
                        rates.clear();
                        for s in specs {
                            let j = entry
                                .specs
                                .binary_search(s)
                                .expect("looked-up spec is part of the cached key");
                            rates.push(entry.rates[j]);
                        }
                        return true;
                    }
                }
            }
            false
        });
        if hit {
            return;
        }

        self.fabric.solve_into(
            &scratch.specs,
            self.cpu_scale,
            &mut scratch.fabric,
            &mut scratch.solve,
        );
        scratch.rates.clear();
        scratch.rates.extend_from_slice(&scratch.solve.rates);

        // Stage the entry's rates in sorted-spec order. Equal specs get
        // equal rates (solver symmetry), so sorting the pairs by spec
        // alone is enough.
        scratch.pairs.clear();
        scratch.pairs.extend(
            scratch
                .specs
                .iter()
                .copied()
                .zip(scratch.rates.iter().copied()),
        );
        scratch.pairs.sort_unstable_by_key(|p| p.0);
        let entry = CacheEntry {
            specs: scratch.sorted.as_slice().into(),
            scale_bits,
            rates: scratch.pairs.iter().map(|p| p.1).collect(),
        };
        self.with_cache(|cache| {
            cache.invocations += 1;
            cache.map.entry(key).or_default().push(entry);
        });
    }

    /// Run `activities` repeatedly from t = 0 to `horizon`, measuring
    /// streamed bytes within `[measure_start, horizon]`.
    ///
    /// Panics if `measure_start >= horizon` or any duration is negative.
    pub fn run(&self, activities: &[Activity], measure_start: f64, horizon: f64) -> RunReport {
        self.run_impl(activities, measure_start, horizon, None)
    }

    /// Like [`Engine::run`], additionally recording the bandwidth timeline
    /// (one sample per event) — the raw material of time-series figures.
    pub fn run_traced(
        &self,
        activities: &[Activity],
        measure_start: f64,
        horizon: f64,
    ) -> (RunReport, Vec<TraceSample>) {
        let mut trace = Vec::new();
        let report = self.run_impl(activities, measure_start, horizon, Some(&mut trace));
        (report, trace)
    }

    fn run_impl(
        &self,
        activities: &[Activity],
        measure_start: f64,
        horizon: f64,
        mut trace: Option<&mut Vec<TraceSample>>,
    ) -> RunReport {
        assert!(
            measure_start < horizon,
            "measurement window is empty ({measure_start} >= {horizon})"
        );
        let mut states: Vec<ActState> = activities
            .iter()
            .map(|a| {
                let mut st = ActState {
                    kind: a.kind.clone(),
                    phase: Phase::TimedUntil(a.start),
                    tag: TimedTag::StartDelay,
                    measured_bytes: 0.0,
                    total_bytes: 0.0,
                    units_done: 0,
                };
                if a.start <= 0.0 {
                    // Start immediately: move into the first real phase.
                    st.advance(0.0);
                }
                st
            })
            .collect();

        let mut now = 0.0_f64;
        let mut events = 0_u64;
        let stats_before = self.solver_stats();
        let scratch = &mut *self.scratch.borrow_mut();

        while now < horizon - EPS {
            // Active streaming set → solve rates (reusing the scratch
            // buffers; memoized when the set was seen before).
            scratch.streaming.clear();
            for (i, s) in states.iter().enumerate() {
                if matches!(s.phase, Phase::Streaming(_)) {
                    scratch.streaming.push(i);
                }
            }
            scratch.specs.clear();
            scratch
                .specs
                .extend(scratch.streaming.iter().map(|&i| states[i].stream_spec()));
            if scratch.specs.is_empty() {
                scratch.rates.clear();
            } else {
                self.solve_rates(scratch);
            }
            let streaming = &scratch.streaming;
            let rates = &scratch.rates;
            events += 1;
            if let Some(trace) = trace.as_deref_mut() {
                let mut compute = 0.0;
                let mut comm = 0.0;
                for (slot, &i) in streaming.iter().enumerate() {
                    if states[i].stream_spec().is_dma() {
                        comm += rates[slot];
                    } else {
                        compute += rates[slot];
                    }
                }
                trace.push(TraceSample {
                    t: now,
                    compute,
                    comm,
                    active: streaming.len(),
                });
            }

            // Next event: earliest phase end, capped at the horizon.
            let mut next = horizon;
            for (slot, &i) in streaming.iter().enumerate() {
                if let Phase::Streaming(bytes_left) = states[i].phase {
                    let rate = rates[slot] * GB;
                    if rate > 0.0 {
                        next = next.min(now + bytes_left / rate);
                    }
                }
            }
            for s in &states {
                if let Phase::TimedUntil(t) = s.phase {
                    if t > now + EPS {
                        next = next.min(t);
                    }
                }
            }
            // Guard against zero-length steps (e.g. all rates zero and no
            // timed phase pending): jump to horizon.
            if next <= now + EPS {
                next = horizon;
            }
            let dt = next - now;

            // Integrate bytes over [now, next]; clip to the measure window.
            let overlap = (next.min(horizon) - now.max(measure_start)).max(0.0);
            for (slot, &i) in streaming.iter().enumerate() {
                let rate = rates[slot] * GB;
                let moved = rate * dt;
                if let Phase::Streaming(ref mut bytes_left) = states[i].phase {
                    *bytes_left = (*bytes_left - moved).max(0.0);
                }
                states[i].total_bytes += moved;
                states[i].measured_bytes += rate * overlap;
            }
            now = next;

            // Advance activities whose phase completed.
            for s in states.iter_mut() {
                match s.phase {
                    Phase::Streaming(left) if left <= 1.0 => s.advance(now),
                    Phase::TimedUntil(t) if t <= now + EPS => s.advance(now),
                    _ => {}
                }
            }
        }

        let stats_after = self.solver_stats();
        let run_stats = SolverStats {
            invocations: stats_after.invocations - stats_before.invocations,
            cache_hits: stats_after.cache_hits - stats_before.cache_hits,
        };
        // Run-granular observability: one batch of counters per run, so
        // the per-event loop above never touches the recorder and stays
        // allocation-free when observability is off.
        if let Some(rec) = mc_obs::recorder() {
            let tags = [(
                "platform",
                mc_obs::TagValue::Str(self.fabric.platform().name()),
            )];
            rec.add("engine.runs", &tags, 1);
            rec.add("engine.events", &tags, events);
            rec.add("engine.solver_invocations", &tags, run_stats.invocations);
            rec.add("engine.solver_cache_hits", &tags, run_stats.cache_hits);
            rec.observe("engine.horizon_s", &tags, horizon);
        }
        let window = horizon - measure_start;
        RunReport {
            activities: states
                .iter()
                .map(|s| ActivityReport {
                    measured_bytes: s.measured_bytes,
                    bandwidth: s.measured_bytes / window / GB,
                    total_bytes: s.total_bytes,
                    units_done: s.units_done,
                })
                .collect(),
            events,
            window: (measure_start, horizon),
            stats: run_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    fn compute_act(numa: u16, start: f64) -> Activity {
        Activity {
            kind: ActivityKind::Compute {
                numa: NumaId::new(numa),
                bytes_per_pass: 64e6,
                pass_overhead: 2e-6,
            },
            start,
        }
    }

    fn comm_act(numa: u16) -> Activity {
        Activity {
            kind: ActivityKind::CommRecv {
                numa: NumaId::new(numa),
                msg_bytes: 64e6 * 1.048_576, // 64 MiB
                handshake: 4e-6,
                gap: 1e-6,
            },
            start: 0.0,
        }
    }

    #[test]
    fn single_compute_core_hits_nominal_rate() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let report = Engine::new(&f).run(&[compute_act(0, 0.0)], 0.02, 0.1);
        assert!(
            (report.activities[0].bandwidth - 5.6).abs() < 0.05,
            "{}",
            report.activities[0].bandwidth
        );
        assert!(report.activities[0].units_done > 0);
    }

    #[test]
    fn comm_alone_is_slightly_below_wire_demand() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let report = Engine::new(&f).run(&[comm_act(0)], 0.02, 0.2);
        let demand = f.dma_demand(NumaId::new(0));
        let bw = report.activities[0].bandwidth;
        assert!(
            bw < demand,
            "handshake gaps must cost a little: {bw} vs {demand}"
        );
        assert!(bw > demand * 0.98, "but not much: {bw} vs {demand}");
    }

    #[test]
    fn parallel_run_shows_contention() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut acts: Vec<Activity> = (0..17).map(|i| compute_act(0, i as f64 * 1e-5)).collect();
        acts.push(comm_act(0));
        let report = Engine::new(&f).run(&acts, 0.05, 0.3);
        let comm_bw = report.comm_bandwidth(&acts);
        let demand = f.dma_demand(NumaId::new(0));
        // With 17 cores the NIC is squeezed to its floor (25 % of demand).
        assert!(
            comm_bw < demand * 0.35,
            "comm {comm_bw} should be near floor {}",
            demand * 0.25
        );
        let comp_bw = report.compute_bandwidth(&acts);
        assert!(
            comp_bw > 60.0,
            "compute should keep most of the bus: {comp_bw}"
        );
    }

    #[test]
    fn compute_scales_with_core_count_until_threshold() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let engine = Engine::new(&f);
        let bw_at = |n: usize| {
            let acts: Vec<Activity> = (0..n).map(|i| compute_act(0, i as f64 * 1e-5)).collect();
            engine.run(&acts, 0.02, 0.2).compute_bandwidth(&acts)
        };
        let b4 = bw_at(4);
        let b8 = bw_at(8);
        assert!((b8 / b4 - 2.0).abs() < 0.05, "b4={b4}, b8={b8}");
    }

    #[test]
    fn staggered_starts_do_not_change_steady_state() {
        let p = platforms::occigen();
        let f = Fabric::new(&p);
        let engine = Engine::new(&f);
        let aligned: Vec<Activity> = (0..8).map(|_| compute_act(0, 0.0)).collect();
        let staggered: Vec<Activity> = (0..8).map(|i| compute_act(0, i as f64 * 3e-5)).collect();
        let a = engine.run(&aligned, 0.05, 0.3).compute_bandwidth(&aligned);
        let b = engine
            .run(&staggered, 0.05, 0.3)
            .compute_bandwidth(&staggered);
        assert!((a - b).abs() / a < 0.01, "a={a}, b={b}");
    }

    #[test]
    #[should_panic(expected = "measurement window is empty")]
    fn empty_window_panics() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        Engine::new(&f).run(&[], 0.2, 0.1);
    }

    #[test]
    fn no_activities_runs_to_horizon() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let r = Engine::new(&f).run(&[], 0.0, 0.1);
        assert!(r.activities.is_empty());
    }

    #[test]
    fn traced_run_matches_untraced_and_records_events() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut acts: Vec<Activity> = (0..4).map(|i| compute_act(0, i as f64 * 1e-5)).collect();
        acts.push(comm_act(0));
        let engine = Engine::new(&f);
        let plain = engine.run(&acts, 0.02, 0.1);
        let (traced, trace) = engine.run_traced(&acts, 0.02, 0.1);
        assert_eq!(plain, traced);
        assert_eq!(trace.len() as u64, traced.events);
        // Timeline is time-ordered and rates are physical.
        for w in trace.windows(2) {
            assert!(w[1].t >= w[0].t);
        }
        assert!(trace.iter().any(|s| s.comm > 0.0));
        assert!(trace.iter().any(|s| s.compute > 0.0));
    }

    #[test]
    fn trace_captures_the_rampup() {
        // Staggered starts: the active count must grow over early samples.
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let acts: Vec<Activity> = (0..6).map(|i| compute_act(0, i as f64 * 1e-3)).collect();
        let (_, trace) = Engine::new(&f).run_traced(&acts, 0.01, 0.05);
        let first_active = trace.first().map(|s| s.active).unwrap_or(0);
        let max_active = trace.iter().map(|s| s.active).max().unwrap_or(0);
        assert!(max_active > first_active);
        assert_eq!(max_active, 6);
    }

    #[test]
    fn steady_state_memoization_slashes_solver_invocations() {
        // The steady state revisits a tiny set of machine states, so the
        // solve cache answers almost every event; physical results do not
        // change. (The ≥10× drop is a headline acceptance criterion.)
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let mut acts: Vec<Activity> = (0..17).map(|i| compute_act(0, i as f64 * 1.3e-5)).collect();
        acts.push(comm_act(0));
        let engine = Engine::new(&f);
        let uncached = Engine::new(&f).uncached().run(&acts, 0.05, 0.3);
        let memoized = engine.run(&acts, 0.05, 0.3);
        assert_eq!(memoized, uncached, "memoization must not change results");
        assert_eq!(uncached.stats.cache_hits, 0);
        assert!(
            uncached.stats.invocations >= 10 * memoized.stats.invocations,
            "expected a >= 10x drop: uncached {} vs memoized {}",
            uncached.stats.invocations,
            memoized.stats.invocations
        );
        // A repeat run on the warm engine never invokes the solver.
        let again = engine.run(&acts, 0.05, 0.3);
        assert_eq!(again.stats.invocations, 0);
        assert_eq!(again, uncached);
    }

    #[test]
    fn late_start_activity_streams_less() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let engine = Engine::new(&f);
        let early = engine.run(&[compute_act(0, 0.0)], 0.0, 0.1).activities[0].total_bytes;
        let late = engine.run(&[compute_act(0, 0.05)], 0.0, 0.1).activities[0].total_bytes;
        assert!(late < early * 0.6, "early={early}, late={late}");
    }
}
