//! Multi-job node world: finite workloads sharing one fabric.
//!
//! The engine ([`crate::engine`]) measures *steady-state* bandwidths of
//! activities that restart forever; the scheduler needs the opposite —
//! **finite** jobs (so many compute bytes, so many communication bytes)
//! co-located on one node, each finishing at some instant. `NodeWorld`
//! closes that gap with a fluid simulation directly on the progressive-
//! filling solver: between stream starts/stops every active stream moves
//! at the rate [`Fabric::solve_into`] assigns it, the earliest phase
//! completion is the next event, and the multiset of streams shrinks as
//! phases drain. A node hosting `k` jobs therefore costs at most `2k`
//! solves — one per phase completion.
//!
//! Each job is the scheduler-level view of the paper's workload: a
//! memory-bound compute phase (`cores` non-temporal writers on
//! `comp_numa`) overlapped with a communication phase (one NIC DMA
//! stream into `comm_numa`). With one job this reduces to the advisor's
//! two-phase makespan, computed on the simulated fabric instead of the
//! calibrated closed form.

use mc_topology::{NumaId, Platform, PoolId};

use crate::fabric::{Fabric, FabricScratch, SolveResult, StreamSpec};

/// One finite job placed on the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLoad {
    /// Computing cores granted to the job (0 is allowed iff the job has
    /// no compute bytes).
    pub cores: usize,
    /// NUMA node holding the job's computation data.
    pub comp_numa: NumaId,
    /// NUMA node holding the job's communication buffers.
    pub comm_numa: NumaId,
    /// Bytes the compute phase must move through memory.
    pub compute_bytes: f64,
    /// Bytes the communication phase must move over the NIC.
    pub comm_bytes: f64,
    /// Memory tier the communication phase runs on: `None` keeps the
    /// classic NIC DMA stream into `comm_numa`; `Some(pool)` reads the
    /// bytes message-free from that CXL.mem pool instead (the pool must
    /// exist on the node's platform).
    pub comm_pool: Option<PoolId>,
}

/// Per-job outcome of a node run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFinish {
    /// Seconds until the job's compute phase drained.
    pub compute_done: f64,
    /// Seconds until the job's communication phase drained.
    pub comm_done: f64,
}

impl JobFinish {
    /// Seconds until both phases drained — the job's completion time.
    pub fn finish(&self) -> f64 {
        self.compute_done.max(self.comm_done)
    }
}

/// Outcome of running a set of co-located jobs to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRun {
    /// Per-job phase completion times, input order.
    pub jobs: Vec<JobFinish>,
    /// Time the last phase drained (0 for an empty or all-empty set).
    pub makespan: f64,
    /// Progressive-filling solves performed (≤ 2 × jobs).
    pub solves: usize,
}

/// One simulated cluster node: a platform's fabric plus reusable solver
/// scratch. Cheap to keep per fleet entry; `run` is `&mut self` only for
/// the scratch.
#[derive(Debug)]
pub struct NodeWorld {
    fabric: Fabric,
    scratch: FabricScratch,
    result: SolveResult,
}

/// Remaining work of one job inside the event loop.
#[derive(Debug, Clone, Copy)]
struct Residual {
    compute: f64,
    comm: f64,
    compute_done: f64,
    comm_done: f64,
}

impl NodeWorld {
    /// Build the node for one platform.
    pub fn new(platform: &Platform) -> Self {
        NodeWorld {
            fabric: Fabric::new(platform),
            scratch: FabricScratch::default(),
            result: SolveResult::default(),
        }
    }

    /// The platform this node simulates.
    pub fn platform(&self) -> &Platform {
        self.fabric.platform()
    }

    /// Run `jobs` from a common start to completion and report when each
    /// phase drains. Deterministic: same jobs, same answer, bit for bit.
    pub fn run(&mut self, jobs: &[JobLoad]) -> NodeRun {
        let mut residual: Vec<Residual> = jobs
            .iter()
            .map(|j| Residual {
                compute: if j.cores > 0 { j.compute_bytes } else { 0.0 },
                comm: j.comm_bytes,
                compute_done: 0.0,
                comm_done: 0.0,
            })
            .collect();
        let mut now = 0.0f64;
        let mut solves = 0usize;
        let mut streams: Vec<StreamSpec> = Vec::new();
        // Stream ownership, parallel to `streams`: (job index, is_comm).
        let mut owner: Vec<(usize, bool)> = Vec::new();
        loop {
            streams.clear();
            owner.clear();
            for (i, (job, res)) in jobs.iter().zip(residual.iter()).enumerate() {
                if res.compute > 0.0 {
                    for _ in 0..job.cores {
                        streams.push(StreamSpec::CpuWrite {
                            numa: job.comp_numa,
                        });
                        owner.push((i, false));
                    }
                }
                if res.comm > 0.0 {
                    streams.push(match job.comm_pool {
                        None => StreamSpec::DmaRecv {
                            numa: job.comm_numa,
                        },
                        Some(pool) => StreamSpec::CxlRead {
                            numa: job.comm_numa,
                            pool,
                        },
                    });
                    owner.push((i, true));
                }
            }
            if streams.is_empty() {
                break;
            }
            self.fabric
                .solve_into(&streams, 1.0, &mut self.scratch, &mut self.result);
            solves += 1;
            // Aggregate per-phase rates (bytes/s); the solver reports GB/s
            // per stream and a job's compute phase is the sum of its cores.
            let mut comp_rate = vec![0.0f64; jobs.len()];
            let mut comm_rate = vec![0.0f64; jobs.len()];
            for (&(job, is_comm), &rate) in owner.iter().zip(self.result.rates.iter()) {
                if is_comm {
                    comm_rate[job] += rate * 1e9;
                } else {
                    comp_rate[job] += rate * 1e9;
                }
            }
            // Earliest phase completion is the next event.
            let mut dt = f64::INFINITY;
            for (i, res) in residual.iter().enumerate() {
                if res.compute > 0.0 && comp_rate[i] > 0.0 {
                    dt = dt.min(res.compute / comp_rate[i]);
                }
                if res.comm > 0.0 && comm_rate[i] > 0.0 {
                    dt = dt.min(res.comm / comm_rate[i]);
                }
            }
            if !dt.is_finite() {
                // Every remaining stream got rate 0 — cannot happen on a
                // well-formed fabric (capacities are positive), but a
                // stall must not loop forever.
                break;
            }
            now += dt;
            for (i, res) in residual.iter_mut().enumerate() {
                if res.compute > 0.0 {
                    res.compute -= comp_rate[i] * dt;
                    if res.compute <= res.compute.abs().max(1.0) * 1e-12 {
                        res.compute = 0.0;
                        res.compute_done = now;
                    }
                }
                if res.comm > 0.0 {
                    res.comm -= comm_rate[i] * dt;
                    if res.comm <= res.comm.abs().max(1.0) * 1e-12 {
                        res.comm = 0.0;
                        res.comm_done = now;
                    }
                }
            }
        }
        let jobs_out: Vec<JobFinish> = residual
            .iter()
            .map(|r| JobFinish {
                compute_done: r.compute_done,
                comm_done: r.comm_done,
            })
            .collect();
        let makespan = jobs_out.iter().map(JobFinish::finish).fold(0.0, f64::max);
        NodeRun {
            jobs: jobs_out,
            makespan,
            solves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    fn job(cores: usize, comp: u16, comm: u16, compute_gb: f64, comm_gb: f64) -> JobLoad {
        JobLoad {
            cores,
            comp_numa: NumaId::new(comp),
            comm_numa: NumaId::new(comm),
            compute_bytes: compute_gb * 1e9,
            comm_bytes: comm_gb * 1e9,
            comm_pool: None,
        }
    }

    #[test]
    fn empty_node_finishes_instantly() {
        let mut node = NodeWorld::new(&platforms::henri());
        let run = node.run(&[]);
        assert_eq!(run.makespan, 0.0);
        assert_eq!(run.solves, 0);
        let run = node.run(&[job(4, 0, 0, 0.0, 0.0)]);
        assert_eq!(run.makespan, 0.0);
        assert_eq!(run.jobs[0].finish(), 0.0);
    }

    #[test]
    fn single_job_matches_hand_computed_two_phase_run() {
        let p = platforms::henri();
        let mut node = NodeWorld::new(&p);
        let j = job(8, 0, 1, 40.0, 10.0);
        let run = node.run(&[j]);
        assert_eq!(run.jobs.len(), 1);
        // Both phases drain, in at most two solver segments.
        assert!(run.solves <= 2, "solves {}", run.solves);
        assert!(run.makespan > 0.0);
        // The makespan can't beat either phase running alone at full rate.
        let fabric = Fabric::new(&p);
        let comp_alone = fabric
            .solve(&Fabric::benchmark_streams(8, Some(NumaId::new(0)), None))
            .rates
            .iter()
            .sum::<f64>()
            * 1e9;
        let comm_alone = fabric
            .solve(&[StreamSpec::DmaRecv {
                numa: NumaId::new(1),
            }])
            .rates[0]
            * 1e9;
        let lower = (j.compute_bytes / comp_alone).max(j.comm_bytes / comm_alone);
        assert!(run.makespan >= lower - 1e-9);
    }

    #[test]
    fn colocation_never_speeds_either_job_up() {
        let p = platforms::henri();
        let mut node = NodeWorld::new(&p);
        let a = job(8, 0, 0, 30.0, 6.0);
        let b = job(8, 0, 0, 20.0, 12.0);
        let alone_a = node.run(&[a]).jobs[0].finish();
        let alone_b = node.run(&[b]).jobs[0].finish();
        let both = node.run(&[a, b]);
        assert!(both.jobs[0].finish() >= alone_a - 1e-9);
        assert!(both.jobs[1].finish() >= alone_b - 1e-9);
        assert!(both.makespan >= alone_a.max(alone_b) - 1e-9);
    }

    #[test]
    fn separated_numa_placement_beats_piling_on_one_node() {
        let p = platforms::henri();
        let mut node = NodeWorld::new(&p);
        let piled = node.run(&[job(8, 0, 0, 30.0, 8.0), job(8, 0, 0, 30.0, 8.0)]);
        let spread = node.run(&[job(8, 0, 1, 30.0, 8.0), job(8, 1, 0, 30.0, 8.0)]);
        assert!(
            spread.makespan < piled.makespan,
            "spread {} vs piled {}",
            spread.makespan,
            piled.makespan
        );
    }

    #[test]
    fn mixed_tier_node_offloads_the_cxl_job_from_the_nic() {
        // One job reads its bytes message-free from the CXL.mem pool,
        // the other keeps the NIC DMA path: the DMA job must finish as
        // if it never shared the wire, because the tiers only meet at
        // the destination memory controllers.
        let p = platforms::henri_cxl();
        let pool = p.topology.cxl_pools[0].id;
        let dram = job(0, 0, 0, 0.0, 8.0);
        let cxl = JobLoad {
            comm_pool: Some(pool),
            comm_numa: NumaId::new(1),
            ..job(0, 0, 1, 0.0, 8.0)
        };
        let mut node = NodeWorld::new(&p);
        let dram_alone = node.run(&[dram]).jobs[0].comm_done;
        let both = node.run(&[dram, cxl]);
        assert_eq!(
            both.jobs[0].comm_done.to_bits(),
            dram_alone.to_bits(),
            "a CXL reader on the other NUMA node must not slow the NIC job"
        );
        // The CXL job drains at the pool's per-stream bandwidth.
        let expect = 8e9 / (p.topology.cxl_pools[0].stream_bandwidth * 1e9);
        assert!(
            (both.jobs[1].comm_done - expect).abs() < 1e-9,
            "cxl job took {} s, expected {expect} s",
            both.jobs[1].comm_done
        );
    }

    #[test]
    fn mixed_tier_runs_are_deterministic_and_byte_stable() {
        let p = platforms::henri_cxl();
        let pool = p.topology.cxl_pools[0].id;
        let dram = job(8, 0, 1, 30.0, 8.0);
        let cxl = JobLoad {
            comm_pool: Some(pool),
            ..job(8, 1, 0, 20.0, 12.0)
        };
        let mut node = NodeWorld::new(&p);
        let a = node.run(&[dram, cxl]);
        let b = node.run(&[dram, cxl]);
        assert_eq!(a, b);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            assert_eq!(x.finish().to_bits(), y.finish().to_bits());
        }
        assert!(a.makespan > 0.0 && a.solves > 0);
    }

    #[test]
    fn runs_are_bit_identical() {
        let p = platforms::dahu();
        let mut node = NodeWorld::new(&p);
        let jobs = [job(4, 0, 1, 25.0, 5.0), job(2, 1, 0, 5.0, 20.0)];
        let a = node.run(&jobs);
        let b = node.run(&jobs);
        assert_eq!(a, b);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            assert_eq!(x.finish().to_bits(), y.finish().to_bits());
        }
    }
}
