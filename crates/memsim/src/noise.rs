//! Deterministic measurement noise.
//!
//! Real benchmark runs show small run-to-run variability. We reproduce it
//! with a *stateless* generator: the multiplier for a sample is a pure
//! function of `(seed, tags…)`, so results are identical regardless of the
//! order in which sweep points are evaluated (important: the parallel sweep
//! driver in `mc-membench` evaluates points concurrently).

use serde::{Deserialize, Serialize};

/// SplitMix64 step — a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateless deterministic noise source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Noise {
    seed: u64,
}

impl Noise {
    /// Create a source with a base seed (typically the platform's
    /// [`mc_topology::NoiseSpec::seed`]).
    pub fn new(seed: u64) -> Self {
        Noise { seed }
    }

    /// A uniform value in `[0, 1)` for the given tag tuple.
    pub fn uniform(&self, tags: &[u64]) -> f64 {
        let mut h = splitmix64(self.seed ^ 0xA076_1D64_78BD_642F);
        for &t in tags {
            h = splitmix64(h ^ t);
        }
        // 53 high bits → [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard-normal value (Box–Muller, clamped to ±3) for the tag
    /// tuple.
    pub fn gaussian(&self, tags: &[u64]) -> f64 {
        let mut t1 = tags.to_vec();
        t1.push(1);
        let mut t2 = tags.to_vec();
        t2.push(2);
        let u1 = self.uniform(&t1).max(1e-12);
        let u2 = self.uniform(&t2);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        z.clamp(-3.0, 3.0)
    }

    /// A multiplicative jitter `1 + sigma·z`, floored at 0.01 so a noisy
    /// measurement can never become zero or negative.
    pub fn multiplier(&self, sigma: f64, tags: &[u64]) -> f64 {
        (1.0 + sigma * self.gaussian(tags)).max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let n = Noise::new(42);
        assert_eq!(n.uniform(&[1, 2, 3]), n.uniform(&[1, 2, 3]));
        assert_eq!(n.gaussian(&[7]), n.gaussian(&[7]));
    }

    #[test]
    fn different_tags_give_different_values() {
        let n = Noise::new(42);
        assert_ne!(n.uniform(&[1]), n.uniform(&[2]));
        assert_ne!(n.uniform(&[1, 0]), n.uniform(&[0, 1]));
    }

    #[test]
    fn different_seeds_give_different_values() {
        assert_ne!(Noise::new(1).uniform(&[5]), Noise::new(2).uniform(&[5]));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let n = Noise::new(123);
        for i in 0..1000 {
            let u = n.uniform(&[i]);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let n = Noise::new(99);
        let samples: Vec<f64> = (0..20_000).map(|i| n.gaussian(&[i])).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_is_clamped() {
        let n = Noise::new(7);
        for i in 0..50_000 {
            let z = n.gaussian(&[i]);
            assert!((-3.0..=3.0).contains(&z));
        }
    }

    #[test]
    fn multiplier_never_nonpositive() {
        let n = Noise::new(5);
        for i in 0..1000 {
            assert!(n.multiplier(0.5, &[i]) > 0.0);
        }
    }
}
