//! Engine-level fault injection.
//!
//! Where `mc_membench::faults` corrupts *recorded* sweeps, this module
//! perturbs the *simulated machine itself*: individual activities are
//! stalled (a late-starting rank, a driver hiccup before the first
//! message) or slowed down (an overcommitted core whose per-pass overhead
//! balloons). The engine must absorb every such perturbation gracefully —
//! the run completes, the unperturbed activities keep their steady-state
//! rates, and the victim simply streams less. Nothing here may panic.

use crate::engine::{Activity, ActivityKind};

/// One way to perturb a set of engine [`Activity`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineFault {
    /// Delay the start of activity `victim` by `delay` seconds — a stalled
    /// rank that joins the contention late.
    Stall {
        /// Index of the activity to stall.
        victim: usize,
        /// Additional start delay, seconds.
        delay: f64,
    },
    /// Multiply every *timed* (non-streaming) phase of activity `victim`
    /// by `factor`: kernel pass overhead for compute, handshake and gap
    /// for communications. With `factor > 1` the victim spends more time
    /// off the memory system and streams fewer bytes.
    SlowDown {
        /// Index of the activity to slow down.
        victim: usize,
        /// Multiplicative factor on timed-phase durations.
        factor: f64,
    },
}

/// Apply `fault` in place. A `victim` index past the end of `activities`
/// is a no-op: injecting into a smaller scenario than the fault was
/// written for must never panic.
pub fn inject(activities: &mut [Activity], fault: &EngineFault) {
    match *fault {
        EngineFault::Stall { victim, delay } => {
            if let Some(a) = activities.get_mut(victim) {
                a.start += delay.max(0.0);
            }
        }
        EngineFault::SlowDown { victim, factor } => {
            if let Some(a) = activities.get_mut(victim) {
                match &mut a.kind {
                    ActivityKind::Compute { pass_overhead, .. } => {
                        *pass_overhead *= factor;
                    }
                    ActivityKind::CommRecv { handshake, gap, .. }
                    | ActivityKind::CommSend { handshake, gap, .. } => {
                        *handshake *= factor;
                        *gap *= factor;
                    }
                }
            }
        }
    }
}

/// Apply every fault in order.
pub fn inject_all(activities: &mut [Activity], faults: &[EngineFault]) {
    for fault in faults {
        inject(activities, fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::fabric::Fabric;
    use mc_topology::{platforms, NumaId};

    fn scenario() -> Vec<Activity> {
        let mut acts: Vec<Activity> = (0..4)
            .map(|i| Activity {
                kind: ActivityKind::Compute {
                    numa: NumaId::new(0),
                    bytes_per_pass: 64e6,
                    pass_overhead: 2e-6,
                },
                start: i as f64 * 1e-5,
            })
            .collect();
        acts.push(Activity {
            kind: ActivityKind::CommRecv {
                numa: NumaId::new(0),
                msg_bytes: 64e6,
                handshake: 4e-6,
                gap: 1e-6,
            },
            start: 0.0,
        });
        acts
    }

    #[test]
    fn stalled_activity_streams_less_and_run_completes() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let engine = Engine::new(&f);
        let clean = scenario();
        let mut faulty = scenario();
        inject(
            &mut faulty,
            &EngineFault::Stall {
                victim: 0,
                delay: 0.05,
            },
        );
        let base = engine.run(&clean, 0.0, 0.1);
        let got = engine.run(&faulty, 0.0, 0.1);
        assert!(got.activities[0].total_bytes < base.activities[0].total_bytes * 0.7);
        // The other activities keep running; the run reaches its horizon.
        assert!(got.activities[4].total_bytes > 0.0);
        assert_eq!(got.window, (0.0, 0.1));
    }

    #[test]
    fn slowdown_reduces_completed_units() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let engine = Engine::new(&f);
        let clean = scenario();
        let mut faulty = scenario();
        inject(
            &mut faulty,
            &EngineFault::SlowDown {
                victim: 4,
                factor: 50.0,
            },
        );
        let base = engine.run(&clean, 0.02, 0.2);
        let got = engine.run(&faulty, 0.02, 0.2);
        assert!(got.activities[4].units_done < base.activities[4].units_done);
        // Compute activities are not the victim and keep their throughput.
        assert!(got.activities[0].bandwidth >= base.activities[0].bandwidth * 0.99);
    }

    #[test]
    fn out_of_range_victim_is_a_no_op() {
        let mut acts = scenario();
        let before = acts.clone();
        inject_all(
            &mut acts,
            &[
                EngineFault::Stall {
                    victim: 99,
                    delay: 1.0,
                },
                EngineFault::SlowDown {
                    victim: 99,
                    factor: 10.0,
                },
            ],
        );
        assert_eq!(acts, before);
    }

    #[test]
    fn negative_stall_delay_never_moves_a_start_earlier() {
        let mut acts = scenario();
        let start_before = acts[1].start;
        inject(
            &mut acts,
            &EngineFault::Stall {
                victim: 1,
                delay: -5.0,
            },
        );
        assert_eq!(acts[1].start, start_before);
    }
}
