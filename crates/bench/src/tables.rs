//! Table generators: Table I (testbed characteristics) and Table II
//! (model errors per platform).

use mc_membench::{calibration_placements, sweep_platform_parallel, BenchConfig};
use mc_model::{
    evaluate, format_percent, BandwidthPredictor, ContentionModel, ErrorBreakdown, McError,
};
use mc_topology::{platforms, Platform};

/// Render Table I: one row per platform, matching the paper's columns.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("TABLE I — CHARACTERISTICS OF TESTBED PLATFORMS\n");
    out.push_str(&format!(
        "{:<15} {:<42} {:<28} {:<16}\n",
        "Name", "Processor", "Memory", "Network"
    ));
    for p in platforms::all() {
        let topo = &p.topology;
        let total_mem: u32 = topo.numa_nodes.iter().map(|n| n.memory_gb).sum();
        out.push_str(&format!(
            "{:<15} {:<42} {:<28} {:<16}\n",
            p.name(),
            format!(
                "{} x {} with {} cores",
                topo.sockets.len(),
                topo.sockets[0].processor,
                topo.sockets[0].cores
            ),
            format!("{} GB of RAM, {} NUMA nodes", total_mem, topo.numa_count()),
            topo.nic.tech.to_string()
        ));
    }
    out
}

/// Full evaluation of one platform: measure every placement, calibrate the
/// model from the two sample placements, score predictions.
pub fn evaluate_platform(
    platform: &Platform,
    config: BenchConfig,
) -> Result<ErrorBreakdown, McError> {
    let sweep = sweep_platform_parallel(platform, config);
    evaluate_from_sweep(platform, &sweep)
}

/// Same, reusing an existing full sweep.
pub fn evaluate_from_sweep(
    platform: &Platform,
    sweep: &mc_membench::PlatformSweep,
) -> Result<ErrorBreakdown, McError> {
    let model = calibrated_model(platform, sweep)?;
    let samples = [
        calibration_placements(platform).0,
        calibration_placements(platform).1,
    ];
    Ok(evaluate(&model, sweep, &samples))
}

/// Calibrate the paper's model from the two sample placements of a full
/// sweep. Fails with [`McError::MissingPlacement`] when the sweep does not
/// cover a calibration placement, and with [`McError::Calibration`] when a
/// covered placement is degenerate.
pub fn calibrated_model(
    platform: &Platform,
    sweep: &mc_membench::PlatformSweep,
) -> Result<ContentionModel, McError> {
    let ((lc, lm), (rc, rm)) = calibration_placements(platform);
    let local = sweep.placement(lc, lm).ok_or(McError::MissingPlacement {
        m_comp: lc,
        m_comm: lm,
    })?;
    let remote = sweep.placement(rc, rm).ok_or(McError::MissingPlacement {
        m_comp: rc,
        m_comm: rm,
    })?;
    ContentionModel::calibrate(&platform.topology, local, remote).map_err(McError::from)
}

/// Evaluate an arbitrary predictor built from the calibrated model (used
/// for the baseline ablations).
pub fn evaluate_predictor(
    platform: &Platform,
    sweep: &mc_membench::PlatformSweep,
    predictor: &dyn BandwidthPredictor,
) -> ErrorBreakdown {
    let samples = [
        calibration_placements(platform).0,
        calibration_placements(platform).1,
    ];
    evaluate(predictor, sweep, &samples)
}

/// Render Table II for all six platforms, with the per-column averages of
/// the paper's last row.
pub fn table2(config: BenchConfig) -> Result<String, McError> {
    let mut out = String::new();
    out.push_str("TABLE II — MODEL ERRORS ON TESTBED PLATFORMS (MAPE, %)\n");
    out.push_str(&format!(
        "{:<15} {:>12} {:>16} {:>8} {:>12} {:>16} {:>8} {:>9}\n",
        "Platform",
        "Comm/Sample",
        "Comm/non-Sample",
        "Comm",
        "Comp/Sample",
        "Comp/non-Sample",
        "Comp",
        "Average"
    ));
    let mut rows = Vec::new();
    for p in platforms::all() {
        let e = evaluate_platform(&p, config)?;
        out.push_str(&format_row(p.name(), &e));
        rows.push(e);
    }
    let n = rows.len() as f64;
    let avg = ErrorBreakdown {
        comm_samples: rows.iter().map(|e| e.comm_samples).sum::<f64>() / n,
        comm_non_samples: rows.iter().map(|e| e.comm_non_samples).sum::<f64>() / n,
        comm_all: rows.iter().map(|e| e.comm_all).sum::<f64>() / n,
        comp_samples: rows.iter().map(|e| e.comp_samples).sum::<f64>() / n,
        comp_non_samples: rows.iter().map(|e| e.comp_non_samples).sum::<f64>() / n,
        comp_all: rows.iter().map(|e| e.comp_all).sum::<f64>() / n,
        average: rows.iter().map(|e| e.average).sum::<f64>() / n,
        skipped: rows.iter().map(|e| e.skipped).sum(),
    };
    out.push_str(&format_row("Average", &avg));
    Ok(out)
}

fn format_row(name: &str, e: &ErrorBreakdown) -> String {
    // NaN cells (an empty MAPE bucket) render as "n/a", not as 0.00 %.
    // Rows whose MAPE dropped zero-bandwidth cells say so: the percentages
    // are then computed over fewer pairs than the sweep contains.
    let skipped = if e.skipped > 0 {
        format!("  ({} pairs skipped)", e.skipped)
    } else {
        String::new()
    };
    format!(
        "{:<15} {}% {}% {}% {}% {}% {}% {}%{skipped}\n",
        name,
        format_percent(e.comm_samples, 11),
        format_percent(e.comm_non_samples, 15),
        format_percent(e.comm_all, 7),
        format_percent(e.comp_samples, 11),
        format_percent(e.comp_non_samples, 15),
        format_percent(e.comp_all, 7),
        format_percent(e.average, 8)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_platforms() {
        let t = table1();
        for name in [
            "henri",
            "henri-subnuma",
            "dahu",
            "diablo",
            "pyxis",
            "occigen",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("Omni-Path"));
    }

    #[test]
    fn henri_errors_are_low() {
        let e = evaluate_platform(&platforms::henri(), BenchConfig::default()).unwrap();
        assert!(e.average < 3.0, "{e:?}");
    }

    #[test]
    fn calibrated_model_reports_the_missing_placement() {
        // A sweep that only measured the local calibration placement: the
        // missing remote placement is reported, not panicked over.
        let p = platforms::henri();
        let full = sweep_platform_parallel(&p, BenchConfig::exact());
        let ((lc, lm), (rc, rm)) = calibration_placements(&p);
        let mut partial = full.clone();
        partial.sweeps.retain(|s| (s.m_comp, s.m_comm) == (lc, lm));
        assert_eq!(
            calibrated_model(&p, &partial).unwrap_err(),
            McError::MissingPlacement {
                m_comp: rc,
                m_comm: rm,
            }
        );
        assert!(calibrated_model(&p, &full).is_ok());
    }

    #[test]
    fn table2_reproduces_the_papers_error_structure() {
        // The paper's Table II: average error ≈ 2.5 %, occigen by far the
        // cleanest, pyxis the worst (driven by non-sample communication
        // error ≈ 13 %), computations predicted better than communications.
        let cfg = BenchConfig::default();
        let by_name = |n: &str| evaluate_platform(&platforms::by_name(n).unwrap(), cfg).unwrap();
        let occigen = by_name("occigen");
        let pyxis = by_name("pyxis");
        let henri = by_name("henri");
        let diablo = by_name("diablo");

        assert!(occigen.average < 0.3, "occigen {occigen:?}");
        assert!(
            (8.0..20.0).contains(&pyxis.comm_non_samples),
            "pyxis {pyxis:?}"
        );
        assert!(pyxis.average > occigen.average);
        assert!(henri.average < 3.0, "henri {henri:?}");
        assert!(diablo.average < 3.0, "diablo {diablo:?}");
        // Communications are harder to predict than computations (paper:
        // 3.09 % vs 1.94 % overall).
        assert!(pyxis.comm_all > pyxis.comp_all);
        assert!(henri.comm_all > henri.comp_all);
    }
}
