//! Figure generators: Fig. 1 (machine diagram), Fig. 2 (stacked
//! bandwidth), Figs. 3–8 (per-platform placement grids with model
//! predictions).

use mc_membench::{calibration_placements, sweep_platform_parallel, BenchConfig, PlatformSweep};
use mc_memsim::engine::{Activity, ActivityKind, Engine};
use mc_memsim::fabric::Fabric;
use mc_model::ContentionModel;
use mc_model::Mape;
use mc_model::McError;
use mc_netsim::NicModel;
use mc_topology::{platforms, Platform};
use mc_viz::{
    ChartGrid, DualAxisChart, Heatmap, MarkedPoint, Series, SeriesStyle, StackedData,
    TopologySketch, YAxis, COMM_COLOR, COMP_COLOR,
};

use crate::tables::calibrated_model;

/// Which platform each figure number shows (paper §IV-B).
pub const FIGURE_PLATFORMS: [(u8, &str); 6] = [
    (3, "henri"),
    (4, "henri-subnuma"),
    (5, "diablo"),
    (6, "occigen"),
    (7, "pyxis"),
    (8, "dahu"),
];

/// Fig. 1: ASCII machine diagrams of every platform (the paper draws one
/// generic machine; we render each testbed member).
pub fn figure1() -> String {
    let mut out = String::from("FIGURE 1 — MACHINE TOPOLOGIES\n\n");
    for p in platforms::all() {
        let topo = &p.topology;
        let sketch = TopologySketch {
            name: topo.summary(),
            sockets: topo.sockets.len(),
            cores_per_socket: topo.cores_per_socket(),
            numa_per_socket: topo.numa_per_socket(),
            nic_socket: topo.nic.socket.index(),
            network: topo.nic.tech.to_string(),
            bus: topo.links[0].tech.to_string(),
        };
        out.push_str(&mc_viz::topology_diagram(&sketch));
        out.push('\n');
    }
    out
}

/// Fig. 2 data: the stacked view of the henri-subnuma local placement,
/// with the model's calibration points marked.
pub fn figure2(config: BenchConfig) -> Result<StackedData, McError> {
    let platform = platforms::henri_subnuma();
    let sweep = sweep_platform_parallel(&platform, config);
    let model = calibrated_model(&platform, &sweep)?;
    let ((lc, lm), _) = calibration_placements(&platform);
    let local = sweep.placement(lc, lm).ok_or(McError::MissingPlacement {
        m_comp: lc,
        m_comm: lm,
    })?;

    let p = *model.local().params();
    Ok(StackedData {
        title: format!("{} — stacked bandwidths, local placement", platform.name()),
        n_cores: local.points.iter().map(|pt| pt.n_cores as f64).collect(),
        comp_par: local.points.iter().map(|pt| pt.comp_par).collect(),
        comm_par: local.points.iter().map(|pt| pt.comm_par).collect(),
        comp_alone: local.points.iter().map(|pt| pt.comp_alone).collect(),
        marks: vec![
            MarkedPoint {
                n: 1.0,
                value: p.b_comp_seq,
                label: "(1, Bcomp_seq)".into(),
            },
            MarkedPoint {
                n: p.n_max_par as f64,
                value: p.t_max_par,
                label: "(Nmax_par, Tmax_par)".into(),
            },
            MarkedPoint {
                n: p.n_max_seq as f64,
                value: p.t_max_seq,
                label: "(Nmax_seq, Tmax_seq)".into(),
            },
            MarkedPoint {
                n: p.n_max_seq as f64,
                value: p.t_max2_par,
                label: "(Nmax_seq, Tmax2_par)".into(),
            },
        ],
    })
}

/// Build one subplot: measurements (markers) and model predictions (lines)
/// for one placement.
fn subplot(
    model: &ContentionModel,
    sweep: &PlatformSweep,
    m_comp: mc_topology::NumaId,
    m_comm: mc_topology::NumaId,
) -> Result<DualAxisChart, McError> {
    let placement = sweep
        .placement(m_comp, m_comm)
        .ok_or(McError::MissingPlacement { m_comp, m_comm })?;
    let xs = |f: &dyn Fn(&mc_membench::SweepPoint) -> f64| -> Vec<(f64, f64)> {
        placement
            .points
            .iter()
            .map(|pt| (pt.n_cores as f64, f(pt)))
            .collect()
    };
    let n_max = placement.max_cores();
    let model_par: Vec<(f64, f64, f64)> = (1..=n_max)
        .map(|n| {
            let pr = model.predict(n, m_comp, m_comm);
            (n as f64, pr.comm, pr.comp)
        })
        .collect();
    let model_alone: Vec<(f64, f64, f64)> = (1..=n_max)
        .map(|n| {
            let pr = model.predict_alone(n, m_comp, m_comm);
            (n as f64, pr.comm, pr.comp)
        })
        .collect();

    let series = vec![
        Series {
            label: "comm alone (measured)".into(),
            points: xs(&|pt| pt.comm_alone),
            color: COMM_COLOR.into(),
            style: SeriesStyle::Circles,
            axis: YAxis::Left,
        },
        Series {
            label: "comm parallel (measured)".into(),
            points: xs(&|pt| pt.comm_par),
            color: COMM_COLOR.into(),
            style: SeriesStyle::Triangles,
            axis: YAxis::Left,
        },
        Series {
            label: "comm parallel (model)".into(),
            points: model_par.iter().map(|&(n, c, _)| (n, c)).collect(),
            color: COMM_COLOR.into(),
            style: SeriesStyle::Line,
            axis: YAxis::Left,
        },
        Series {
            label: "comm alone (model)".into(),
            points: model_alone.iter().map(|&(n, c, _)| (n, c)).collect(),
            color: COMM_COLOR.into(),
            style: SeriesStyle::DashedLine,
            axis: YAxis::Left,
        },
        Series {
            label: "comp alone (measured)".into(),
            points: xs(&|pt| pt.comp_alone),
            color: COMP_COLOR.into(),
            style: SeriesStyle::Circles,
            axis: YAxis::Right,
        },
        Series {
            label: "comp parallel (measured)".into(),
            points: xs(&|pt| pt.comp_par),
            color: COMP_COLOR.into(),
            style: SeriesStyle::Triangles,
            axis: YAxis::Right,
        },
        Series {
            label: "comp parallel (model)".into(),
            points: model_par.iter().map(|&(n, _, c)| (n, c)).collect(),
            color: COMP_COLOR.into(),
            style: SeriesStyle::Line,
            axis: YAxis::Right,
        },
        Series {
            label: "comp alone (model)".into(),
            points: model_alone.iter().map(|&(n, _, c)| (n, c)).collect(),
            color: COMP_COLOR.into(),
            style: SeriesStyle::DashedLine,
            axis: YAxis::Right,
        },
    ];

    Ok(DualAxisChart {
        title: format!("comp data: {m_comp} — comm data: {m_comm}"),
        x_label: "Number of computing cores".into(),
        left_label: "Network bandwidth (GB/s)".into(),
        right_label: "Memory bandwidth (GB/s)".into(),
        series,
        highlighted: model.is_sample_placement(m_comp, m_comm),
        legend: false,
    })
}

/// Build the full placement grid of one platform (one of Figs. 3–8),
/// returning the grid plus the underlying sweep (for CSV export).
pub fn placement_grid(
    platform: &Platform,
    config: BenchConfig,
) -> Result<(ChartGrid, PlatformSweep), McError> {
    let sweep = sweep_platform_parallel(platform, config);
    let model = calibrated_model(platform, &sweep)?;
    let charts = platform
        .topology
        .placement_combinations()
        .into_iter()
        .map(|(m_comp, m_comm)| subplot(&model, &sweep, m_comp, m_comm))
        .collect::<Result<Vec<_>, _>>()?;
    let grid = ChartGrid {
        title: format!(
            "{} ({}, {})",
            platform.name(),
            platform.topology.sockets[0].processor,
            platform.topology.nic.tech
        ),
        charts,
        cols: platform.topology.numa_count(),
    };
    Ok((grid, sweep))
}

/// Extra (extended-report style): the per-placement communication
/// prediction-error matrix a platform's Table II row aggregates away.
/// Rows are communication-data placements, columns computation-data
/// placements — the layout of Figs. 3-8.
pub fn error_heatmap(platform: &Platform, config: BenchConfig) -> Result<Heatmap, McError> {
    let sweep = sweep_platform_parallel(platform, config);
    let model = calibrated_model(platform, &sweep)?;
    let nodes = platform.topology.numa_count();
    let mut values = Vec::with_capacity(nodes * nodes);
    for (m_comp, m_comm) in platform.topology.placement_combinations() {
        let placement = sweep
            .placement(m_comp, m_comm)
            .ok_or(McError::MissingPlacement { m_comp, m_comm })?;
        let mut mape = Mape::default();
        for pt in &placement.points {
            mape.add(pt.comm_par, model.predict(pt.n_cores, m_comp, m_comm).comm);
        }
        values.push(mape.percent_or_nan());
    }
    Ok(Heatmap {
        title: format!(
            "{} — communication prediction error per placement",
            platform.name()
        ),
        col_labels: (0..nodes).map(|i| format!("comp numa{i}")).collect(),
        row_labels: (0..nodes).map(|i| format!("comm numa{i}")).collect(),
        values,
        unit: "%".into(),
    })
}

/// Extra: a Gantt view of an overlapped iterative run on the MPI
/// simulator — compute iterations against the halo transfers that hide
/// behind them (cf. the `overlap_planner` example).
pub fn overlap_gantt() -> mc_viz::Gantt {
    use mc_mpisim::{Tag, World};
    let platform = platforms::henri_subnuma();
    let numa = mc_topology::NumaId::new(0);
    let comm_numa = mc_topology::NumaId::new(1);
    let mut world = World::pair(&platform);
    for iter in 0..4u32 {
        let recv = world
            .irecv(0, 1, comm_numa, 512 << 20, Tag(iter))
            .expect("post receive");
        world
            .isend(1, 0, comm_numa, 512 << 20, Tag(iter))
            .expect("post send");
        let job = world
            .start_compute(0, numa, 17, 512 << 20)
            .expect("start compute");
        world.wait_job(job).expect("compute completes");
        world.wait(recv).expect("halo arrives");
    }
    let compute_bars = world
        .job_history()
        .iter()
        .enumerate()
        .map(|(i, j)| mc_viz::GanttBar {
            t0: j.started_at,
            t1: j.finished_at.unwrap_or(j.started_at),
            color: COMP_COLOR.into(),
            label: format!("iter {i}"),
        })
        .collect();
    let transfer_bars = world
        .transfer_history()
        .iter()
        .map(|t| mc_viz::GanttBar {
            t0: t.matched_at,
            t1: t.finished_at.unwrap_or(t.matched_at),
            color: COMM_COLOR.into(),
            label: format!("{} MiB", (t.bytes / (1 << 20) as f64) as u64),
        })
        .collect();
    mc_viz::Gantt {
        title: "henri-subnuma — 17-core compute iterations overlapping 512 MiB halo transfers"
            .into(),
        rows: vec![
            mc_viz::GanttRow {
                label: "rank 0 compute".into(),
                bars: compute_bars,
            },
            mc_viz::GanttRow {
                label: "network 1 -> 0".into(),
                bars: transfer_bars,
            },
        ],
    }
}

/// Extra (not in the paper): the bandwidth timeline of one event-driven
/// run on henri — 17 compute kernels starting one by one while the NIC
/// receives, showing communications being squeezed to their floor in real
/// time. Returns the chart.
pub fn timeline_figure() -> DualAxisChart {
    let platform = platforms::henri();
    let fabric = Fabric::new(&platform);
    let nic = NicModel::new(&fabric);
    let numa = mc_topology::NumaId::new(0);
    // One new core joins every 20 ms.
    let mut acts: Vec<Activity> = (0..platform.max_compute_cores())
        .map(|i| Activity {
            kind: ActivityKind::Compute {
                numa,
                bytes_per_pass: 64e6,
                pass_overhead: 2e-6,
            },
            start: i as f64 * 0.02,
        })
        .collect();
    acts.push(nic.receive_activity(numa, 64 << 20, 0.0));
    let (_, trace) = Engine::new(&fabric).run_traced(&acts, 0.0, 0.40);

    // Events can land inside the µs-scale rendezvous/gap windows where the
    // NIC is momentarily idle; keep the streaming envelope for the figure.
    let comm: Vec<(f64, f64)> = trace
        .iter()
        .filter(|s| s.comm > 0.0)
        .map(|s| (s.t * 1e3, s.comm))
        .collect();
    let comp: Vec<(f64, f64)> = trace.iter().map(|s| (s.t * 1e3, s.compute)).collect();
    DualAxisChart {
        title: "henri — one core joins every 20 ms while the NIC receives".into(),
        x_label: "time (ms)".into(),
        left_label: "Network bandwidth (GB/s)".into(),
        right_label: "Memory bandwidth (GB/s)".into(),
        series: vec![
            Series {
                label: "communications".into(),
                points: comm,
                color: COMM_COLOR.into(),
                style: SeriesStyle::Line,
                axis: YAxis::Left,
            },
            Series {
                label: "computations".into(),
                points: comp,
                color: COMP_COLOR.into(),
                style: SeriesStyle::Line,
                axis: YAxis::Right,
            },
        ],
        highlighted: false,
        legend: true,
    }
}

/// CSV of the model's parallel predictions for every placement — exported
/// next to the measured-sweep CSV so figures can be re-plotted elsewhere.
pub fn predictions_csv(platform: &Platform, sweep: &PlatformSweep) -> Result<String, McError> {
    let model = calibrated_model(platform, sweep)?;
    let mut out = String::from("platform,m_comp,m_comm,n_cores,pred_comp_par,pred_comm_par\n");
    for (m_comp, m_comm) in platform.topology.placement_combinations() {
        for n in 1..=platform.max_compute_cores() {
            let pr = model.predict(n, m_comp, m_comm);
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6}\n",
                platform.name(),
                m_comp.0,
                m_comm.0,
                n,
                pr.comp,
                pr.comm
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_every_platform() {
        let f = figure1();
        for (_, name) in FIGURE_PLATFORMS {
            assert!(f.contains(name), "missing {name}");
        }
    }

    #[test]
    fn figure2_marks_the_four_calibration_points() {
        let d = figure2(BenchConfig::default()).unwrap();
        assert_eq!(d.marks.len(), 4);
        assert_eq!(d.n_cores.len(), 17);
        // Stacked data must be renderable.
        let svg = d.render(640.0, 420.0).render();
        assert!(svg.contains("Tmax_par"));
    }

    #[test]
    fn henri_grid_is_2x2_with_two_highlights() {
        let p = platforms::henri();
        let (grid, _) = placement_grid(&p, BenchConfig::default()).unwrap();
        assert_eq!(grid.charts.len(), 4);
        assert_eq!(grid.cols, 2);
        let highlighted = grid.charts.iter().filter(|c| c.highlighted).count();
        assert_eq!(highlighted, 2, "both calibration placements highlighted");
        // Every subplot has 8 series (4 comm + 4 comp).
        for c in &grid.charts {
            assert_eq!(c.series.len(), 8);
        }
    }

    #[test]
    fn subnuma_grid_is_4x4() {
        let p = platforms::henri_subnuma();
        let (grid, sweep) = placement_grid(&p, BenchConfig::default()).unwrap();
        assert_eq!(grid.charts.len(), 16);
        assert_eq!(grid.cols, 4);
        assert_eq!(sweep.sweeps.len(), 16);
    }

    #[test]
    fn gantt_shows_transfers_hiding_behind_compute() {
        let g = overlap_gantt();
        assert_eq!(g.rows.len(), 2);
        assert_eq!(g.rows[0].bars.len(), 4);
        assert_eq!(g.rows[1].bars.len(), 4);
        // Every transfer starts inside (or at the start of) its iteration's
        // compute bar — that is what overlap means.
        for (job, tr) in g.rows[0].bars.iter().zip(&g.rows[1].bars) {
            assert!(tr.t0 <= job.t1, "transfer starts during the iteration");
            assert!(tr.t1 > tr.t0);
        }
    }

    #[test]
    fn heatmap_covers_the_grid_and_flags_pyxis_hotspot() {
        let p = platforms::by_name("pyxis").unwrap();
        let hm = error_heatmap(&p, BenchConfig::default()).unwrap();
        assert_eq!(hm.values.len(), 4);
        // The (comp local, comm remote) cell is the locality-quirk hotspot:
        // row = comm numa1, col = comp numa0 → index 2·1+0 = 2.
        let hotspot = hm.values[2];
        let best = hm.values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(hotspot > 4.0 * best, "hotspot {hotspot} vs best {best}");
    }

    #[test]
    fn timeline_figure_shows_the_squeeze() {
        let chart = timeline_figure();
        let comm = &chart.series[0].points;
        // Early: NIC near nominal; late: squeezed to the floor.
        let early = comm.iter().find(|(t, _)| *t > 5.0).unwrap().1;
        let late = comm.last().unwrap().1;
        assert!(early > 10.0, "early comm {early}");
        assert!(late < 0.4 * early, "late comm {late}");
        // Compute ramps up as cores join.
        let comp = &chart.series[1].points;
        assert!(comp.last().unwrap().1 > 10.0 * comp.first().unwrap().1);
    }

    #[test]
    fn predictions_csv_has_all_rows() {
        let p = platforms::henri();
        let sweep = sweep_platform_parallel(&p, BenchConfig::default());
        let csv = predictions_csv(&p, &sweep).unwrap();
        // header + 4 placements × 17 core counts
        assert_eq!(csv.lines().count(), 1 + 4 * 17);
    }
}
