//! Sensitivity study: how contention and model accuracy vary with the
//! compute kernel and the communication pattern — the dimensions the
//! paper's §IV-C1 scopes its validity to and §VI proposes as future work.

use mc_membench::{
    calibration_placements, sweep_platform_parallel, BenchConfig, CommPattern, ComputeKernel,
};
use mc_model::{evaluate, McError};
use mc_topology::{Platform, SocketId};

use crate::tables::calibrated_model;

/// One configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Communication pattern.
    pub pattern: CommPattern,
    /// Fraction of the nominal communication bandwidth kept at full
    /// compute load in the local placement (1.0 = no contention).
    pub comm_kept: f64,
    /// Fraction of the compute-alone bandwidth kept at full load.
    pub comp_kept: f64,
    /// Average model error after recalibration for this configuration, %.
    pub model_error: f64,
}

/// Run the study on one platform. Fails (instead of panicking) when a
/// sweep misses a needed placement or core count, or refuses to calibrate.
pub fn sensitivity_rows(
    platform: &Platform,
    base: BenchConfig,
) -> Result<Vec<SensitivityRow>, McError> {
    let kernels = [
        ComputeKernel::compute_bound(2.0),
        ComputeKernel::memset_nt(),
        ComputeKernel::copy_nt(),
        ComputeKernel::triad_nt(),
    ];
    let patterns = [CommPattern::RecvOnly, CommPattern::PingPong];
    let local = platform.topology.first_numa_of(SocketId::new(0));
    let n_full = platform.max_compute_cores();

    let mut rows = Vec::new();
    for kernel in kernels {
        for pattern in patterns {
            let config = base.with_kernel(kernel).with_pattern(pattern);
            let sweep = sweep_platform_parallel(platform, config);
            let placement = sweep
                .placement(local, local)
                .ok_or(McError::MissingPlacement {
                    m_comp: local,
                    m_comm: local,
                })?;
            let last = placement
                .points
                .iter()
                .find(|p| p.n_cores == n_full)
                .ok_or(McError::MissingCoreCount { n_cores: n_full })?;
            let (s_local, s_remote) = calibration_placements(platform);
            let model = calibrated_model(platform, &sweep)?;
            let error = evaluate(&model, &sweep, &[s_local, s_remote]).average;
            rows.push(SensitivityRow {
                kernel: kernel.name(),
                pattern,
                comm_kept: last.comm_par / placement.comm_alone_mean(),
                comp_kept: last.comp_par / last.comp_alone,
                model_error: error,
            });
        }
    }
    Ok(rows)
}

/// Render the study for one platform.
pub fn sensitivity_table(platform: &Platform, base: BenchConfig) -> Result<String, McError> {
    let rows = sensitivity_rows(platform, base)?;
    let mut out = format!(
        "KERNEL / PATTERN SENSITIVITY — {} (full compute load, local placement)\n",
        platform.name()
    );
    out.push_str(&format!(
        "{:<16} {:<10} {:>10} {:>10} {:>12}\n",
        "kernel", "pattern", "comm kept", "comp kept", "model error"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<16} {:<10} {:>9.0}% {:>9.0}% {:>11.2}%\n",
            r.kernel,
            format!("{:?}", r.pattern),
            100.0 * r.comm_kept,
            100.0 * r.comp_kept,
            r.model_error
        ));
    }
    Ok(out)
}

/// NUMA node helper for tests.
#[cfg(test)]
fn n(i: u16) -> mc_topology::NumaId {
    mc_topology::NumaId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn contention_grows_with_kernel_traffic() {
        let p = platforms::by_name("henri").unwrap();
        let rows = sensitivity_rows(&p, BenchConfig::default()).unwrap();
        let kept = |kernel: &str| -> f64 {
            rows.iter()
                .find(|r| r.kernel == kernel && r.pattern == CommPattern::RecvOnly)
                .expect("row present")
                .comm_kept
        };
        assert!(kept("compute-bound") > kept("memset-nt"));
        assert!(kept("memset-nt") >= kept("copy-nt") - 0.05);
        assert!(kept("copy-nt") >= kept("triad-nt") - 0.05);
    }

    #[test]
    fn recalibrated_model_stays_accurate_across_the_grid() {
        let p = platforms::by_name("henri").unwrap();
        let rows = sensitivity_rows(&p, BenchConfig::default()).unwrap();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.model_error < 6.0,
                "{} / {:?}: {:.2} %",
                r.kernel,
                r.pattern,
                r.model_error
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let p = platforms::by_name("henri").unwrap();
        let t = sensitivity_table(&p, BenchConfig::default()).unwrap();
        assert_eq!(t.matches("RecvOnly").count(), 4);
        assert_eq!(t.matches("PingPong").count(), 4);
        assert!(t.contains("triad-nt"));
    }

    #[test]
    fn numa_helper() {
        assert_eq!(n(2).index(), 2);
    }
}
