//! Ablation study: score the paper's model against the baseline
//! predictors of [`mc_model::baselines`] on every platform. This quantifies
//! what each model ingredient buys — contention awareness, CPU priority +
//! communication floor, and the two-instantiation NUMA combination.

use mc_membench::{sweep_platform_parallel, BenchConfig};
use mc_model::{EqualShareBaseline, LocalOnlyBaseline, McError, NoContentionBaseline};
use mc_topology::platforms;

use crate::tables::{calibrated_model, evaluate_predictor};

/// One platform's ablation scores (average MAPE over comm and comp, %).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Platform name.
    pub platform: String,
    /// The paper's full model.
    pub model: f64,
    /// No-contention (perfect overlap) baseline.
    pub no_contention: f64,
    /// Equal-share (no priority, no floor) baseline.
    pub equal_share: f64,
    /// Local-instantiation-only (no eqs. 6–7) baseline.
    pub local_only: f64,
}

/// Run the ablation on every platform.
pub fn ablation_rows(config: BenchConfig) -> Result<Vec<AblationRow>, McError> {
    platforms::all()
        .iter()
        .map(|p| {
            let sweep = sweep_platform_parallel(p, config);
            let model = calibrated_model(p, &sweep)?;
            let e_model = evaluate_predictor(p, &sweep, &model);
            let e_none = evaluate_predictor(p, &sweep, &NoContentionBaseline::new(model.clone()));
            let e_equal = evaluate_predictor(p, &sweep, &EqualShareBaseline::new(model.clone()));
            let e_local = evaluate_predictor(p, &sweep, &LocalOnlyBaseline::new(model));
            Ok(AblationRow {
                platform: p.name().to_string(),
                model: e_model.average,
                no_contention: e_none.average,
                equal_share: e_equal.average,
                local_only: e_local.average,
            })
        })
        .collect()
}

/// Render the ablation table.
pub fn ablation_table(config: BenchConfig) -> Result<String, McError> {
    let rows = ablation_rows(config)?;
    let mut out =
        String::from("ABLATION — AVERAGE PREDICTION ERROR (MAPE, %) OF THE MODEL VS BASELINES\n");
    out.push_str(&format!(
        "{:<15} {:>10} {:>15} {:>13} {:>12}\n",
        "Platform", "Model", "No-contention", "Equal-share", "Local-only"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<15} {:>9.2}% {:>14.2}% {:>12.2}% {:>11.2}%\n",
            r.platform, r.model, r.no_contention, r.equal_share, r.local_only
        ));
    }
    let n = rows.len() as f64;
    out.push_str(&format!(
        "{:<15} {:>9.2}% {:>14.2}% {:>12.2}% {:>11.2}%\n",
        "Average",
        rows.iter().map(|r| r.model).sum::<f64>() / n,
        rows.iter().map(|r| r.no_contention).sum::<f64>() / n,
        rows.iter().map(|r| r.equal_share).sum::<f64>() / n,
        rows.iter().map(|r| r.local_only).sum::<f64>() / n,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_beats_every_baseline_on_average() {
        let rows = ablation_rows(BenchConfig::default()).unwrap();
        let n = rows.len() as f64;
        let avg = |f: &dyn Fn(&AblationRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
        let model = avg(&|r| r.model);
        assert!(model < avg(&|r| r.no_contention), "vs no-contention");
        assert!(model < avg(&|r| r.equal_share), "vs equal-share");
        assert!(model < avg(&|r| r.local_only), "vs local-only");
    }

    #[test]
    fn contention_aware_models_beat_no_contention_where_contention_exists() {
        let rows = ablation_rows(BenchConfig::default()).unwrap();
        // henri-subnuma has the strongest contention: ignoring it must hurt
        // badly there.
        let subnuma = rows.iter().find(|r| r.platform == "henri-subnuma").unwrap();
        assert!(subnuma.no_contention > 3.0 * subnuma.model, "{subnuma:?}");
    }

    #[test]
    fn local_only_hurts_most_on_locality_sensitive_platforms() {
        let rows = ablation_rows(BenchConfig::default()).unwrap();
        let diablo = rows.iter().find(|r| r.platform == "diablo").unwrap();
        // diablo's remote comm bandwidth is ~2x its local one; a single
        // local instantiation cannot represent that.
        assert!(diablo.local_only > 2.0 * diablo.model, "{diablo:?}");
    }
}
