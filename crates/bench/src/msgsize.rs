//! Message-size study.
//!
//! The paper fixes 64 MB messages ("big messages are exchanged" maximises
//! contention) and notes (§IV-C1) that the model parameters are only valid
//! for the calibrated message size. This study sweeps the message size on
//! the event-driven backend — where rendezvous handshakes and inter-message
//! gaps really cost time — and shows that (a) smaller messages observe less
//! network bandwidth and exert less memory pressure, and (b) the model
//! recalibrated per size keeps working.

use mc_membench::{calibration_placements, sweep_platform_parallel, BenchConfig};
use mc_model::{evaluate, McError};
use mc_topology::{Platform, SocketId};

use crate::tables::calibrated_model;

/// One message size's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgSizeRow {
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Observed communication bandwidth alone, GB/s.
    pub comm_alone: f64,
    /// Fraction kept at full compute load, local placement.
    pub comm_kept: f64,
    /// Recalibrated model's average error, %.
    pub model_error: f64,
}

/// The sizes swept: 256 KiB to 64 MiB.
pub const SIZES: [u64; 5] = [256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20];

/// Run the study on one platform. Fails (instead of panicking) when a
/// sweep misses a needed placement or core count, or refuses to calibrate.
pub fn msgsize_rows(platform: &Platform, base: BenchConfig) -> Result<Vec<MsgSizeRow>, McError> {
    let local = platform.topology.first_numa_of(SocketId::new(0));
    let n_full = platform.max_compute_cores();
    SIZES
        .iter()
        .map(|&msg_bytes| {
            let mut config = base;
            config.msg_bytes = msg_bytes;
            let sweep = sweep_platform_parallel(platform, config);
            let placement = sweep
                .placement(local, local)
                .ok_or(McError::MissingPlacement {
                    m_comp: local,
                    m_comm: local,
                })?;
            let full = placement
                .points
                .iter()
                .find(|p| p.n_cores == n_full)
                .ok_or(McError::MissingCoreCount { n_cores: n_full })?;
            let (s_local, s_remote) = calibration_placements(platform);
            let model = calibrated_model(platform, &sweep)?;
            let error = evaluate(&model, &sweep, &[s_local, s_remote]).average;
            Ok(MsgSizeRow {
                msg_bytes,
                comm_alone: placement.comm_alone_mean(),
                comm_kept: full.comm_par / placement.comm_alone_mean(),
                model_error: error,
            })
        })
        .collect()
}

/// Render the study.
pub fn msgsize_table(platform: &Platform, base: BenchConfig) -> Result<String, McError> {
    let rows = msgsize_rows(platform, base)?;
    let mut out = format!(
        "MESSAGE-SIZE STUDY — {} (local placement, full compute load)\n",
        platform.name()
    );
    out.push_str(&format!(
        "{:>12} {:>14} {:>12} {:>12}\n",
        "msg size", "comm alone", "comm kept", "model error"
    ));
    for r in &rows {
        let size = if r.msg_bytes >= 1 << 20 {
            format!("{} MiB", r.msg_bytes >> 20)
        } else {
            format!("{} KiB", r.msg_bytes >> 10)
        };
        out.push_str(&format!(
            "{size:>12} {:>9.2} GB/s {:>11.0}% {:>11.2}%\n",
            r.comm_alone,
            100.0 * r.comm_kept,
            r.model_error
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn observed_bandwidth_grows_with_message_size() {
        let p = platforms::by_name("henri").unwrap();
        // Event-driven: handshakes and gaps actually cost time.
        let mut cfg = BenchConfig::event_driven();
        cfg.noisy = false;
        let rows = msgsize_rows(&p, cfg).unwrap();
        for w in rows.windows(2) {
            assert!(
                w[1].comm_alone >= w[0].comm_alone * 0.999,
                "alone bandwidth should grow with size: {:?}",
                rows.iter().map(|r| r.comm_alone).collect::<Vec<_>>()
            );
        }
        // 64 MiB messages approach the nominal EDR rate.
        assert!(rows.last().unwrap().comm_alone > 10.5);
    }

    #[test]
    fn model_recalibrated_per_size_stays_accurate() {
        let p = platforms::by_name("henri").unwrap();
        let mut cfg = BenchConfig::event_driven();
        cfg.noisy = false;
        for r in msgsize_rows(&p, cfg).unwrap() {
            assert!(
                r.model_error < 6.0,
                "{} MiB: {:.2} %",
                r.msg_bytes >> 20,
                r.model_error
            );
        }
    }
}
