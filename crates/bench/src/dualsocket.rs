//! Dual-socket compute study — the configuration the paper's §II-B leaves
//! for future work: computing cores of *all* sockets accessing the same
//! NUMA node, mixing local and remote accesses.
//!
//! For a given total core count the study compares (a) all cores on the
//! compute socket versus (b) the cores split evenly across both sockets,
//! both writing to NUMA node 0 while the NIC receives into it.

use mc_memsim::fabric::{Fabric, StreamSpec};
use mc_topology::{NumaId, Platform, SocketId};

/// One row of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct DualSocketRow {
    /// Total computing cores.
    pub total_cores: usize,
    /// Compute bandwidth with all cores on socket 0, GB/s.
    pub comp_single: f64,
    /// Communication bandwidth in that configuration, GB/s.
    pub comm_single: f64,
    /// Compute bandwidth with the cores split across both sockets, GB/s.
    pub comp_split: f64,
    /// Communication bandwidth in that configuration, GB/s.
    pub comm_split: f64,
}

fn streams_single(n: usize, numa: NumaId) -> Vec<StreamSpec> {
    let mut v: Vec<StreamSpec> = (0..n).map(|_| StreamSpec::CpuWrite { numa }).collect();
    v.push(StreamSpec::DmaRecv { numa });
    v
}

fn streams_split(n: usize, numa: NumaId) -> Vec<StreamSpec> {
    let half = n / 2;
    let mut v: Vec<StreamSpec> = (0..half)
        .map(|_| StreamSpec::CpuWriteFrom {
            socket: SocketId::new(0),
            numa,
        })
        .collect();
    v.extend((0..n - half).map(|_| StreamSpec::CpuWriteFrom {
        socket: SocketId::new(1),
        numa,
    }));
    v.push(StreamSpec::DmaRecv { numa });
    v
}

/// Run the study on one platform for even total core counts up to both
/// sockets' worth of cores.
pub fn dual_socket_rows(platform: &Platform) -> Vec<DualSocketRow> {
    let fabric = Fabric::new(platform);
    let numa = NumaId::new(0);
    let per_socket = platform.max_compute_cores();
    (1..=per_socket)
        .filter(|n| n % 2 == 0)
        .map(|n| {
            let single = streams_single(n, numa);
            let split = streams_split(n, numa);
            let s = fabric.solve(&single);
            let p = fabric.solve(&split);
            DualSocketRow {
                total_cores: n,
                comp_single: s.cpu_total(&single),
                comm_single: s.dma_total(&single),
                comp_split: p.cpu_total(&split),
                comm_split: p.dma_total(&split),
            }
        })
        .collect()
}

/// Render the study.
pub fn dual_socket_table(platform: &Platform) -> String {
    let rows = dual_socket_rows(platform);
    let mut out = format!(
        "DUAL-SOCKET COMPUTE STUDY — {} (all data on numa0, NIC receiving)\n",
        platform.name()
    );
    out.push_str(&format!(
        "{:>6} {:>24} {:>24}\n",
        "cores", "single socket", "split across sockets"
    ));
    out.push_str(&format!(
        "{:>6} {:>12} {:>11} {:>12} {:>11}\n",
        "", "comp GB/s", "comm GB/s", "comp GB/s", "comm GB/s"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:>6} {:>12.1} {:>11.2} {:>12.1} {:>11.2}\n",
            r.total_cores, r.comp_single, r.comm_single, r.comp_split, r.comm_split
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn split_never_beats_single_socket_into_a_local_node() {
        // Writing to socket 0's node: the split configuration pays the
        // inter-socket hop for half its cores, so its compute bandwidth
        // can match but never exceed the single-socket one.
        for r in dual_socket_rows(&platforms::henri()) {
            assert!(
                r.comp_split <= r.comp_single + 1e-6,
                "{} cores: split {} > single {}",
                r.total_cores,
                r.comp_split,
                r.comp_single
            );
        }
    }

    #[test]
    fn split_matches_single_when_unsaturated() {
        // Few cores: nothing saturates, both configurations deliver the
        // per-core demand (the split one at the remote rate for half).
        let rows = dual_socket_rows(&platforms::henri());
        let r = rows.iter().find(|r| r.total_cores == 2).unwrap();
        assert!((r.comp_single - 2.0 * 5.6).abs() < 1e-6);
        assert!((r.comp_split - (5.6 + 4.4)).abs() < 1e-6);
        // And the NIC keeps its nominal bandwidth in both.
        assert!((r.comm_single - r.comm_split).abs() < 0.5);
    }

    #[test]
    fn comm_is_squeezed_in_both_configurations_at_full_load() {
        let rows = dual_socket_rows(&platforms::henri());
        let r = rows.last().unwrap();
        let nominal = rows[0].comm_single;
        assert!(r.comm_single < 0.5 * nominal);
        assert!(r.comm_split < 0.7 * nominal);
    }

    #[test]
    fn table_renders() {
        let t = dual_socket_table(&platforms::henri());
        assert!(t.contains("DUAL-SOCKET"));
        assert!(t.lines().count() > 5);
    }
}
