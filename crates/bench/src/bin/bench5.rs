//! `bench5` — the BENCH_5 comm-mode crossover measurement.
//!
//! ```text
//! bench5 [--platform NAME] [--cores N] [--comm-mb X] [--compute-mb X]
//! ```
//!
//! Replays a fixed workload suite on a CXL-equipped platform twice —
//! once over ordinary messaging, once message-free through the CXL.mem
//! pool — and prints one JSON object with both contended makespans,
//! slowdowns and the winner per workload. The suite brackets the
//! crossover from both sides: a lone ping-pong keeps the NIC to itself
//! (messaging wins), the same transfer under a saturating compute phase
//! runs into the DMA bandwidth floor (message-free wins), and the 2D
//! halo exchange shows what a real stencil's concurrent flows do.
//! `bench5 > BENCH_5.json` snapshots the crossover (see EXPERIMENTS.md).

use std::process::ExitCode;
use std::time::Instant;

use mc_replay::generate::{self, GenParams};
use mc_replay::trace::EventKind;
use mc_replay::{replay, CommMode, ReplayConfig, ReplayOutcome, Trace};
use mc_topology::{platforms, NumaId};

fn usage() -> &'static str {
    "usage: bench5 [--platform NAME] [--cores N] [--comm-mb X] [--compute-mb X]"
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench5: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}

/// One rank sends `bytes` to its peer, optionally while the receiver's
/// `cores` cores stream `compute_bytes` through the same NUMA node —
/// the minimal workload whose winner flips with the compute load.
fn pingpong(bytes: u64, cores: usize, compute_bytes: u64) -> Trace {
    let numa = NumaId::new(0);
    let mut rank0 = Vec::new();
    if cores > 0 {
        rank0.push(EventKind::Compute {
            numa,
            cores,
            bytes: compute_bytes,
        });
    }
    rank0.push(EventKind::Recv {
        peer: 1,
        numa,
        bytes,
        tag: 0,
    });
    rank0.push(EventKind::Wait);
    let rank1 = vec![
        EventKind::Send {
            peer: 0,
            numa,
            bytes,
            tag: 0,
        },
        EventKind::Wait,
    ];
    Trace {
        events: vec![rank0, rank1],
    }
}

struct HeadToHead {
    messages: ReplayOutcome,
    cxl: ReplayOutcome,
}

fn run_both(platform: &mc_topology::Platform, trace: &Trace) -> Result<HeadToHead, String> {
    let run = |mode: CommMode| {
        let config = ReplayConfig {
            comm_mode: mode,
            ..ReplayConfig::default()
        };
        replay(platform, trace, &config).map_err(|e| e.to_string())
    };
    Ok(HeadToHead {
        messages: run(CommMode::Messages)?,
        cxl: run(CommMode::Cxl)?,
    })
}

fn workload_json(name: &str, h: &HeadToHead) -> String {
    let ratio = h.cxl.contended.makespan / h.messages.contended.makespan;
    let winner = if ratio < 1.0 { "cxl" } else { "messages" };
    format!(
        "{{\"name\":\"{name}\",\"ranks\":{},\"events\":{},\
         \"messages\":{{\"makespan_s\":{:.6},\"slowdown\":{:.4}}},\
         \"cxl\":{{\"makespan_s\":{:.6},\"slowdown\":{:.4}}},\
         \"cxl_over_messages\":{ratio:.4},\"winner\":\"{winner}\"}}",
        h.messages.ranks,
        h.messages.events,
        h.messages.contended.makespan,
        h.messages.slowdown,
        h.cxl.contended.makespan,
        h.cxl.slowdown,
    )
}

fn main() -> ExitCode {
    let mut platform_name = "henri-cxl".to_string();
    let mut cores = 17usize;
    let mut comm_mb = 64u64;
    let mut compute_mb = 1024u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--platform" => match args.next() {
                Some(v) => platform_name = v,
                None => return fail("--platform needs a name"),
            },
            "--cores" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cores = v,
                None => return fail("--cores needs a number"),
            },
            "--comm-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => comm_mb = v,
                None => return fail("--comm-mb needs a number"),
            },
            "--compute-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => compute_mb = v,
                None => return fail("--compute-mb needs a number"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unexpected argument '{other}'")),
        }
    }
    if cores == 0 || comm_mb == 0 || compute_mb == 0 {
        return fail("--cores, --comm-mb and --compute-mb must be at least 1");
    }
    let Some(platform) = platforms::by_name(&platform_name) else {
        return fail(&format!("unknown platform '{platform_name}'"));
    };
    if platform.topology.cxl_pools.is_empty() {
        return fail(&format!(
            "platform '{platform_name}' declares no CXL.mem pool"
        ));
    }

    let comm_bytes = comm_mb << 20;
    let compute_bytes = compute_mb << 20;
    let halo_params = GenParams {
        ranks: 4,
        iters: 2,
        cores,
        compute_bytes,
        comm_bytes,
        comp_numa: NumaId::new(0),
        comm_numa: NumaId::new(0),
    };
    let workloads: Vec<(&str, Trace)> = vec![
        ("pingpong-idle", pingpong(comm_bytes, 0, 0)),
        ("pingpong-hot", pingpong(comm_bytes, cores, compute_bytes)),
        ("halo2d-hot", generate::halo2d(&halo_params)),
    ];

    let t0 = Instant::now();
    let mut rows = Vec::new();
    for (name, trace) in &workloads {
        match run_both(&platform, trace) {
            Ok(h) => rows.push(workload_json(name, &h)),
            Err(e) => {
                eprintln!("bench5: workload '{name}' failed: {e}");
                return ExitCode::from(3);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    println!(
        "{{\"platform\":\"{platform_name}\",\"cores\":{cores},\"comm_mb\":{comm_mb},\
         \"compute_mb\":{compute_mb},\"wall_s\":{wall:.3},\"workloads\":[{}]}}",
        rows.join(",")
    );
    ExitCode::SUCCESS
}
