//! `bench3` — one BENCH_3 scaling measurement per process.
//!
//! ```text
//! bench3 PATTERN RANKS [--iters N] [--eager] [--platform NAME]
//! ```
//!
//! Replays one synthetic pattern at one world size and prints a single
//! JSON object with wall-clock, peak RSS, and the delta-solver
//! counters. Run it once per configuration — peak RSS is read from
//! `VmHWM`, the *process* high-water mark, so a fresh process per point
//! is what makes the number attributable to that point. A shell loop
//! over sizes assembles `BENCH_3.json` (see EXPERIMENTS.md).
//!
//! `--eager` materialises the whole trace in memory and keeps every
//! rank timeline (the pre-streaming path); the default streams events
//! straight out of the lazy generator with timelines capped, the way
//! `memcontend replay --stream yes` does.

use std::process::ExitCode;
use std::time::Instant;

use mc_replay::generate::{self, GenParams, LazyGen};
use mc_replay::report::GANTT_MAX_ROWS;
use mc_replay::{run_source, ReplayConfig, SourceRun, TraceSource};
use mc_topology::platforms;

fn usage() -> &'static str {
    "usage: bench3 PATTERN RANKS [--iters N] [--compute-mb N] [--comm-mb N] [--eager] \
     [--platform NAME]"
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench3: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut pattern: Option<String> = None;
    let mut ranks: Option<usize> = None;
    let mut iters = 4usize;
    let mut compute_mb = 256u64;
    let mut comm_mb = 8u64;
    let mut eager = false;
    let mut platform_name = "henri".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return fail("--iters needs a number"),
            },
            "--compute-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => compute_mb = v,
                None => return fail("--compute-mb needs a number"),
            },
            "--comm-mb" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => comm_mb = v,
                None => return fail("--comm-mb needs a number"),
            },
            "--platform" => match args.next() {
                Some(v) => platform_name = v,
                None => return fail("--platform needs a name"),
            },
            "--eager" => eager = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if pattern.is_none() => pattern = Some(other.to_string()),
            other if ranks.is_none() => match other.parse() {
                Ok(v) => ranks = Some(v),
                Err(_) => return fail(&format!("RANKS must be a number, got '{other}'")),
            },
            other => return fail(&format!("unexpected argument '{other}'")),
        }
    }
    let (Some(pattern), Some(ranks)) = (pattern, ranks) else {
        return fail("PATTERN and RANKS are required");
    };
    let Some(platform) = platforms::by_name(&platform_name) else {
        return fail(&format!("unknown platform '{platform_name}'"));
    };
    let params = GenParams {
        ranks,
        iters,
        compute_bytes: compute_mb << 20,
        comm_bytes: comm_mb << 20,
        ..GenParams::default()
    };
    let Some(gen) = LazyGen::new(&pattern, &params) else {
        return fail(&format!(
            "unknown pattern '{pattern}' (expected one of: {})",
            generate::names().join(", ")
        ));
    };

    let config = ReplayConfig {
        timeline_ranks: if eager { None } else { Some(GANTT_MAX_ROWS) },
        ..ReplayConfig::default()
    };
    let run = |contended: bool| -> Result<SourceRun, mc_replay::ReplayError> {
        if eager {
            // The pre-streaming path: the whole trace in memory first.
            let trace = gen.collect();
            run_source(&platform, &mut TraceSource::new(&trace), &config, contended)
        } else {
            run_source(&platform, &mut gen.source(), &config, contended)
        }
    };

    let t0 = Instant::now();
    let contended = match run(true) {
        Ok(r) => r,
        Err(e) => return fail(&format!("contended pass: {e}")),
    };
    let baseline = match run(false) {
        Ok(r) => r,
        Err(e) => return fail(&format!("baseline pass: {e}")),
    };
    let wall = t0.elapsed().as_secs_f64();

    let slowdown = if baseline.run.makespan > 0.0 {
        contended.run.makespan / baseline.run.makespan
    } else {
        1.0
    };
    let s = contended.solver;
    let peak = mc_obs::peak_rss_kb()
        .map(|kb| kb.to_string())
        .unwrap_or_else(|| "null".to_string());
    println!(
        "{{\"mode\":\"{}\",\"pattern\":\"{}\",\"platform\":\"{}\",\"ranks\":{},\"iters\":{},\
         \"events\":{},\"wall_s\":{:.3},\"peak_rss_kb\":{},\"makespan_s\":{:.6},\
         \"slowdown\":{:.4},\"solver\":{{\"node_steps\":{},\"requests\":{},\"reuse_hits\":{},\
         \"state_hits\":{},\"full_solves\":{},\"transitions\":{},\"reduction\":{:.1}}}}}",
        if eager { "eager" } else { "stream" },
        pattern,
        platform_name,
        ranks,
        iters,
        contended.events(),
        wall,
        peak,
        contended.run.makespan,
        slowdown,
        s.node_steps,
        s.delta.requests,
        s.delta.reuse_hits,
        s.delta.state_hits,
        s.delta.full_solves,
        s.transitions,
        s.reduction(),
    );
    ExitCode::SUCCESS
}
