//! `loadgen` — open-loop load generator for `memcontend serve --listen`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--conns N] [--tenants N] [--zipf S]
//!         [--rate RPS] [--duration-s S] [--batch N] [--seed N] [--shutdown]
//! ```
//!
//! Opens `--conns` connections, each authenticated as a tenant drawn
//! from a Zipf(`--zipf`) distribution over `--tenants` ids — the skew
//! every multi-tenant serving study assumes: tenant `t1` lands many
//! connections, the tail almost none, so `t1` contends with itself for
//! its credit budget while the cold tenants sail through. Requests
//! arrive *open-loop*: each connection sends on a fixed schedule
//! regardless of how fast responses come back, and latency is measured
//! from the scheduled send time, so server-side queueing is charged to
//! the server rather than silently self-throttled away (the
//! coordinated-omission correction).
//!
//! One JSON summary goes to stdout: achieved request rate, p50/p99
//! latency, per-tenant ok/overload counts, the server's registry
//! hit-rate (via the `stats` op), and the overall rejection rate —
//! the numbers EXPERIMENTS.md snapshots as `BENCH_2.json`. With
//! `--shutdown` the run ends by asking the server to exit, which is
//! how the CI smoke test checks clean shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mc_json::{obj, Json};

fn usage() -> &'static str {
    "usage: loadgen --addr HOST:PORT [--conns N] [--tenants N] [--zipf S] [--rate RPS] \
     [--duration-s S] [--batch N] [--seed N] [--shutdown]"
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("loadgen: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}

/// xorshift64* — deterministic, seedable, and dependency-free; quality
/// is ample for sampling a 8-way categorical distribution.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf(s) distribution over ranks `1..=n`: weight of rank k
/// is `1/k^s`, so rank 1 takes ~33% of draws at s=1, n=8.
struct Zipf(Vec<f64>);

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        for i in 1..n {
            cdf[i] += cdf[i - 1];
        }
        let total = cdf[n - 1];
        for w in &mut cdf {
            *w /= total;
        }
        Zipf(cdf)
    }

    /// A rank in `0..n`, rank 0 hottest.
    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.0
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.0.len() - 1)
    }
}

/// What one connection observed.
#[derive(Default)]
struct ConnReport {
    tenant: usize,
    sent: u64,
    ok: u64,
    overload: u64,
    errors: u64,
    disconnected: bool,
    latencies_ms: Vec<f64>,
}

struct Plan {
    addr: String,
    interval: Duration,
    deadline: Duration,
    batch: usize,
}

/// Round-robin request bodies: a few platforms and core counts so the
/// registry sees both hits (repeats) and misses (first sightings).
fn request_line(k: u64, batch: usize) -> String {
    const PLATFORMS: [&str; 4] = ["henri", "dahu", "pyxis", "grillon"];
    let one = |k: u64| {
        let platform = PLATFORMS[(k % PLATFORMS.len() as u64) as usize];
        let cores = 1 + (k % 4);
        format!(
            "{{\"op\":\"predict\",\"platform\":\"{platform}\",\"cores\":{cores},\
             \"comp_numa\":0,\"comm_numa\":0}}"
        )
    };
    if batch <= 1 {
        one(k)
    } else {
        let items: Vec<String> = (0..batch as u64).map(|i| one(k + i)).collect();
        format!("{{\"batch\":[{}]}}", items.join(","))
    }
}

/// Drive one connection to the deadline; never panics — transport
/// failures mark the report and end the connection, mirroring the
/// fault-isolation contract under test.
fn run_connection(plan: &Plan, tenant: usize, report: &mut ConnReport) {
    report.tenant = tenant;
    let Ok(stream) = TcpStream::connect(&plan.addr) else {
        report.disconnected = true;
        return;
    };
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        report.disconnected = true;
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    // Hello, synchronously: nothing counts until the tenant is admitted.
    if writeln!(writer, "{{\"hello\":{{\"tenant\":\"t{tenant}\"}}}}").is_err() {
        report.disconnected = true;
        return;
    }
    let mut line = String::new();
    if reader.read_line(&mut line).map(|n| n == 0).unwrap_or(true) {
        report.disconnected = true;
        return;
    }

    // Open loop: the writer thread sends on schedule and passes each
    // scheduled instant over a channel; this thread matches responses
    // (in order, one line per request) and records latency from the
    // *scheduled* time.
    let (schedule_tx, schedule_rx) = mpsc::channel::<Instant>();
    let start = Instant::now();
    let interval = plan.interval;
    let deadline = plan.deadline;
    let batch = plan.batch;
    let writer_thread = std::thread::spawn(move || {
        let mut sent = 0u64;
        loop {
            let due = start + interval * sent as u32;
            if due.duration_since(start) >= deadline {
                break;
            }
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            if writeln!(writer, "{}", request_line(sent, batch)).is_err() {
                break;
            }
            if schedule_tx.send(due).is_err() {
                break;
            }
            sent += 1;
        }
        sent
        // Dropping `writer` closes the write half only after the last
        // request; dropping `schedule_tx` tells the reader it is done.
    });

    while let Ok(scheduled) = schedule_rx.recv() {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => {
                report.disconnected = true;
                break;
            }
        }
        report
            .latencies_ms
            .push(scheduled.elapsed().as_secs_f64() * 1e3);
        match Json::parse(line.trim()) {
            Ok(v) if v.get("ok") == Some(&Json::Bool(true)) => report.ok += 1,
            Ok(v) => {
                let class = v
                    .get("error")
                    .and_then(|e| e.get("class"))
                    .and_then(Json::as_str);
                if class == Some("overload") {
                    report.overload += 1;
                } else {
                    report.errors += 1;
                }
            }
            Err(_) => report.errors += 1,
        }
    }
    report.sent = writer_thread.join().unwrap_or(0);
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One synchronous request on a fresh admin connection (stats/shutdown).
fn admin_request(addr: &str, request: &str) -> Option<Json> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    let mut line = String::new();
    writeln!(writer, "{{\"hello\":{{\"tenant\":\"loadgen-admin\"}}}}").ok()?;
    reader.read_line(&mut line).ok()?;
    writeln!(writer, "{request}").ok()?;
    line.clear();
    reader.read_line(&mut line).ok()?;
    Json::parse(line.trim()).ok()
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut conns = 8usize;
    let mut tenants = 8usize;
    let mut zipf_s = 1.0f64;
    let mut rate = 200.0f64;
    let mut duration_s = 5.0f64;
    let mut batch = 1usize;
    let mut seed = 42u64;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Option<f64> {
            args.next().and_then(|v| v.parse().ok()).or_else(|| {
                eprintln!("loadgen: {name} needs a number");
                None
            })
        };
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = Some(v),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--conns" => match num("--conns") {
                Some(v) if v >= 1.0 => conns = v as usize,
                _ => return fail("--conns needs a positive number"),
            },
            "--tenants" => match num("--tenants") {
                Some(v) if v >= 1.0 => tenants = v as usize,
                _ => return fail("--tenants needs a positive number"),
            },
            "--zipf" => match num("--zipf") {
                Some(v) => zipf_s = v,
                None => return fail("--zipf needs a number"),
            },
            "--rate" => match num("--rate") {
                Some(v) if v > 0.0 => rate = v,
                _ => return fail("--rate needs a positive number"),
            },
            "--duration-s" => match num("--duration-s") {
                Some(v) if v > 0.0 => duration_s = v,
                _ => return fail("--duration-s needs a positive number"),
            },
            "--batch" => match num("--batch") {
                Some(v) if v >= 1.0 => batch = v as usize,
                _ => return fail("--batch needs a positive number"),
            },
            "--seed" => match num("--seed") {
                Some(v) => seed = v as u64,
                None => return fail("--seed needs a number"),
            },
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unexpected argument '{other}'")),
        }
    }
    let Some(addr) = addr else {
        return fail("--addr is required");
    };

    // Assign a Zipf-drawn tenant to each connection; the skew is the
    // whole point, so print nothing until the summary.
    let mut rng = Rng::new(seed);
    let zipf = Zipf::new(tenants, zipf_s);
    let assignment: Vec<usize> = (0..conns).map(|_| zipf.sample(&mut rng)).collect();

    let plan = Plan {
        addr: addr.clone(),
        interval: Duration::from_secs_f64(conns as f64 / rate),
        deadline: Duration::from_secs_f64(duration_s),
        batch,
    };

    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let plan = &plan;
        let handles: Vec<_> = assignment
            .iter()
            .map(|&tenant| {
                scope.spawn(move || {
                    let mut report = ConnReport::default();
                    run_connection(plan, tenant, &mut report);
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let stats = admin_request(&addr, r#"{"op":"stats"}"#);
    if shutdown {
        admin_request(&addr, r#"{"op":"shutdown"}"#);
    }

    let mut latencies: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.latencies_ms.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let sent: u64 = reports.iter().map(|r| r.sent).sum();
    let ok: u64 = reports.iter().map(|r| r.ok).sum();
    let overload: u64 = reports.iter().map(|r| r.overload).sum();
    let errors: u64 = reports.iter().map(|r| r.errors).sum();
    let completed = ok + overload + errors;
    let disconnected = reports.iter().filter(|r| r.disconnected).count();

    let mut per_tenant: Vec<(String, Json)> = Vec::new();
    for t in 0..tenants {
        let of_tenant: Vec<&ConnReport> = reports.iter().filter(|r| r.tenant == t).collect();
        if of_tenant.is_empty() {
            continue;
        }
        per_tenant.push((
            format!("t{t}"),
            obj(vec![
                ("conns", Json::Num(of_tenant.len() as f64)),
                (
                    "ok",
                    Json::Num(of_tenant.iter().map(|r| r.ok).sum::<u64>() as f64),
                ),
                (
                    "overload",
                    Json::Num(of_tenant.iter().map(|r| r.overload).sum::<u64>() as f64),
                ),
            ]),
        ));
    }

    let hit_rate = stats
        .as_ref()
        .and_then(|s| s.get("hit_rate"))
        .cloned()
        .unwrap_or(Json::Null);
    let summary = obj(vec![
        ("bench", Json::Str("loadgen".into())),
        ("addr", Json::Str(addr)),
        ("conns", Json::Num(conns as f64)),
        ("tenants", Json::Num(tenants as f64)),
        ("zipf_s", Json::Num(zipf_s)),
        ("batch", Json::Num(batch as f64)),
        ("rate_target", Json::Num(rate)),
        ("duration_s", Json::Num(elapsed)),
        ("sent", Json::Num(sent as f64)),
        ("completed", Json::Num(completed as f64)),
        ("ok", Json::Num(ok as f64)),
        ("overload", Json::Num(overload as f64)),
        ("errors", Json::Num(errors as f64)),
        ("disconnected", Json::Num(disconnected as f64)),
        (
            "achieved_rps",
            Json::Num(if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            }),
        ),
        (
            "rejection_rate",
            Json::Num(if completed > 0 {
                overload as f64 / completed as f64
            } else {
                0.0
            }),
        ),
        ("p50_ms", Json::Num(percentile(&latencies, 0.50))),
        ("p99_ms", Json::Num(percentile(&latencies, 0.99))),
        ("registry_hit_rate", hit_rate),
        ("per_tenant", Json::Obj(per_tenant)),
    ]);
    println!("{}", summary.render());

    // The generator degrading to zero completions is a failed run — CI
    // keys off this exit code.
    if completed == 0 {
        eprintln!("loadgen: no request completed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
