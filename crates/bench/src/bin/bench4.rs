//! `bench4` — one BENCH_4 scheduling measurement per process.
//!
//! ```text
//! bench4 [--jobs N] [--nodes N] [--platform NAME] [--max-slowdown X] [--seed N]
//! ```
//!
//! Builds a deterministic mixed queue of send-heavy and compute-heavy
//! jobs — the worst case for contention-blind placement, because
//! packing two bandwidth hogs together saturates the memory bus while
//! a compute job would have shared it for free — schedules it with all
//! three policies on an identical fleet, and prints one JSON object
//! with each policy's cluster makespan, throughput, and threshold
//! violations plus the contention-aware speedup over the naive
//! baselines. A shell loop over queue sizes assembles `BENCH_4.json`
//! (see EXPERIMENTS.md).

use std::process::ExitCode;
use std::time::Instant;

use mc_model::{ModelRegistry, PhaseProfile};
use mc_sched::{policy_by_name, policy_names, Evaluator, Fleet, JobSpec, SchedulePlan};
use mc_topology::platforms;

fn usage() -> &'static str {
    "usage: bench4 [--jobs N] [--nodes N] [--platform NAME] [--max-slowdown X] [--seed N]"
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench4: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}

/// The adversarial queue: alternate comm-heavy shuffles with
/// compute-heavy solvers so arrival order anti-correlates with the
/// pairing a contention-aware packer would choose. Sizes cycle through
/// three tiers to keep the queue heterogeneous at any length.
fn mixed_queue(jobs: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let tier = 1.0 + (i / 2 % 3) as f64 * 0.5;
            let (name, compute_gb, comm_gb) = if i % 2 == 0 {
                ("shuffle", 2.0 * tier, 12.0 * tier)
            } else {
                ("solver", 25.0 * tier, 1.0 * tier)
            };
            JobSpec {
                name: format!("{name}{i}"),
                profile: PhaseProfile {
                    compute_bytes: compute_gb * 1e9,
                    comm_bytes: comm_gb * 1e9,
                    max_cores: 8,
                },
            }
        })
        .collect()
}

fn plan_json(p: &SchedulePlan) -> String {
    format!(
        "{{\"makespan_s\":{:.6},\"throughput_jobs_per_s\":{:.4},\"colocated\":{},\
         \"violations\":{}}}",
        p.makespan, p.throughput, p.colocated, p.violations
    )
}

fn main() -> ExitCode {
    let mut jobs = 8usize;
    let mut nodes = 4usize;
    let mut platform_name = "henri".to_string();
    let mut max_slowdown = 1.25f64;
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return fail("--jobs needs a number"),
            },
            "--nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => nodes = v,
                None => return fail("--nodes needs a number"),
            },
            "--platform" => match args.next() {
                Some(v) => platform_name = v,
                None => return fail("--platform needs a name"),
            },
            "--max-slowdown" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_slowdown = v,
                None => return fail("--max-slowdown needs a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return fail("--seed needs a number"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unexpected argument '{other}'")),
        }
    }
    if jobs == 0 || nodes == 0 {
        return fail("--jobs and --nodes must be at least 1");
    }
    let Some(platform) = platforms::by_name(&platform_name) else {
        return fail(&format!("unknown platform '{platform_name}'"));
    };

    let queue = mixed_queue(jobs);
    let registry = ModelRegistry::new(8);
    let fleet = match Fleet::build(vec![platform; nodes], &registry) {
        Ok(f) => f,
        Err(e) => return fail(&e.to_string()),
    };
    if let Err(e) = fleet.validate_jobs(&queue) {
        return fail(&e.to_string());
    }

    let mut ev = Evaluator::new(&queue, &fleet);
    let t0 = Instant::now();
    let mut plans = Vec::new();
    for name in policy_names() {
        let policy = policy_by_name(name, max_slowdown, seed).expect("known policy");
        let assignment = policy.assign(&mut ev);
        plans.push(ev.plan(name, &assignment, max_slowdown));
    }
    let wall = t0.elapsed().as_secs_f64();

    let aware = plans
        .iter()
        .find(|p| p.policy == "contention_aware")
        .expect("contention_aware ran");
    let speedup = |p: &SchedulePlan| {
        if aware.makespan > 0.0 {
            p.makespan / aware.makespan
        } else {
            1.0
        }
    };
    let per_policy = plans
        .iter()
        .map(|p| format!("\"{}\":{}", p.policy, plan_json(p)))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "{{\"jobs\":{},\"fleet\":\"{}\",\"max_slowdown\":{},\"seed\":{},\"wall_s\":{:.3},\
         \"node_simulations\":{},{},\"speedup_vs_first_fit\":{:.4},\
         \"speedup_vs_round_robin\":{:.4}}}",
        jobs,
        fleet.describe(),
        max_slowdown,
        seed,
        wall,
        ev.sims(),
        per_policy,
        speedup(plans.iter().find(|p| p.policy == "first_fit").unwrap()),
        speedup(plans.iter().find(|p| p.policy == "round_robin").unwrap()),
    );
    ExitCode::SUCCESS
}
