//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything, into ./out/
//! repro table1 table2       # just the tables (stdout + files)
//! repro fig2 fig3 ... fig8  # figures (SVG + CSV into ./out/)
//! repro ablation            # model-vs-baselines ablation table
//! repro sensitivity         # kernel/pattern sensitivity study (henri)
//! repro calibrate           # print the calibrated parameters per platform
//! repro evaluate-csv FILE   # score a measured-sweep CSV (see --sweep-csv)
//! repro --out DIR ...       # choose the output directory
//! repro --event-driven ...  # measure with the discrete-event engine
//! repro --exact ...         # disable measurement noise
//! repro --metrics FILE ...  # export pipeline metrics as JSON lines
//! repro --trace FILE ...    # export pipeline spans as JSON lines
//! repro --sweep-csv FILE    # sweep CSV for the evaluate-csv target
//! ```
//!
//! Exit codes follow the `memcontend` contract: 0 success, 2 usage
//! mistakes, 3 invalid or degenerate input data, 4 file I/O failures.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use mc_bench::figures::{figure1, figure2, placement_grid, predictions_csv, FIGURE_PLATFORMS};
use mc_bench::tables::{table1, table2};
use mc_cli::CliError;
use mc_membench::{Backend, BenchConfig, PlatformSweep};
use mc_model::McError;
use mc_topology::platforms;

fn usage() -> &'static str {
    "usage: repro [--out DIR] [--event-driven] [--exact] [--metrics FILE] [--trace FILE] \
     [--sweep-csv FILE] \
     [all|table1|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|ablation|sensitivity|calibrate|timeline|msgsize|heatmap|gantt|dualsocket|evaluate-csv]..."
}

fn write(out_dir: &Path, name: &str, content: &str) -> Result<(), CliError> {
    let path = out_dir.join(name);
    fs::write(&path, content).map_err(|e| McError::io(path.display().to_string(), e))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run_figure(fig: u8, config: BenchConfig, out_dir: &Path) -> Result<(), CliError> {
    let name = FIGURE_PLATFORMS
        .iter()
        .find(|(f, _)| *f == fig)
        .map(|(_, n)| *n)
        .ok_or_else(|| CliError::UnknownCommand(format!("fig{fig}")))?;
    let platform =
        platforms::by_name(name).ok_or_else(|| CliError::UnknownPlatform(name.to_string()))?;
    let (grid, sweep) = placement_grid(&platform, config)?;
    let cell = if platform.topology.numa_count() > 2 {
        (280.0, 200.0)
    } else {
        (360.0, 260.0)
    };
    write(
        out_dir,
        &format!("fig{fig}_{name}.svg"),
        &grid.render(cell.0, cell.1).render(),
    )?;
    write(
        out_dir,
        &format!("fig{fig}_{name}_measured.csv"),
        &sweep.to_csv(),
    )?;
    write(
        out_dir,
        &format!("fig{fig}_{name}_predicted.csv"),
        &predictions_csv(&platform, &sweep)?,
    )
}

/// Score a measured-sweep CSV against the calibrated model of its own
/// platform — the path that exercises the 3/4 exit codes on degenerate or
/// unreadable data.
fn evaluate_csv(path: &str, out_dir: &Path) -> Result<(), CliError> {
    let text = fs::read_to_string(path).map_err(|e| McError::io(path, e))?;
    let sweep = PlatformSweep::from_csv(&text).map_err(McError::from)?;
    let platform = platforms::by_name(&sweep.platform)
        .ok_or_else(|| CliError::UnknownPlatform(sweep.platform.clone()))?;
    let e = mc_bench::tables::evaluate_from_sweep(&platform, &sweep)?;
    let out = format!(
        "SWEEP EVALUATION — {} ({path})\n\
         comm all: {:.2} %  comp all: {:.2} %  average: {:.2} %\n",
        platform.name(),
        e.comm_all,
        e.comp_all,
        e.average
    );
    print!("{out}");
    write(out_dir, "evaluate_csv.txt", &out)
}

struct Flags {
    out_dir: PathBuf,
    config: BenchConfig,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    sweep_csv: Option<String>,
    targets: Vec<String>,
    help: bool,
}

fn parse_flags(mut argv: impl Iterator<Item = String>) -> Result<Flags, CliError> {
    let mut flags = Flags {
        out_dir: PathBuf::from("out"),
        config: BenchConfig::default(),
        metrics: None,
        trace: None,
        sweep_csv: None,
        targets: Vec::new(),
        help: false,
    };
    while let Some(arg) = argv.next() {
        let mut value = |key: &str| -> Result<String, CliError> {
            argv.next()
                .ok_or_else(|| CliError::MissingValue(key.into()))
        };
        match arg.as_str() {
            "--out" => flags.out_dir = PathBuf::from(value("out")?),
            "--metrics" => flags.metrics = Some(PathBuf::from(value("metrics")?)),
            "--trace" => flags.trace = Some(PathBuf::from(value("trace")?)),
            "--sweep-csv" => flags.sweep_csv = Some(value("sweep-csv")?),
            "--event-driven" => flags.config.backend = Backend::EventDriven,
            "--exact" => flags.config.noisy = false,
            "-h" | "--help" => flags.help = true,
            t if !t.starts_with('-') => flags.targets.push(t.to_string()),
            other => return Err(CliError::UnknownCommand(other.to_string())),
        }
    }
    if flags.targets.is_empty() {
        flags.targets.push("all".into());
    }
    Ok(flags)
}

fn run(flags: &Flags) -> Result<(), CliError> {
    let out_dir = &flags.out_dir;
    let config = flags.config;
    fs::create_dir_all(out_dir).map_err(|e| McError::io(out_dir.display().to_string(), e))?;

    let all = flags.targets.iter().any(|t| t == "all");
    let wants = |t: &str| all || flags.targets.iter().any(|x| x == t);

    if wants("table1") {
        let t = table1();
        println!("{t}");
        write(out_dir, "table1.txt", &t)?;
    }
    if wants("fig1") {
        let f = figure1();
        write(out_dir, "fig1_topologies.txt", &f)?;
    }
    if wants("fig2") {
        let _span = mc_obs::span("repro.fig2", &[]);
        let data = figure2(config)?;
        write(
            out_dir,
            "fig2_stacked.svg",
            &data.render(720.0, 460.0).render(),
        )?;
        let mut csv = String::from("n_cores,comp_par,comm_par,comp_alone\n");
        for i in 0..data.n_cores.len() {
            csv.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                data.n_cores[i], data.comp_par[i], data.comm_par[i], data.comp_alone[i]
            ));
        }
        write(out_dir, "fig2_stacked.csv", &csv)?;
    }
    for fig in 3u8..=8 {
        if wants(&format!("fig{fig}")) {
            let _span = mc_obs::span(
                "repro.figure",
                &[("figure", mc_obs::TagValue::U64(fig as u64))],
            );
            run_figure(fig, config, out_dir)?;
        }
    }
    if wants("table2") {
        let _span = mc_obs::span("repro.table2", &[]);
        let t = table2(config)?;
        println!("{t}");
        write(out_dir, "table2.txt", &t)?;
    }
    if wants("ablation") {
        let t = mc_bench::ablation::ablation_table(config)?;
        println!("{t}");
        write(out_dir, "ablation.txt", &t)?;
    }
    if wants("heatmap") {
        for name in ["henri", "pyxis", "henri-subnuma"] {
            let p = platforms::by_name(name)
                .ok_or_else(|| CliError::UnknownPlatform(name.to_string()))?;
            let hm = mc_bench::figures::error_heatmap(&p, config)?;
            write(
                out_dir,
                &format!("extra_heatmap_{name}.svg"),
                &hm.render(86.0).render(),
            )?;
        }
    }
    if wants("timeline") {
        let chart = mc_bench::figures::timeline_figure();
        write(
            out_dir,
            "extra_timeline.svg",
            &chart.render(820.0, 420.0).render(),
        )?;
    }
    if wants("gantt") {
        let gantt = mc_bench::figures::overlap_gantt();
        write(out_dir, "extra_gantt.svg", &gantt.render(860.0).render())?;
    }
    if wants("msgsize") {
        let mut cfg = config;
        cfg.backend = Backend::EventDriven;
        let p = platforms::by_name("henri").expect("built-in platform");
        let t = mc_bench::msgsize::msgsize_table(&p, cfg)?;
        println!("{t}");
        write(out_dir, "msgsize.txt", &t)?;
    }
    if wants("dualsocket") {
        let p = platforms::by_name("henri").expect("built-in platform");
        let t = mc_bench::dualsocket::dual_socket_table(&p);
        println!("{t}");
        write(out_dir, "dualsocket.txt", &t)?;
    }
    if wants("sensitivity") {
        let p = platforms::by_name("henri").expect("built-in platform");
        let t = mc_bench::sensitivity::sensitivity_table(&p, config)?;
        println!("{t}");
        write(out_dir, "sensitivity.txt", &t)?;
    }
    if wants("calibrate") {
        let mut out = String::from("CALIBRATED MODEL PARAMETERS PER PLATFORM\n");
        for p in platforms::all() {
            let sweep = mc_membench::sweep_platform_parallel(&p, config);
            let model = mc_bench::tables::calibrated_model(&p, &sweep)?;
            out.push_str(&format!(
                "{}\n  M_local : {}\n  M_remote: {}\n",
                p.name(),
                model.local().params(),
                model.remote().params()
            ));
        }
        println!("{out}");
        write(out_dir, "calibration.txt", &out)?;
    }
    if wants("evaluate-csv") {
        let path = flags
            .sweep_csv
            .as_deref()
            .ok_or(CliError::MissingOption("sweep-csv"))?;
        evaluate_csv(path, out_dir)?;
    }
    Ok(())
}

/// Write the recorder's exports, if requested. Runs even when the targets
/// failed, so a partial run still leaves its metrics behind.
fn export_observability(flags: &Flags, registry: &mc_obs::Registry) -> Result<(), CliError> {
    if let Some(path) = &flags.metrics {
        fs::write(path, registry.metrics_json_lines())
            .map_err(|e| McError::io(path.display().to_string(), e))?;
        println!("wrote {}", path.display());
    }
    if let Some(path) = &flags.trace {
        fs::write(path, registry.trace_json_lines())
            .map_err(|e| McError::io(path.display().to_string(), e))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let flags = match parse_flags(std::env::args().skip(1)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("repro: {e}\n{}", usage());
            return ExitCode::from(e.exit_code());
        }
    };
    if flags.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let registry = (flags.metrics.is_some() || flags.trace.is_some()).then(|| {
        let registry = Arc::new(mc_obs::Registry::new());
        mc_obs::set_recorder(registry.clone());
        registry
    });

    let result = run(&flags);
    let export = match &registry {
        Some(r) => export_observability(&flags, r),
        None => Ok(()),
    };
    mc_obs::clear_recorder();

    for e in [&result, &export]
        .into_iter()
        .filter_map(|r| r.as_ref().err())
    {
        eprintln!("repro: {e}");
        if e.is_usage() {
            eprintln!("{}", usage());
        }
    }
    match result.and(export) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => ExitCode::from(e.exit_code()),
    }
}
