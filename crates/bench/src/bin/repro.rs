//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything, into ./out/
//! repro table1 table2       # just the tables (stdout + files)
//! repro fig2 fig3 ... fig8  # figures (SVG + CSV into ./out/)
//! repro ablation            # model-vs-baselines ablation table
//! repro sensitivity         # kernel/pattern sensitivity study (henri)
//! repro calibrate           # print the calibrated parameters per platform
//! repro --out DIR ...       # choose the output directory
//! repro --event-driven ...  # measure with the discrete-event engine
//! repro --exact ...         # disable measurement noise
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mc_bench::figures::{figure1, figure2, placement_grid, predictions_csv, FIGURE_PLATFORMS};
use mc_bench::tables::{table1, table2};
use mc_membench::{Backend, BenchConfig};
use mc_topology::platforms;

fn usage() -> &'static str {
    "usage: repro [--out DIR] [--event-driven] [--exact] \
     [all|table1|table2|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|ablation|sensitivity|calibrate|timeline|msgsize|heatmap|gantt|dualsocket]..."
}

fn write(out_dir: &Path, name: &str, content: &str) {
    let path = out_dir.join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn run_figure(fig: u8, config: BenchConfig, out_dir: &Path) {
    let name = FIGURE_PLATFORMS
        .iter()
        .find(|(f, _)| *f == fig)
        .map(|(_, n)| *n)
        .unwrap_or_else(|| panic!("no platform for figure {fig}"));
    let platform = platforms::by_name(name).expect("known platform");
    let (grid, sweep) = placement_grid(&platform, config);
    let cell = if platform.topology.numa_count() > 2 {
        (280.0, 200.0)
    } else {
        (360.0, 260.0)
    };
    write(
        out_dir,
        &format!("fig{fig}_{name}.svg"),
        &grid.render(cell.0, cell.1).render(),
    );
    write(
        out_dir,
        &format!("fig{fig}_{name}_measured.csv"),
        &sweep.to_csv(),
    );
    write(
        out_dir,
        &format!("fig{fig}_{name}_predicted.csv"),
        &predictions_csv(&platform, &sweep),
    );
}

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("out");
    let mut config = BenchConfig::default();
    let mut targets: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--event-driven" => config.backend = Backend::EventDriven,
            "--exact" => config.noisy = false,
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    fs::create_dir_all(&out_dir).expect("create output directory");

    let all = targets.iter().any(|t| t == "all");
    let wants = |t: &str| all || targets.iter().any(|x| x == t);

    if wants("table1") {
        let t = table1();
        println!("{t}");
        write(&out_dir, "table1.txt", &t);
    }
    if wants("fig1") {
        let f = figure1();
        write(&out_dir, "fig1_topologies.txt", &f);
    }
    if wants("fig2") {
        let data = figure2(config);
        write(
            &out_dir,
            "fig2_stacked.svg",
            &data.render(720.0, 460.0).render(),
        );
        let mut csv = String::from("n_cores,comp_par,comm_par,comp_alone\n");
        for i in 0..data.n_cores.len() {
            csv.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                data.n_cores[i], data.comp_par[i], data.comm_par[i], data.comp_alone[i]
            ));
        }
        write(&out_dir, "fig2_stacked.csv", &csv);
    }
    for fig in 3u8..=8 {
        if wants(&format!("fig{fig}")) {
            run_figure(fig, config, &out_dir);
        }
    }
    if wants("table2") {
        let t = table2(config);
        println!("{t}");
        write(&out_dir, "table2.txt", &t);
    }
    if wants("ablation") {
        let t = mc_bench::ablation::ablation_table(config);
        println!("{t}");
        write(&out_dir, "ablation.txt", &t);
    }
    if wants("heatmap") {
        for name in ["henri", "pyxis", "henri-subnuma"] {
            let p = platforms::by_name(name).expect("known platform");
            let hm = mc_bench::figures::error_heatmap(&p, config);
            write(
                &out_dir,
                &format!("extra_heatmap_{name}.svg"),
                &hm.render(86.0).render(),
            );
        }
    }
    if wants("timeline") {
        let chart = mc_bench::figures::timeline_figure();
        write(
            &out_dir,
            "extra_timeline.svg",
            &chart.render(820.0, 420.0).render(),
        );
    }
    if wants("gantt") {
        let gantt = mc_bench::figures::overlap_gantt();
        write(&out_dir, "extra_gantt.svg", &gantt.render(860.0).render());
    }
    if wants("msgsize") {
        let mut cfg = config;
        cfg.backend = Backend::EventDriven;
        let t = mc_bench::msgsize::msgsize_table("henri", cfg);
        println!("{t}");
        write(&out_dir, "msgsize.txt", &t);
    }
    if wants("dualsocket") {
        let t = mc_bench::dualsocket::dual_socket_table("henri");
        println!("{t}");
        write(&out_dir, "dualsocket.txt", &t);
    }
    if wants("sensitivity") {
        let t = mc_bench::sensitivity::sensitivity_table("henri", config);
        println!("{t}");
        write(&out_dir, "sensitivity.txt", &t);
    }
    if wants("calibrate") {
        let mut out = String::from("CALIBRATED MODEL PARAMETERS PER PLATFORM\n");
        for p in platforms::all() {
            let sweep = mc_membench::sweep_platform_parallel(&p, config);
            let model = mc_bench::tables::calibrated_model(&p, &sweep);
            out.push_str(&format!(
                "{}\n  M_local : {}\n  M_remote: {}\n",
                p.name(),
                model.local().params(),
                model.remote().params()
            ));
        }
        println!("{out}");
        write(&out_dir, "calibration.txt", &out);
    }

    ExitCode::SUCCESS
}
