//! # mc-bench — reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation against the
//! simulated platforms, and hosts the criterion performance benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod dualsocket;
pub mod figures;
pub mod msgsize;
pub mod sensitivity;
pub mod tables;
