//! Criterion benches of the measurement + calibration pipeline: one
//! placement sweep, the two-sweep calibration, and a full Table II row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mc_bench::tables::evaluate_platform;
use mc_membench::{calibration_sweeps, sweep_platform_parallel, BenchConfig, BenchRunner};
use mc_model::ContentionModel;
use mc_topology::{platforms, NumaId};

fn sweep_and_calibrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(20);

    let p = platforms::henri();
    group.bench_function("one_placement_sweep", |b| {
        let runner = BenchRunner::new(&p, BenchConfig::default());
        b.iter(|| runner.run_placement(black_box(NumaId::new(0)), NumaId::new(0)))
    });

    group.bench_function("two_sweep_model_calibration", |b| {
        b.iter(|| {
            let (local, remote) = calibration_sweeps(&p, BenchConfig::default());
            ContentionModel::calibrate(&p.topology, &local, &remote).unwrap()
        })
    });

    for plat in [platforms::henri(), platforms::henri_subnuma()] {
        group.bench_with_input(
            BenchmarkId::new("full_table2_row", plat.name().to_string()),
            &plat,
            |b, plat| b.iter(|| evaluate_platform(black_box(plat), BenchConfig::default())),
        );
    }

    // Event-driven sweep through the runner's persistent solve cache: the
    // workload the memoization tentpole targets.
    group.bench_function("event_driven_placement_sweep", |b| {
        let mut cfg = BenchConfig::event_driven();
        cfg.window = 0.05;
        cfg.warmup = 0.02;
        let runner = BenchRunner::new(&p, cfg);
        b.iter(|| runner.run_placement(black_box(NumaId::new(0)), NumaId::new(0)))
    });

    // The pooled point-stealing scheduler over a whole platform.
    group.bench_function("pooled_platform_sweep", |b| {
        b.iter(|| sweep_platform_parallel(black_box(&p), BenchConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, sweep_and_calibrate);
criterion_main!(benches);
