//! Criterion benches of the discrete-event engine: a full parallel
//! benchmark phase (n compute kernels + one message stream).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mc_memsim::engine::{Activity, ActivityKind, Engine};
use mc_memsim::fabric::Fabric;
use mc_topology::{platforms, NumaId};

fn parallel_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/parallel_phase");
    group.sample_size(20);
    for p in [platforms::henri(), platforms::diablo()] {
        let fabric = Fabric::new(&p);
        let mut acts: Vec<Activity> = (0..p.max_compute_cores())
            .map(|i| Activity {
                kind: ActivityKind::Compute {
                    numa: NumaId::new(0),
                    bytes_per_pass: 256e6,
                    pass_overhead: 2e-6,
                },
                start: i as f64 * 1.3e-5,
            })
            .collect();
        acts.push(Activity {
            kind: ActivityKind::CommRecv {
                numa: NumaId::new(0),
                msg_bytes: 64e6,
                handshake: 2e-6,
                gap: 1e-6,
            },
            start: 0.0,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &acts,
            |b, acts| {
                b.iter(|| Engine::new(&fabric).run(black_box(acts), 0.05, 0.3));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_phase);
criterion_main!(benches);
