//! Criterion benches of the discrete-event engine: a full parallel
//! benchmark phase (n compute kernels + one message stream), run through
//! the uncached reference path, through a cold memoizing engine, and
//! through a warm one (the steady-state regime of a placement sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mc_memsim::engine::{Activity, ActivityKind, Engine};
use mc_memsim::fabric::Fabric;
use mc_topology::{platforms, NumaId, Platform};

fn parallel_acts(p: &Platform) -> Vec<Activity> {
    let mut acts: Vec<Activity> = (0..p.max_compute_cores())
        .map(|i| Activity {
            kind: ActivityKind::Compute {
                numa: NumaId::new(0),
                bytes_per_pass: 256e6,
                pass_overhead: 2e-6,
            },
            start: i as f64 * 1.3e-5,
        })
        .collect();
    acts.push(Activity {
        kind: ActivityKind::CommRecv {
            numa: NumaId::new(0),
            msg_bytes: 64e6,
            handshake: 2e-6,
            gap: 1e-6,
        },
        start: 0.0,
    });
    acts
}

fn parallel_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/parallel_phase");
    group.sample_size(20);
    for p in [platforms::henri(), platforms::diablo()] {
        let fabric = Fabric::new(&p);
        let acts = parallel_acts(&p);
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &acts,
            |b, acts| {
                b.iter(|| Engine::new(&fabric).run(black_box(acts), 0.05, 0.3));
            },
        );
    }
    group.finish();
}

/// The pre-memoization reference: every event runs the solver.
fn parallel_phase_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/parallel_phase_uncached");
    group.sample_size(20);
    for p in [platforms::henri(), platforms::diablo()] {
        let fabric = Fabric::new(&p);
        let acts = parallel_acts(&p);
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &acts,
            |b, acts| {
                let engine = Engine::new(&fabric).uncached();
                b.iter(|| engine.run(black_box(acts), 0.05, 0.3));
            },
        );
    }
    group.finish();
}

/// The steady-state regime: one engine reused across runs, so nearly
/// every event is a cache hit — how runs behave inside a placement sweep.
fn parallel_phase_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/parallel_phase_warm");
    group.sample_size(20);
    for p in [platforms::henri(), platforms::diablo()] {
        let fabric = Fabric::new(&p);
        let acts = parallel_acts(&p);
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &acts,
            |b, acts| {
                let engine = Engine::new(&fabric);
                engine.run(acts, 0.05, 0.3); // warm the solve cache
                b.iter(|| engine.run(black_box(acts), 0.05, 0.3));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    parallel_phase,
    parallel_phase_uncached,
    parallel_phase_warm_cache
);
criterion_main!(benches);
