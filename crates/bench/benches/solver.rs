//! Criterion benches of the tiered max-min solver — the innermost kernel
//! of the simulator (invoked at every discrete event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mc_memsim::fabric::{Fabric, FabricScratch, SolveResult};
use mc_memsim::solver::{allocate, allocate_into, Allocation, FlowReq, FlowSet, SolverScratch};
use mc_topology::{platforms, NumaId};

fn bench_raw_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/allocate");
    for &n in &[4usize, 16, 64, 256] {
        let mut flows: Vec<FlowReq> = (0..n).map(|_| FlowReq::cpu(vec![0], 5.6)).collect();
        flows.push(FlowReq::dma(vec![0, 1, 2], 11.3, 2.8));
        let caps = [80.0, 13.8, 11.3];
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            b.iter(|| allocate(black_box(&caps), black_box(flows)))
        });
    }
    group.finish();
}

/// The arena/scratch twin of `bench_raw_allocate`: zero allocations per
/// solve once the scratch is warm.
fn bench_arena_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/allocate_into");
    for &n in &[4usize, 16, 64, 256] {
        let mut flows: Vec<FlowReq> = (0..n).map(|_| FlowReq::cpu(vec![0], 5.6)).collect();
        flows.push(FlowReq::dma(vec![0, 1, 2], 11.3, 2.8));
        let arena = FlowSet::from_reqs(&flows);
        let caps = [80.0, 13.8, 11.3];
        group.bench_with_input(BenchmarkId::from_parameter(n), &arena, |b, arena| {
            let mut scratch = SolverScratch::default();
            let mut out = Allocation::default();
            b.iter(|| {
                allocate_into(black_box(&caps), black_box(arena), &mut scratch, &mut out);
                out.rates[0]
            })
        });
    }
    group.finish();
}

fn bench_fabric_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/fabric_solve");
    for p in platforms::all() {
        let fabric = Fabric::new(&p);
        let streams = Fabric::benchmark_streams(
            p.max_compute_cores(),
            Some(NumaId::new(0)),
            Some(NumaId::new(0)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &streams,
            |b, streams| b.iter(|| fabric.solve(black_box(streams))),
        );
    }
    group.finish();
}

/// `Fabric::solve_into` with caller-held scratch and output buffers — the
/// path the engine actually runs on a cache miss.
fn bench_fabric_solve_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/fabric_solve_into");
    for p in platforms::all() {
        let fabric = Fabric::new(&p);
        let streams = Fabric::benchmark_streams(
            p.max_compute_cores(),
            Some(NumaId::new(0)),
            Some(NumaId::new(0)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &streams,
            |b, streams| {
                let mut scratch = FabricScratch::default();
                let mut out = SolveResult::default();
                b.iter(|| {
                    fabric.solve_into(black_box(streams), 1.0, &mut scratch, &mut out);
                    out.rates[0]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_raw_allocate,
    bench_arena_allocate,
    bench_fabric_solve,
    bench_fabric_solve_into
);
criterion_main!(benches);
