//! Criterion benches of the analytical model: single predictions, full
//! placement grids, and the placement advisor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mc_bench::tables::calibrated_model;
use mc_membench::{sweep_platform, BenchConfig};
use mc_model::{rank, PhaseProfile};
use mc_topology::{platforms, NumaId};

fn model_benches(c: &mut Criterion) {
    let platform = platforms::henri_subnuma();
    let sweep = sweep_platform(&platform, BenchConfig::default());
    let model = calibrated_model(&platform, &sweep).expect("calibration succeeds");

    c.bench_function("model/predict_one", |b| {
        b.iter(|| model.predict(black_box(12), NumaId::new(1), NumaId::new(2)))
    });

    c.bench_function("model/predict_full_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (m_comp, m_comm) in model.placements() {
                for n in 1..=17 {
                    let p = model.predict(n, m_comp, m_comm);
                    acc += p.comp + p.comm;
                }
            }
            black_box(acc)
        })
    });

    let phase = PhaseProfile {
        compute_bytes: 40e9,
        comm_bytes: 10e9,
        max_cores: 17,
    };
    c.bench_function("model/advisor_rank", |b| {
        b.iter(|| rank(black_box(&model), black_box(&phase)))
    });
}

criterion_group!(benches, model_benches);
criterion_main!(benches);
