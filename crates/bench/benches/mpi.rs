//! Criterion benches of the MPI-layer simulator: point-to-point streams
//! and collectives over the simulated fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mc_mpisim::{allreduce_ring, barrier, broadcast, Tag, World};
use mc_topology::{platforms, NumaId};

fn point_to_point(c: &mut Criterion) {
    let platform = platforms::henri();
    c.bench_function("mpi/pingpong_64mib", |b| {
        b.iter(|| {
            let mut w = World::pair(&platform);
            let r = w.irecv(0, 1, NumaId::new(0), 64 << 20, Tag(0)).unwrap();
            w.isend(1, 0, NumaId::new(0), 64 << 20, Tag(0)).unwrap();
            black_box(w.wait(r).unwrap())
        })
    });

    c.bench_function("mpi/overlapped_iteration", |b| {
        b.iter(|| {
            let mut w = World::pair(&platform);
            let r = w.irecv(0, 1, NumaId::new(0), 64 << 20, Tag(0)).unwrap();
            w.isend(1, 0, NumaId::new(0), 64 << 20, Tag(0)).unwrap();
            let j = w.start_compute(0, NumaId::new(0), 17, 256 << 20).unwrap();
            w.wait_job(j).unwrap();
            black_box(w.wait(r).unwrap())
        })
    });
}

fn collectives(c: &mut Criterion) {
    let platform = platforms::henri();
    let mut group = c.benchmark_group("mpi/collectives");
    for &ranks in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("barrier", ranks), &ranks, |b, &p| {
            b.iter(|| {
                let mut w = World::homogeneous(&platform, p);
                black_box(barrier(&mut w, NumaId::new(0)).unwrap())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("broadcast_8mib", ranks),
            &ranks,
            |b, &p| {
                b.iter(|| {
                    let mut w = World::homogeneous(&platform, p);
                    black_box(broadcast(&mut w, 0, NumaId::new(0), 8 << 20).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("allreduce_ring_64mib", ranks),
            &ranks,
            |b, &p| {
                b.iter(|| {
                    let mut w = World::homogeneous(&platform, p);
                    black_box(allreduce_ring(&mut w, NumaId::new(0), 64 << 20).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, point_to_point, collectives);
criterion_main!(benches);
