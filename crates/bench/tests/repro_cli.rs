//! Exit-code contract and observability-export tests for the `repro`
//! binary: 0 success, 2 usage mistakes, 3 invalid or degenerate input
//! data, 4 file I/O failures — never a panic on user-reachable paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn missing_flag_value_exits_2() {
    let out = repro(&["table1", "--out"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--out"));
}

#[test]
fn evaluate_csv_without_the_csv_exits_2() {
    let dir = tmp("no-csv");
    let out = repro(&["--out", dir.to_str().unwrap(), "evaluate-csv"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("--sweep-csv"));
}

#[test]
fn unreadable_sweep_csv_exits_4() {
    let dir = tmp("io");
    let missing = dir.join("does-not-exist.csv");
    let out = repro(&[
        "--out",
        dir.to_str().unwrap(),
        "--sweep-csv",
        missing.to_str().unwrap(),
        "evaluate-csv",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
}

#[test]
fn incomplete_sweep_exits_3_not_panic() {
    // A parseable sweep that misses the remote calibration placement: the
    // old code path hit `.expect("placement measured")` and aborted.
    let dir = tmp("degenerate");
    let csv = dir.join("partial.csv");
    std::fs::write(
        &csv,
        "platform,m_comp,m_comm,n_cores,comp_alone,comm_alone,comp_par,comm_par\n\
         henri,0,0,1,5.6,11.0,5.6,11.0\n\
         henri,0,0,2,11.2,11.0,11.2,10.5\n",
    )
    .expect("write csv");
    let out = repro(&[
        "--out",
        dir.to_str().unwrap(),
        "--sweep-csv",
        csv.to_str().unwrap(),
        "evaluate-csv",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("placement"), "{}", stderr(&out));
}

#[test]
fn non_finite_csv_cell_exits_3_with_line_number() {
    let dir = tmp("nan");
    let csv = dir.join("nan.csv");
    std::fs::write(
        &csv,
        "platform,m_comp,m_comm,n_cores,comp_alone,comm_alone,comp_par,comm_par\n\
         henri,0,0,1,5.6,NaN,5.6,11.0\n",
    )
    .expect("write csv");
    let out = repro(&[
        "--out",
        dir.to_str().unwrap(),
        "--sweep-csv",
        csv.to_str().unwrap(),
        "evaluate-csv",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
}

#[test]
fn unknown_platform_in_csv_exits_2() {
    let dir = tmp("unknown-platform");
    let csv = dir.join("alien.csv");
    std::fs::write(
        &csv,
        "platform,m_comp,m_comm,n_cores,comp_alone,comm_alone,comp_par,comm_par\n\
         alien,0,0,1,5.6,11.0,5.6,11.0\n",
    )
    .expect("write csv");
    let out = repro(&[
        "--out",
        dir.to_str().unwrap(),
        "--sweep-csv",
        csv.to_str().unwrap(),
        "evaluate-csv",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("alien"), "{}", stderr(&out));
}

#[test]
fn metrics_flag_exports_pipeline_metrics() {
    let dir = tmp("metrics");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.jsonl");
    let out = repro(&[
        "--exact",
        "--out",
        dir.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "fig2",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let metrics = std::fs::read_to_string(&metrics).expect("metrics exported");
    assert!(metrics.contains("\"name\":\"sweep.points\""), "{metrics}");
    assert!(metrics.contains("\"type\":\"histogram\""), "{metrics}");
    let trace = std::fs::read_to_string(&trace).expect("trace exported");
    assert!(trace.contains("\"stage\":\"sweep\""), "{trace}");
    assert!(trace.contains("\"stage\":\"calibrate\""), "{trace}");
    assert!(trace.contains("\"stage\":\"repro.fig2\""), "{trace}");
}
