//! Analytic ping-pong benchmark (half round-trip time vs message size).
//!
//! Not part of the paper's evaluation (their benchmark is receive-only
//! "pongs"), but the standard way to characterise a network — and the
//! paper's future work explicitly asks what happens "if application
//! performs communications with bidirectional data movements (i.e.
//! ping-pongs instead of only pongs)". The `pingpong` example uses this
//! module to contrast unidirectional and bidirectional behaviour.

use serde::{Deserialize, Serialize};

use mc_memsim::fabric::{Fabric, StreamSpec};
use mc_topology::NumaId;

use crate::protocol::ProtocolConfig;

/// One point of a ping-pong curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingPongPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Half round-trip time, seconds.
    pub half_rtt: f64,
    /// Observed bandwidth, GB/s.
    pub bandwidth: f64,
}

/// Sweep message sizes on a platform and produce the classic ping-pong
/// curve, assuming both buffers live on `numa` and the fabric is otherwise
/// idle.
pub fn pingpong_curve(
    fabric: &Fabric,
    protocol: &ProtocolConfig,
    numa: NumaId,
    sizes: &[u64],
) -> Vec<PingPongPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let plan = protocol.plan(bytes);
            // Receive side: the DMA rate an idle fabric grants.
            let streams = [StreamSpec::DmaRecv { numa }];
            let rate = fabric.solve(&streams).rates[0];
            let half_rtt = plan.duration_at_rate(rate);
            PingPongPoint {
                bytes,
                half_rtt,
                bandwidth: bytes as f64 / half_rtt / 1e9,
            }
        })
        .collect()
}

/// Standard size ladder: powers of two from 1 B to `max` inclusive.
pub fn size_ladder(max: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 1u64;
    while s <= max {
        v.push(s);
        s <<= 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn ladder_is_powers_of_two() {
        let l = size_ladder(16);
        assert_eq!(l, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn bandwidth_grows_with_size_and_saturates() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let proto = ProtocolConfig::for_tech(p.topology.nic.tech);
        let curve = pingpong_curve(&f, &proto, NumaId::new(0), &size_ladder(64 << 20));
        // Monotone non-decreasing bandwidth along the ladder.
        for w in curve.windows(2) {
            assert!(w[1].bandwidth >= w[0].bandwidth * 0.999);
        }
        // Large messages approach the nominal DMA rate.
        let last = curve.last().unwrap();
        let demand = f.dma_demand(NumaId::new(0));
        assert!(last.bandwidth > demand * 0.98, "{}", last.bandwidth);
        // Tiny messages are latency-bound.
        assert!(curve[0].bandwidth < 0.01);
    }

    #[test]
    fn half_rtt_has_latency_floor() {
        let p = platforms::henri();
        let f = Fabric::new(&p);
        let proto = ProtocolConfig::for_tech(p.topology.nic.tech);
        let curve = pingpong_curve(&f, &proto, NumaId::new(0), &[1]);
        assert!(curve[0].half_rtt >= proto.wire_latency);
    }
}
