//! Message-transfer protocols: eager and rendezvous.
//!
//! High-performance MPI implementations (the paper uses MadMPI, the MPI
//! interface of NewMadeleine) send small messages *eagerly* (payload rides
//! along the first packet) and large messages with a *rendezvous* protocol:
//! the sender posts a Request-To-Send, the receiver answers Clear-To-Send
//! once the receive buffer is known, and the NIC then moves the payload by
//! RDMA directly into the destination buffer. The paper's benchmark
//! exchanges 64 MB messages, firmly in rendezvous territory; the eager path
//! is implemented for completeness (and for the ping-pong example).

use serde::{Deserialize, Serialize};

use mc_topology::NetworkTech;

/// Protocol configuration for one NIC/library pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Messages up to this size (bytes) are sent eagerly.
    pub eager_threshold: u64,
    /// Fixed software overhead per message on each side, seconds
    /// (descriptor preparation, completion handling).
    pub sw_overhead: f64,
    /// One-way wire latency for control messages, seconds.
    pub wire_latency: f64,
}

impl ProtocolConfig {
    /// Default configuration for a network technology: 32 KiB eager
    /// threshold (MadMPI/NewMadeleine ballpark), latency from the
    /// technology table, 0.3 µs software overhead per message.
    pub fn for_tech(tech: NetworkTech) -> Self {
        ProtocolConfig {
            eager_threshold: 32 * 1024,
            sw_overhead: 0.3e-6,
            wire_latency: tech.small_message_latency_us() * 1e-6,
        }
    }

    /// Is a message of `bytes` sent eagerly?
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Build the transfer plan for a message of `bytes`.
    pub fn plan(&self, bytes: u64) -> TransferPlan {
        if self.is_eager(bytes) {
            TransferPlan {
                mode: TransferMode::Eager,
                // Eager: one-way latency plus software overhead, then the
                // payload streams.
                pre_transfer: self.wire_latency + self.sw_overhead,
                payload: bytes,
                post_transfer: self.sw_overhead,
            }
        } else {
            TransferPlan {
                mode: TransferMode::Rendezvous,
                // RTS + CTS round trip plus overhead on both sides.
                pre_transfer: 2.0 * self.wire_latency + 2.0 * self.sw_overhead,
                payload: bytes,
                post_transfer: self.sw_overhead,
            }
        }
    }
}

/// Which protocol path a message takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMode {
    /// Payload piggybacks on the first packet(s).
    Eager,
    /// RTS/CTS handshake, then RDMA of the payload.
    Rendezvous,
}

/// Timing skeleton of one message transfer. The payload phase streams at
/// whatever rate the memory fabric grants the DMA flow; the pre/post phases
/// are fixed latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Protocol path taken.
    pub mode: TransferMode,
    /// Seconds before the payload starts moving.
    pub pre_transfer: f64,
    /// Payload bytes moved by DMA.
    pub payload: u64,
    /// Seconds of wrap-up after the payload lands.
    pub post_transfer: f64,
}

impl TransferPlan {
    /// Total transfer time given a payload rate in GB/s.
    pub fn duration_at_rate(&self, rate_gbs: f64) -> f64 {
        assert!(rate_gbs > 0.0, "rate must be positive");
        self.pre_transfer + self.payload as f64 / (rate_gbs * 1e9) + self.post_transfer
    }

    /// Observed bandwidth (GB/s) for this message at a payload rate: bytes
    /// divided by total time, protocol overheads included — this is what a
    /// benchmark measuring "message size over the necessary time to receive
    /// data" reports.
    pub fn observed_bandwidth(&self, rate_gbs: f64) -> f64 {
        self.payload as f64 / self.duration_at_rate(rate_gbs) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::for_tech(NetworkTech::InfinibandEdr)
    }

    #[test]
    fn small_messages_are_eager() {
        assert!(cfg().is_eager(1024));
        assert_eq!(cfg().plan(1024).mode, TransferMode::Eager);
    }

    #[test]
    fn large_messages_use_rendezvous() {
        let plan = cfg().plan(64 * 1024 * 1024);
        assert_eq!(plan.mode, TransferMode::Rendezvous);
        // Rendezvous pays a full round trip before the payload moves.
        assert!(plan.pre_transfer > cfg().plan(1024).pre_transfer);
    }

    #[test]
    fn threshold_is_inclusive() {
        let c = cfg();
        assert!(c.is_eager(c.eager_threshold));
        assert!(!c.is_eager(c.eager_threshold + 1));
    }

    #[test]
    fn observed_bandwidth_below_payload_rate() {
        let plan = cfg().plan(64 * 1024 * 1024);
        let rate = 11.3;
        let bw = plan.observed_bandwidth(rate);
        assert!(bw < rate);
        // ...but 64 MB messages amortise the handshake almost entirely.
        assert!(bw > rate * 0.99, "{bw}");
    }

    #[test]
    fn small_message_bandwidth_is_latency_bound() {
        let plan = cfg().plan(1024);
        let bw = plan.observed_bandwidth(11.3);
        // 1 KiB in ~1.2 µs is well below 1 GB/s.
        assert!(bw < 1.0, "{bw}");
    }

    #[test]
    fn duration_decreases_with_rate() {
        let plan = cfg().plan(1 << 20);
        assert!(plan.duration_at_rate(10.0) < plan.duration_at_rate(5.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        cfg().plan(1024).duration_at_rate(0.0);
    }

    #[test]
    fn omnipath_has_higher_latency_than_ib() {
        let ib = ProtocolConfig::for_tech(NetworkTech::InfinibandEdr);
        let opa = ProtocolConfig::for_tech(NetworkTech::OmniPath100);
        assert!(opa.wire_latency > ib.wire_latency);
    }
}
