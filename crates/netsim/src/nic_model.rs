//! The receive-side NIC model: turns message streams into engine
//! activities and answers bandwidth questions.

use serde::{Deserialize, Serialize};

use mc_memsim::engine::{Activity, ActivityKind};
use mc_memsim::fabric::Fabric;
use mc_topology::NumaId;

use crate::protocol::ProtocolConfig;

/// Receive-side model of the platform's NIC.
///
/// Wraps the fabric's DMA path with the message protocol: a stream of
/// back-to-back messages becomes a [`mc_memsim::engine::ActivityKind::CommRecv`]
/// whose handshake/gap timings come from the protocol plan.
#[derive(Debug, Clone)]
pub struct NicModel {
    protocol: ProtocolConfig,
}

/// Summary of the NIC's nominal behaviour towards one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NominalReceive {
    /// DMA payload rate granted by an otherwise idle fabric, GB/s.
    pub payload_rate: f64,
    /// Observed bandwidth for one message (protocol overheads included),
    /// GB/s.
    pub observed_bandwidth: f64,
}

impl NicModel {
    /// Model the NIC of `fabric`'s platform with its default protocol
    /// configuration.
    pub fn new(fabric: &Fabric) -> Self {
        NicModel {
            protocol: ProtocolConfig::for_tech(fabric.platform().topology.nic.tech),
        }
    }

    /// Model with an explicit protocol configuration.
    pub fn with_protocol(protocol: ProtocolConfig) -> Self {
        NicModel { protocol }
    }

    /// The protocol configuration in use.
    pub fn protocol(&self) -> &ProtocolConfig {
        &self.protocol
    }

    /// Build the engine activity for receiving `msg_bytes`-sized messages
    /// back to back into `numa`, starting at `start`.
    pub fn receive_activity(&self, numa: NumaId, msg_bytes: u64, start: f64) -> Activity {
        let plan = self.protocol.plan(msg_bytes);
        Activity {
            kind: ActivityKind::CommRecv {
                numa,
                msg_bytes: plan.payload as f64,
                handshake: plan.pre_transfer,
                gap: plan.post_transfer,
            },
            start,
        }
    }

    /// Build the engine activity for sending `msg_bytes`-sized messages
    /// back to back out of `numa` (the NIC reads the payload from memory),
    /// starting at `start`. Timings mirror [`NicModel::receive_activity`]:
    /// the rendezvous handshake and inter-message gap are symmetric.
    pub fn send_activity(&self, numa: NumaId, msg_bytes: u64, start: f64) -> Activity {
        let plan = self.protocol.plan(msg_bytes);
        Activity {
            kind: ActivityKind::CommSend {
                numa,
                msg_bytes: plan.payload as f64,
                handshake: plan.pre_transfer,
                gap: plan.post_transfer,
            },
            start,
        }
    }

    /// Nominal (contention-free) receive behaviour into `numa`.
    pub fn nominal_receive(&self, fabric: &Fabric, numa: NumaId, msg_bytes: u64) -> NominalReceive {
        let payload_rate = fabric.dma_demand(numa);
        let plan = self.protocol.plan(msg_bytes);
        NominalReceive {
            payload_rate,
            observed_bandwidth: plan.observed_bandwidth(payload_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_memsim::engine::Engine;
    use mc_topology::platforms;

    #[test]
    fn activity_carries_protocol_timings() {
        let f = Fabric::new(&platforms::henri());
        let nic = NicModel::new(&f);
        let act = nic.receive_activity(NumaId::new(0), 64 << 20, 0.0);
        match act.kind {
            ActivityKind::CommRecv {
                msg_bytes,
                handshake,
                gap,
                ..
            } => {
                assert_eq!(msg_bytes, (64u64 << 20) as f64);
                assert!(handshake > 0.0);
                assert!(gap > 0.0);
            }
            _ => panic!("wrong activity kind"),
        }
    }

    #[test]
    fn send_activity_mirrors_receive_timings() {
        let f = Fabric::new(&platforms::henri());
        let nic = NicModel::new(&f);
        let recv = nic.receive_activity(NumaId::new(0), 64 << 20, 0.0);
        let send = nic.send_activity(NumaId::new(0), 64 << 20, 0.0);
        match (recv.kind, send.kind) {
            (
                ActivityKind::CommRecv {
                    msg_bytes: rb,
                    handshake: rh,
                    gap: rg,
                    numa: rn,
                },
                ActivityKind::CommSend {
                    msg_bytes: sb,
                    handshake: sh,
                    gap: sg,
                    numa: sn,
                },
            ) => {
                assert_eq!(rb, sb);
                assert_eq!(rh, sh);
                assert_eq!(rg, sg);
                assert_eq!(rn, sn);
            }
            _ => panic!("wrong activity kinds"),
        }
    }

    #[test]
    fn nominal_matches_engine_run() {
        let f = Fabric::new(&platforms::henri());
        let nic = NicModel::new(&f);
        let nominal = nic.nominal_receive(&f, NumaId::new(0), 64 << 20);
        let act = nic.receive_activity(NumaId::new(0), 64 << 20, 0.0);
        let report = Engine::new(&f).run(&[act], 0.05, 0.4);
        let measured = report.activities[0].bandwidth;
        assert!(
            (measured - nominal.observed_bandwidth).abs() / nominal.observed_bandwidth < 0.01,
            "measured {measured}, nominal {}",
            nominal.observed_bandwidth
        );
    }

    #[test]
    fn diablo_nominal_reflects_nic_locality() {
        let f = Fabric::new(&platforms::diablo());
        let nic = NicModel::new(&f);
        let near = nic.nominal_receive(&f, NumaId::new(1), 64 << 20);
        let far = nic.nominal_receive(&f, NumaId::new(0), 64 << 20);
        assert!(near.observed_bandwidth > 1.7 * far.observed_bandwidth);
    }
}
