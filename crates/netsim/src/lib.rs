//! # mc-netsim — NIC and protocol models
//!
//! Receive-side model of the high-performance NICs of the paper's testbed
//! (InfiniBand FDR/EDR/HDR, Omni-Path): eager/rendezvous protocol timing,
//! the DMA path through PCIe and (possibly) the inter-socket bus into the
//! destination NUMA node, and helpers that turn message streams into
//! `mc-memsim` engine activities.
//!
//! ```
//! use mc_memsim::fabric::Fabric;
//! use mc_netsim::NicModel;
//! use mc_topology::{platforms, NumaId};
//!
//! let fabric = Fabric::new(&platforms::henri());
//! let nic = NicModel::new(&fabric);
//! let nominal = nic.nominal_receive(&fabric, NumaId::new(0), 64 << 20);
//! assert!(nominal.observed_bandwidth > 10.0); // EDR ballpark, GB/s
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod nic_model;
pub mod pingpong;
pub mod protocol;

pub use nic_model::{NicModel, NominalReceive};
pub use pingpong::{pingpong_curve, size_ladder, PingPongPoint};
pub use protocol::{ProtocolConfig, TransferMode, TransferPlan};
