//! The workspace's tag vocabulary.
//!
//! Tag keys are a closed, documented set so exported series stay joinable
//! across pipeline stages: a dashboard can group `sweep.point_seconds`
//! and `serve.request_seconds` by the *same* `platform` key only because
//! every call site spells it identically. Instrumented code should take
//! keys from here rather than inlining string literals.
//!
//! The vocabulary grows in layers:
//!
//! * pipeline tags (PR 3): [`PLATFORM`], [`M_COMP`], [`M_COMM`],
//!   [`N_CORES`], [`MODE`], [`RULE`], [`REASON`], [`TARGET`],
//!   [`COMMAND`], [`WORKERS`], [`PREDICTOR`];
//! * serving tags (PR 4): [`OP`], [`RESULT`], [`CACHE`], [`BATCH_SIZE`],
//!   [`CONFIG`];
//! * replay tags (PR 5): [`RANKS`], [`EVENT`], [`PATTERN`];
//! * multi-tenant serving tags (PR 7): [`TENANT`], [`TRANSPORT`];
//! * scheduler tags (PR 8): [`POLICY`], [`FLEET`].

/// Platform name (`henri`, `dahu`, …) or `file:<path>` pseudo-platforms.
pub const PLATFORM: &str = "platform";
/// NUMA node holding computation data.
pub const M_COMP: &str = "m_comp";
/// NUMA node holding communication buffers.
pub const M_COMM: &str = "m_comm";
/// Number of computing cores.
pub const N_CORES: &str = "n_cores";
/// Execution mode of a stage (`sequential`, `parallel`, …).
pub const MODE: &str = "mode";
/// Repair/normalisation rule applied during calibration.
pub const RULE: &str = "rule";
/// Why a fallback or degradation happened.
pub const REASON: &str = "reason";
/// Reproduction target (`fig3`, `table2`, …).
pub const TARGET: &str = "target";
/// CLI subcommand being executed.
pub const COMMAND: &str = "command";
/// Worker-pool size.
pub const WORKERS: &str = "workers";
/// Predictor implementation being evaluated.
pub const PREDICTOR: &str = "predictor";

/// Serve-protocol operation (`predict`, `evaluate`, `recommend`,
/// `calibrate`, `batch`).
pub const OP: &str = "op";
/// Outcome of a request: `ok` or the error class (`usage`, `data`, `io`).
pub const RESULT: &str = "result";
/// Registry outcome for a request: `hit` or `miss`.
pub const CACHE: &str = "cache";
/// Number of requests in a batch envelope.
pub const BATCH_SIZE: &str = "batch_size";
/// Benchmark-configuration tag a model was calibrated under.
pub const CONFIG: &str = "config";

/// Number of ranks a replayed trace defines.
pub const RANKS: &str = "ranks";
/// One specific rank of a replayed trace (timeline spans). The chrome
/// exporter maps spans carrying this tag onto a per-rank `tid`.
pub const RANK: &str = "rank";
/// Trace event kind (`compute`, `send`, `recv`, `collective`, `wait`).
pub const EVENT: &str = "event";
/// Synthetic trace generator (`halo2d`, `allreduce`, `pipeline`).
pub const PATTERN: &str = "pattern";

/// Authenticated tenant id of a serve connection (`anonymous` for the
/// stdin transport).
pub const TENANT: &str = "tenant";
/// Serve transport a session arrived on (`stdio`, `tcp`).
pub const TRANSPORT: &str = "transport";

/// Cluster scheduling policy (`first_fit`, `round_robin`,
/// `contention_aware`).
pub const POLICY: &str = "policy";
/// Fleet composition a schedule ran against (`henri x2 + dahu x1`).
pub const FLEET: &str = "fleet";
/// One specific fleet node (scheduler placement spans). The chrome
/// exporter maps spans carrying this tag onto a per-node `tid`.
pub const NODE: &str = "node";
/// Job name a scheduler placement span describes.
pub const JOB: &str = "job";

#[cfg(test)]
mod tests {
    #[test]
    fn vocabulary_is_distinct() {
        let all = [
            super::PLATFORM,
            super::M_COMP,
            super::M_COMM,
            super::N_CORES,
            super::MODE,
            super::RULE,
            super::REASON,
            super::TARGET,
            super::COMMAND,
            super::WORKERS,
            super::PREDICTOR,
            super::OP,
            super::RESULT,
            super::CACHE,
            super::BATCH_SIZE,
            super::CONFIG,
            super::RANKS,
            super::RANK,
            super::EVENT,
            super::PATTERN,
            super::TENANT,
            super::TRANSPORT,
            super::POLICY,
            super::FLEET,
            super::NODE,
            super::JOB,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate tag keys");
    }
}
