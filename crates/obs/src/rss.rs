//! Process peak-RSS introspection for memory-boundedness telemetry.
//!
//! Large streaming replays claim bounded memory; `replay.peak_rss_kb`
//! lets benches and CI check the claim from the outside. Linux exposes
//! the high-water mark as `VmHWM` in `/proc/self/status` — on other
//! platforms there is no portable std-only equivalent, so this reports
//! `None` and the metric is simply not emitted.

/// The process's peak resident set size in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` where unavailable (non-Linux, or a
/// restricted `/proc`).
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract `VmHWM:   <n> kB` from a `/proc/<pid>/status` body.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_body() {
        let body = "Name:\tmemcontend\nVmPeak:\t  123 kB\nVmHWM:\t  4567 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(body), Some(4567));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_a_positive_peak() {
        let kb = peak_rss_kb().expect("/proc/self/status should be readable");
        assert!(kb > 0);
    }
}
