//! Process RSS introspection for memory-boundedness telemetry.
//!
//! Large streaming replays claim bounded memory; `replay.peak_rss_kb`
//! lets benches and CI check the claim from the outside. Linux exposes
//! the high-water mark as `VmHWM` and the instantaneous residency as
//! `VmRSS` in `/proc/self/status` — on other platforms there is no
//! portable std-only equivalent, so both report `None` and the metrics
//! are simply not emitted.

/// The process's peak resident set size in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` where unavailable (non-Linux, or a
/// restricted `/proc`).
///
/// **Monotone over the process lifetime.** `VmHWM` only ever grows, so
/// comparing two phases *within one process* attributes the first
/// phase's peak to every later phase — an in-process eager-vs-stream
/// comparison run eager-first would report the eager peak for both.
/// Either run one phase per process (the `bench3` protocol) or diff
/// [`current_rss_kb`] around each phase instead.
pub fn peak_rss_kb() -> Option<u64> {
    proc_status_kb("VmHWM:")
}

/// The process's *current* resident set size in kilobytes (`VmRSS` from
/// `/proc/self/status`), or `None` where unavailable. Unlike
/// [`peak_rss_kb`] this goes down when memory is returned, so deltas
/// around a phase are attributable to that phase even late in a
/// process's life.
pub fn current_rss_kb() -> Option<u64> {
    proc_status_kb("VmRSS:")
}

#[cfg_attr(not(target_os = "linux"), allow(unused_variables))]
fn proc_status_kb(field: &str) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_status_kb(&status, field)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract `<field>   <n> kB` from a `/proc/<pid>/status` body.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_proc_status_body() {
        let body = "Name:\tmemcontend\nVmPeak:\t  123 kB\nVmHWM:\t  4567 kB\nVmRSS:\t  890 kB\nThreads:\t1\n";
        assert_eq!(parse_status_kb(body, "VmHWM:"), Some(4567));
        assert_eq!(parse_status_kb(body, "VmRSS:"), Some(890));
        assert_eq!(parse_status_kb("Name:\tx\n", "VmHWM:"), None);
        assert_eq!(parse_status_kb("VmHWM:\tgarbage\n", "VmHWM:"), None);
        assert_eq!(parse_status_kb("VmRSS:\tgarbage\n", "VmRSS:"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn linux_reports_positive_rss() {
        let peak = peak_rss_kb().expect("/proc/self/status should be readable");
        let current = current_rss_kb().expect("/proc/self/status should be readable");
        assert!(peak > 0 && current > 0);
        // The high-water mark bounds the instantaneous residency.
        assert!(current <= peak, "VmRSS {current} > VmHWM {peak}");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn current_rss_tracks_allocation_deltas() {
        // A 64 MB touch must be visible in VmRSS while held. (The
        // monotone peak cannot distinguish "held now" from "held once",
        // which is exactly the bug current_rss_kb exists to fix.)
        let before = current_rss_kb().unwrap();
        let buf = vec![1u8; 64 << 20];
        std::hint::black_box(&buf);
        let during = current_rss_kb().unwrap();
        assert!(
            during >= before + (32 << 10),
            "64 MB allocation invisible: {before} -> {during} kB"
        );
    }
}
