//! Chrome `trace_event` / Perfetto-compatible trace export.
//!
//! Renders a [`MetricsSnapshot`]'s spans as a JSON **array** of complete
//! (`"ph":"X"`) events with microsecond `ts`/`dur`, loadable directly in
//! `chrome://tracing`, <https://ui.perfetto.dev> or any other
//! trace_event consumer. The mapping (DESIGN.md §16):
//!
//! * span stage → event `name`, span tags → `args` (string values,
//!   exactly as the JSON-lines exporter renders them);
//! * deterministic `pid`/`tid` assignment: pipeline stages share one
//!   track (`pid` [`PID_PIPELINE`], `tid` 0), spans tagged `rank` land
//!   on a per-rank `tid` under [`PID_REPLAY`], spans tagged `node` on a
//!   per-node `tid` under [`PID_SCHED`];
//! * spans that were still open at snapshot time keep `"ph":"X"` with
//!   their duration-so-far and carry `"incomplete":true` in `args`;
//! * `"M"` metadata events name every process and thread so viewers
//!   label the tracks (`memcontend pipeline`, `rank 3`, `node 1`).
//!
//! Output is byte-stable for a given snapshot — goldenable exactly like
//! the JSON-lines exporters. Timestamps are clamped to finite,
//! non-negative microseconds: trace viewers silently misrender events
//! with NaN or negative times, so an exporter must never emit them.

use std::fmt::Write as _;

use crate::export::json_escape;
use crate::registry::{MetricsSnapshot, Registry, SpanRecord};

/// `pid` of the pipeline track (spans without a `rank` or `node` tag).
pub const PID_PIPELINE: u64 = 1;
/// `pid` grouping replay tracks; each rank is its own `tid`.
pub const PID_REPLAY: u64 = 2;
/// `pid` grouping scheduler tracks; each fleet node is its own `tid`.
pub const PID_SCHED: u64 = 3;

/// One trace_event entry: a complete (`ph:"X"`) slice on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span's stage).
    pub name: String,
    /// Category: `pipeline`, `replay` or `sched` (the track family).
    pub cat: &'static str,
    /// Start, microseconds (finite, ≥ 0).
    pub ts_us: f64,
    /// Duration, microseconds (finite, ≥ 0).
    pub dur_us: f64,
    /// Process id (one of the `PID_*` constants).
    pub pid: u64,
    /// Thread id within the pid (0, a rank, or a node index).
    pub tid: u64,
    /// Flattened span tags, sorted by key.
    pub args: Vec<(String, String)>,
    /// The span was still open when the snapshot was taken.
    pub incomplete: bool,
}

/// Trace viewers require finite, non-negative times; anything else is
/// exporter input corruption and clamps to 0.
fn clamp_us(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

/// The track a span belongs on, from its tags: `rank` → a per-rank tid
/// under [`PID_REPLAY`], `node` → a per-node tid under [`PID_SCHED`],
/// anything else → the shared pipeline track.
fn track_of(tags: &[(String, String)]) -> (u64, u64, &'static str) {
    for (key, value) in tags {
        let parsed = value.parse::<u64>().ok();
        match (key.as_str(), parsed) {
            (crate::tags::RANK, Some(rank)) => return (PID_REPLAY, rank, "replay"),
            (crate::tags::NODE, Some(node)) => return (PID_SCHED, node, "sched"),
            _ => {}
        }
    }
    (PID_PIPELINE, 0, "pipeline")
}

fn event_of(span: &SpanRecord) -> TraceEvent {
    let (pid, tid, cat) = track_of(&span.tags);
    TraceEvent {
        name: span.stage.clone(),
        cat,
        ts_us: clamp_us(span.start_s * 1e6),
        dur_us: clamp_us(span.duration_s * 1e6),
        pid,
        tid,
        args: span.tags.clone(),
        incomplete: span.incomplete,
    }
}

/// Map a snapshot's spans (completed first, then incomplete, exactly as
/// the snapshot orders them) onto trace events.
pub fn from_snapshot(snap: &MetricsSnapshot) -> Vec<TraceEvent> {
    snap.spans.iter().map(event_of).collect()
}

fn write_args(out: &mut String, args: &[(String, String)], incomplete: bool) {
    out.push('{');
    let mut first = true;
    for (k, v) in args {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    if incomplete {
        if !first {
            out.push(',');
        }
        out.push_str("\"incomplete\":true");
    }
    out.push('}');
}

fn write_metadata(out: &mut String, events: &[TraceEvent]) {
    // Name every process and thread the events use, in (pid, tid)
    // order. Sorted-deduped: byte-stable regardless of event order.
    let mut tracks: Vec<(u64, u64)> = events.iter().map(|e| (e.pid, e.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut named_pids: Vec<u64> = Vec::new();
    for (pid, tid) in tracks {
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let pname = match pid {
                PID_REPLAY => "memcontend replay",
                PID_SCHED => "memcontend sched",
                _ => "memcontend pipeline",
            };
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            );
        }
        let tname = match pid {
            PID_REPLAY => format!("rank {tid}"),
            PID_SCHED => format!("node {tid}"),
            _ => "pipeline".to_string(),
        };
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{tname}\"}}}}"
        );
    }
}

/// Render events as a Chrome trace_event JSON array (byte-stable). The
/// first entries are `"M"` metadata naming each track, then the events
/// in the order given, one per line.
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":",
            json_escape(&e.name),
            e.cat,
            fmt_us(e.ts_us),
            fmt_us(e.dur_us),
            e.pid,
            e.tid,
        );
        write_args(&mut out, &e.args, e.incomplete);
        out.push('}');
    }
    if !events.is_empty() {
        write_metadata(&mut out, events);
    }
    out.push_str("\n]\n");
    out
}

/// Microseconds as a JSON number. Values are already clamped finite and
/// non-negative; `{}` is the shortest round-trippable rendering.
fn fmt_us(v: f64) -> String {
    format!("{v}")
}

/// Snapshot → trace_event JSON array in one call.
pub fn chrome_trace(snap: &MetricsSnapshot) -> String {
    render(&from_snapshot(snap))
}

impl Registry {
    /// The registry's spans as a Chrome trace_event JSON array; see
    /// [`chrome_trace`].
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TagValue;

    fn pipeline_span(r: &Registry) {
        r.record_span(
            "calibrate",
            &[("platform", TagValue::Str("henri"))],
            0.5,
            0.25,
        );
    }

    #[test]
    fn empty_snapshot_is_an_empty_array() {
        let r = Registry::new();
        assert_eq!(r.chrome_trace(), "[\n]\n");
    }

    #[test]
    fn pipeline_spans_share_one_track() {
        let r = Registry::new();
        pipeline_span(&r);
        r.record_span("evaluate", &[], 0.75, 0.125);
        let events = from_snapshot(&r.snapshot());
        assert!(events
            .iter()
            .all(|e| e.pid == PID_PIPELINE && e.tid == 0 && e.cat == "pipeline"));
    }

    #[test]
    fn rank_and_node_tags_pick_their_own_tids() {
        let r = Registry::new();
        r.record_span(
            "compute",
            &[(crate::tags::RANK, TagValue::U64(3))],
            0.0,
            1.0,
        );
        r.record_span("solver", &[(crate::tags::NODE, TagValue::U64(2))], 0.0, 2.0);
        let events = from_snapshot(&r.snapshot());
        assert_eq!((events[0].pid, events[0].tid), (PID_REPLAY, 3));
        assert_eq!(events[0].cat, "replay");
        assert_eq!((events[1].pid, events[1].tid), (PID_SCHED, 2));
        assert_eq!(events[1].cat, "sched");
    }

    #[test]
    fn events_are_microseconds_complete_phase_with_args() {
        let r = Registry::new();
        pipeline_span(&r);
        let out = r.chrome_trace();
        assert!(out.starts_with("[\n"), "{out}");
        assert!(out.trim_end().ends_with(']'), "{out}");
        assert!(
            out.contains(
                "{\"name\":\"calibrate\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":500000,\
                 \"dur\":250000,\"pid\":1,\"tid\":0,\"args\":{\"platform\":\"henri\"}}"
            ),
            "{out}"
        );
        // Metadata names the one track used.
        assert!(out.contains("\"name\":\"process_name\""), "{out}");
        assert!(out.contains("memcontend pipeline"), "{out}");
    }

    #[test]
    fn open_spans_are_flagged_incomplete_in_args() {
        let r = Registry::new();
        let _open = crate::recorder::Recorder::span_enter(&r, "serve.request", &[]);
        let out = r.chrome_trace();
        assert!(out.contains("\"args\":{\"incomplete\":true}"), "{out}");
        assert!(out.contains("\"ph\":\"X\""), "{out}");
    }

    #[test]
    fn hostile_times_clamp_to_zero() {
        let r = Registry::new();
        r.record_span("bad", &[], -1.0, f64::NAN);
        let e = &from_snapshot(&r.snapshot())[0];
        assert_eq!(e.ts_us, 0.0);
        assert_eq!(e.dur_us, 0.0);
        let out = r.chrome_trace();
        assert!(out.contains("\"ts\":0,\"dur\":0"), "{out}");
    }

    #[test]
    fn render_is_deterministic() {
        let r = Registry::new();
        pipeline_span(&r);
        r.record_span("recv", &[(crate::tags::RANK, TagValue::U64(1))], 0.1, 0.2);
        assert_eq!(r.chrome_trace(), r.chrome_trace());
    }
}
