//! # mc-obs — pipeline observability
//!
//! A zero-dependency span/metrics subsystem for the whole workspace:
//! every sweep, calibration, and prediction can be traced (wall-clock
//! spans), counted (monotonic counters), and timed (f64 histograms),
//! then exported as JSON lines or a human-readable table.
//!
//! ## Design
//!
//! * A [`Recorder`] trait receives span enter/exit events, counter
//!   increments and histogram observations, all tagged with a small
//!   `(key, value)` vocabulary (`platform`, `m_comp`, `m_comm`,
//!   `n_cores`, …).
//! * [`NoopRecorder`] is the default: when no recorder is installed the
//!   instrumented hot paths perform **one relaxed atomic load** and
//!   allocate nothing, so the zero-allocation solve path stays
//!   allocation-free and bit-identical (asserted by test).
//! * [`Registry`] is the std-only concrete recorder (a `Mutex` around
//!   `BTreeMap`s — matching the workspace's no-external-crates policy)
//!   with deterministic [JSON-lines](Registry::metrics_json_lines),
//!   [table](Registry::table) and
//!   [Chrome trace_event](Registry::chrome_trace) exporters.
//! * Instrumentation is **run-granular**, never event-granular: the
//!   engine reports one batch of counters per run, the sweep one
//!   histogram sample per measured point — the per-event hot loop is
//!   untouched.
//!
//! ```
//! use std::sync::Arc;
//! use mc_obs::{Registry, TagValue};
//!
//! let registry = Arc::new(Registry::new());
//! mc_obs::set_recorder(registry.clone());
//! {
//!     let _span = mc_obs::span("demo", &[("platform", TagValue::Str("henri"))]);
//!     if let Some(rec) = mc_obs::recorder() {
//!         rec.add("demo.widgets", &[], 3);
//!     }
//! }
//! mc_obs::clear_recorder();
//! assert_eq!(registry.counter_total("demo.widgets"), 3);
//! assert!(registry.span_stages().contains(&"demo".to_string()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod rss;
pub mod tags;

pub use recorder::{
    clear_recorder, enabled, recorder, set_recorder, span, NoopRecorder, Recorder, Span, SpanId,
    Tag, TagValue,
};
pub use registry::{HistogramSummary, MetricsSnapshot, Registry, SpanRecord};
pub use rss::{current_rss_kb, peak_rss_kb};
