//! [`Registry`]: the concrete std-only [`Recorder`] that accumulates
//! spans, counters and histograms for later export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::recorder::{Recorder, SpanId, Tag};

/// Owned form of a tag set: sorted `(key, rendered value)` pairs. Sorting
/// makes metric identity independent of call-site tag order and keeps
/// every exporter deterministic.
pub(crate) type OwnedTags = Vec<(String, String)>;

fn own_tags(tags: &[Tag<'_>]) -> OwnedTags {
    let mut owned: OwnedTags = tags
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    owned.sort();
    owned
}

/// Running summary of an f64 distribution. A five-number summary rather
/// than buckets: enough to spot regressions (count, mean, extremes)
/// without choosing bucket boundaries per metric.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn new(value: f64) -> Self {
        HistogramSummary {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    /// Mean of the observations (`sum / count`).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// One span: a named stage with tags and wall-clock extent, in seconds
/// relative to the registry's creation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Stage name (`"engine.run"`, `"sweep"`, `"calibrate"`, …).
    pub stage: String,
    /// Sorted owned tags.
    pub tags: Vec<(String, String)>,
    /// Start offset from registry creation, in seconds.
    pub start_s: f64,
    /// Wall-clock duration in seconds. For an incomplete span this is
    /// the time from enter to the snapshot, not to an exit.
    pub duration_s: f64,
    /// True for a span that was still open when the snapshot was taken
    /// (the stage panicked, or the export ran mid-stage). Exporters
    /// flag these rather than dropping them — a killed session must
    /// still show where it died.
    pub incomplete: bool,
}

/// Point-in-time copy of everything a [`Registry`] has accumulated.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals keyed by `(name, sorted tags)`.
    pub counters: BTreeMap<(String, OwnedTags), u64>,
    /// Histogram summaries keyed by `(name, sorted tags)`.
    pub histograms: BTreeMap<(String, OwnedTags), HistogramSummary>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<(String, OwnedTags), u64>,
    histograms: BTreeMap<(String, OwnedTags), HistogramSummary>,
    /// Spans entered but not yet exited, keyed by span id.
    open: BTreeMap<u64, (String, OwnedTags, Instant)>,
    spans: Vec<SpanRecord>,
}

/// The workspace's concrete recorder: accumulates everything in memory
/// behind one `Mutex`, exports on demand.
///
/// A plain mutex is deliberate — instrumentation is run-granular (a few
/// hundred calls per pipeline run, never per simulated event), so lock
/// contention is irrelevant and the std-only policy is kept.
pub struct Registry {
    inner: Mutex<Inner>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry; its span clock starts now.
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record a completed span with explicit timing, bypassing the wall
    /// clock. This is how deterministic tests (and replay tools) inject
    /// spans with reproducible timestamps.
    pub fn record_span(&self, stage: &str, tags: &[Tag<'_>], start_s: f64, duration_s: f64) {
        self.lock().spans.push(SpanRecord {
            stage: stage.to_string(),
            tags: own_tags(tags),
            start_s,
            duration_s,
            incomplete: false,
        });
    }

    /// Total of a counter summed across all tag sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Observation count of a histogram summed across all tag sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.lock()
            .histograms
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, h)| h.count)
            .sum()
    }

    /// Distinct stage names among completed spans, sorted.
    pub fn span_stages(&self) -> Vec<String> {
        let inner = self.lock();
        let mut stages: Vec<String> = inner.spans.iter().map(|s| s.stage.clone()).collect();
        stages.sort();
        stages.dedup();
        stages
    }

    /// Copy out everything accumulated so far. Open (unexited) spans —
    /// a stage that panicked, or an export taken mid-stage — are closed
    /// at the snapshot instant and appended after the completed spans,
    /// flagged [`SpanRecord::incomplete`], in enter order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let now = Instant::now();
        let inner = self.lock();
        let mut spans = inner.spans.clone();
        for (stage, tags, started) in inner.open.values() {
            spans.push(SpanRecord {
                stage: stage.clone(),
                tags: tags.clone(),
                start_s: started.duration_since(self.epoch).as_secs_f64(),
                duration_s: now.duration_since(*started).as_secs_f64(),
                incomplete: true,
            });
        }
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
            spans,
        }
    }
}

impl Recorder for Registry {
    fn span_enter(&self, stage: &str, tags: &[Tag<'_>]) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        self.lock()
            .open
            .insert(id, (stage.to_string(), own_tags(tags), now));
        SpanId(id)
    }

    fn span_exit(&self, id: SpanId) {
        let now = Instant::now();
        let mut inner = self.lock();
        if let Some((stage, tags, started)) = inner.open.remove(&id.0) {
            inner.spans.push(SpanRecord {
                stage,
                tags,
                start_s: started.duration_since(self.epoch).as_secs_f64(),
                duration_s: now.duration_since(started).as_secs_f64(),
                incomplete: false,
            });
        }
    }

    fn add(&self, name: &str, tags: &[Tag<'_>], delta: u64) {
        *self
            .lock()
            .counters
            .entry((name.to_string(), own_tags(tags)))
            .or_insert(0) += delta;
    }

    fn observe(&self, name: &str, tags: &[Tag<'_>], value: f64) {
        self.lock()
            .histograms
            .entry((name.to_string(), own_tags(tags)))
            .and_modify(|h| h.observe(value))
            .or_insert_with(|| HistogramSummary::new(value));
    }

    fn record_span(&self, stage: &str, tags: &[Tag<'_>], start_s: f64, duration_s: f64) {
        Registry::record_span(self, stage, tags, start_s, duration_s);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(Registry::snapshot(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TagValue;

    #[test]
    fn counters_accumulate_per_tag_set_and_total() {
        let r = Registry::new();
        r.add("events", &[("platform", TagValue::Str("henri"))], 2);
        r.add("events", &[("platform", TagValue::Str("henri"))], 3);
        r.add("events", &[("platform", TagValue::Str("grouille"))], 1);
        assert_eq!(r.counter_total("events"), 6);
        assert_eq!(r.counter_total("other"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let r = Registry::new();
        for v in [2.0, 8.0, 5.0] {
            r.observe("lat", &[], v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms[&("lat".to_string(), vec![])];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 8.0);
        assert_eq!(h.mean(), 5.0);
        assert_eq!(r.histogram_count("lat"), 3);
    }

    #[test]
    fn spans_pair_enter_with_exit() {
        let r = Registry::new();
        let id = r.span_enter("stage-a", &[("n_cores", TagValue::U64(16))]);
        r.span_exit(id);
        // Exiting an unknown id is ignored.
        r.span_exit(SpanId(999));
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].stage, "stage-a");
        assert_eq!(
            snap.spans[0].tags,
            vec![("n_cores".to_string(), "16".to_string())]
        );
        assert!(snap.spans[0].duration_s >= 0.0);
        assert_eq!(r.span_stages(), vec!["stage-a".to_string()]);
    }

    #[test]
    fn open_spans_surface_in_snapshots_as_incomplete() {
        let r = Registry::new();
        let _open = r.span_enter("stage-dying", &[("platform", TagValue::Str("henri"))]);
        let done = r.span_enter("stage-done", &[]);
        r.span_exit(done);
        let snap = r.snapshot();
        // Completed spans first, then the still-open one, flagged.
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].stage, "stage-done");
        assert!(!snap.spans[0].incomplete);
        let open = &snap.spans[1];
        assert_eq!(open.stage, "stage-dying");
        assert!(open.incomplete);
        assert!(open.duration_s >= 0.0);
        assert_eq!(
            open.tags,
            vec![("platform".to_string(), "henri".to_string())]
        );
        // The span is still open in the registry: a later snapshot sees
        // it again (snapshots never mutate).
        assert_eq!(r.snapshot().spans.len(), 2);
    }

    #[test]
    fn record_span_is_deterministic() {
        let r = Registry::new();
        r.record_span("fixed", &[("mode", TagValue::Str("test"))], 1.0, 0.25);
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].start_s, 1.0);
        assert_eq!(snap.spans[0].duration_s, 0.25);
    }

    #[test]
    fn tag_order_does_not_split_series() {
        let r = Registry::new();
        r.add("c", &[("a", TagValue::U64(1)), ("b", TagValue::U64(2))], 1);
        r.add("c", &[("b", TagValue::U64(2)), ("a", TagValue::U64(1))], 1);
        assert_eq!(r.snapshot().counters.len(), 1);
        assert_eq!(r.counter_total("c"), 2);
    }
}
