//! Exporters: deterministic JSON-lines and a human-readable table,
//! implemented directly over [`Registry`] snapshots.
//!
//! Output order is fully deterministic — counters and histograms iterate
//! their `BTreeMap`s (name, then sorted tags), spans come out in
//! completion order — so golden-file tests can pin the schema exactly.

use std::fmt::Write as _;

use crate::registry::{MetricsSnapshot, Registry};

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as a JSON number. JSON has no NaN/inf, so non-finite
/// values (which instrumentation should never produce, but an exporter
/// must not corrupt a stream over) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_tags(tags: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// JSON-lines rendering of a snapshot's counters and histograms.
pub fn metrics_json_lines(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for ((name, tags), value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"tags\":{},\"value\":{}}}",
            json_escape(name),
            json_tags(tags),
            value
        );
    }
    for ((name, tags), h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"tags\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            json_escape(name),
            json_tags(tags),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            json_f64(h.mean()),
        );
    }
    out
}

/// JSON-lines rendering of a snapshot's spans, in completion order.
/// Spans still open at snapshot time carry `"incomplete":true`;
/// completed spans render exactly as they always have, so goldens over
/// finished runs are unaffected.
pub fn trace_json_lines(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for span in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"stage\":\"{}\",\"tags\":{},\"start_s\":{},\"duration_s\":{}{}}}",
            json_escape(&span.stage),
            json_tags(&span.tags),
            json_f64(span.start_s),
            json_f64(span.duration_s),
            if span.incomplete {
                ",\"incomplete\":true"
            } else {
                ""
            },
        );
    }
    out
}

fn fmt_tags(tags: &[(String, String)]) -> String {
    if tags.is_empty() {
        return "-".to_string();
    }
    tags.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Column width fitting both a header and every row value: the longest
/// entry in characters (formatting pads by character count, so a
/// hard-coded 40 would break alignment for any longer name or tag set).
fn col_width<'a>(header: &str, values: impl Iterator<Item = &'a str>) -> usize {
    values
        .map(|v| v.chars().count())
        .chain(std::iter::once(header.chars().count()))
        .max()
        .unwrap_or(0)
}

/// Human-readable table rendering of a snapshot: counters, histograms,
/// then spans, one aligned section each. Column widths are computed
/// from the snapshot, so arbitrarily long metric names and tag sets
/// stay aligned.
pub fn table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let names = col_width("name", snap.counters.keys().map(|(n, _)| n.as_str()));
        let tag_strings: Vec<String> = snap.counters.keys().map(|(_, t)| fmt_tags(t)).collect();
        let tags_w = col_width("tags", tag_strings.iter().map(String::as_str));
        let _ = writeln!(out, "counters:");
        let _ = writeln!(
            out,
            "  {:<names$} {:<tags_w$} {:>12}",
            "name", "tags", "value"
        );
        for (((name, _), value), tags) in snap.counters.iter().zip(&tag_strings) {
            let _ = writeln!(out, "  {name:<names$} {tags:<tags_w$} {value:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        let names = col_width("name", snap.histograms.keys().map(|(n, _)| n.as_str()));
        let tag_strings: Vec<String> = snap.histograms.keys().map(|(_, t)| fmt_tags(t)).collect();
        let tags_w = col_width("tags", tag_strings.iter().map(String::as_str));
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<names$} {:<tags_w$} {:>8} {:>12} {:>12} {:>12}",
            "name", "tags", "count", "mean", "min", "max"
        );
        for (((name, _), h), tags) in snap.histograms.iter().zip(&tag_strings) {
            let _ = writeln!(
                out,
                "  {name:<names$} {tags:<tags_w$} {:>8} {:>12.6} {:>12.6} {:>12.6}",
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
    }
    if !snap.spans.is_empty() {
        let stages = col_width("stage", snap.spans.iter().map(|s| s.stage.as_str()));
        let tag_strings: Vec<String> = snap.spans.iter().map(|s| fmt_tags(&s.tags)).collect();
        let tags_w = col_width("tags", tag_strings.iter().map(String::as_str));
        let _ = writeln!(out, "spans:");
        let _ = writeln!(
            out,
            "  {:<stages$} {:<tags_w$} {:>12} {:>12}",
            "stage", "tags", "start_s", "duration_s"
        );
        for (span, tags) in snap.spans.iter().zip(&tag_strings) {
            let _ = writeln!(
                out,
                "  {:<stages$} {tags:<tags_w$} {:>12.6} {:>12.6}{}",
                span.stage,
                span.start_s,
                span.duration_s,
                if span.incomplete { " (incomplete)" } else { "" },
            );
        }
    }
    out
}

impl Registry {
    /// Counters and histograms as JSON lines; see
    /// [`metrics_json_lines`].
    pub fn metrics_json_lines(&self) -> String {
        metrics_json_lines(&self.snapshot())
    }

    /// Completed spans as JSON lines; see [`trace_json_lines`].
    pub fn trace_json_lines(&self) -> String {
        trace_json_lines(&self.snapshot())
    }

    /// Human-readable summary table; see [`table`].
    pub fn table(&self) -> String {
        table(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TagValue};

    #[test]
    fn json_escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn metrics_lines_are_deterministic_json() {
        let r = Registry::new();
        r.add("b.count", &[("platform", TagValue::Str("henri"))], 4);
        r.add("a.count", &[], 1);
        r.observe("lat", &[("n", TagValue::U64(2))], 0.5);
        r.observe("lat", &[("n", TagValue::U64(2))], 1.5);
        let lines = r.metrics_json_lines();
        assert_eq!(
            lines,
            concat!(
                "{\"type\":\"counter\",\"name\":\"a.count\",\"tags\":{},\"value\":1}\n",
                "{\"type\":\"counter\",\"name\":\"b.count\",\"tags\":{\"platform\":\"henri\"},\"value\":4}\n",
                "{\"type\":\"histogram\",\"name\":\"lat\",\"tags\":{\"n\":\"2\"},\"count\":2,\"sum\":2,\"min\":0.5,\"max\":1.5,\"mean\":1}\n",
            )
        );
    }

    #[test]
    fn trace_lines_render_recorded_spans() {
        let r = Registry::new();
        r.record_span(
            "calibrate",
            &[("platform", TagValue::Str("henri"))],
            0.5,
            0.125,
        );
        assert_eq!(
            r.trace_json_lines(),
            "{\"type\":\"span\",\"stage\":\"calibrate\",\"tags\":{\"platform\":\"henri\"},\"start_s\":0.5,\"duration_s\":0.125}\n"
        );
    }

    #[test]
    fn table_sections_appear_when_populated() {
        let r = Registry::new();
        assert_eq!(r.table(), "");
        r.add("events", &[], 3);
        r.observe("lat", &[], 1.0);
        r.record_span("run", &[], 0.0, 1.0);
        let t = r.table();
        assert!(t.contains("counters:"));
        assert!(t.contains("histograms:"));
        assert!(t.contains("spans:"));
        assert!(t.contains("events"));
    }

    #[test]
    fn open_spans_export_with_an_incomplete_marker() {
        let r = Registry::new();
        let _open = r.span_enter("serve.request", &[("op", TagValue::Str("predict"))]);
        let lines = r.trace_json_lines();
        assert!(
            lines.contains("\"stage\":\"serve.request\"") && lines.contains("\"incomplete\":true"),
            "{lines}"
        );
        // A completed span on the same registry has no marker.
        r.record_span("done", &[], 0.0, 1.0);
        let lines = r.trace_json_lines();
        let done = lines.lines().find(|l| l.contains("\"done\"")).unwrap();
        assert!(!done.contains("incomplete"), "{done}");
    }

    #[test]
    fn table_columns_fit_long_names_and_tag_sets() {
        let r = Registry::new();
        let long = "sched.a_metric_name_well_past_forty_characters_in_total";
        assert!(long.len() > 40);
        r.add(long, &[], 1);
        r.add(
            "short",
            &[
                ("policy", TagValue::Str("contention_aware")),
                ("fleet", TagValue::Str("henri x2 + dahu x1 + grillon x4")),
            ],
            2,
        );
        let t = r.table();
        // Every counter row ends in the same column: the value column
        // is right-aligned after dynamically sized name/tags columns.
        let rows: Vec<&str> = t
            .lines()
            .filter(|l| l.starts_with("  ") && (l.contains("short") || l.contains(long)))
            .collect();
        assert_eq!(rows.len(), 2, "{t}");
        assert_eq!(rows[0].len(), rows[1].len(), "{t}");
        assert!(rows.iter().all(|r| r.ends_with('1') || r.ends_with('2')));
    }

    #[test]
    fn non_finite_exports_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
