//! The [`Recorder`] trait, its no-op default, and the process-global
//! recorder slot the instrumented crates report to.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A tag value. Call sites build tag slices on the stack — no formatting
/// or allocation happens unless an actual recorder consumes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TagValue<'a> {
    /// A borrowed string (platform names, rule identifiers, …).
    Str(&'a str),
    /// An unsigned integer (core counts, NUMA indices, worker counts).
    U64(u64),
    /// A float (durations, bandwidths).
    F64(f64),
}

impl fmt::Display for TagValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagValue::Str(s) => f.write_str(s),
            TagValue::U64(v) => write!(f, "{v}"),
            TagValue::F64(v) => write!(f, "{v}"),
        }
    }
}

/// One `(key, value)` tag. Keys come from the fixed vocabulary documented
/// in DESIGN.md §10 (`platform`, `m_comp`, `m_comm`, `n_cores`, `mode`,
/// `rule`, `reason`, `target`, `command`, `workers`, `predictor`).
pub type Tag<'a> = (&'static str, TagValue<'a>);

/// Opaque identifier pairing a span exit with its enter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Sink for spans, counters and histogram observations.
///
/// Implementations must be cheap and infallible: instrumented code calls
/// these methods from measurement loops and never checks a result.
pub trait Recorder: Send + Sync {
    /// Begin a span. The returned id is passed back to
    /// [`Recorder::span_exit`] when the stage completes.
    fn span_enter(&self, stage: &str, tags: &[Tag<'_>]) -> SpanId;

    /// End a span started by [`Recorder::span_enter`]. Unknown ids are
    /// ignored.
    fn span_exit(&self, id: SpanId);

    /// Increment a monotonic counter.
    fn add(&self, name: &str, tags: &[Tag<'_>], delta: u64);

    /// Record one observation of an f64 distribution (a duration, an
    /// error percentage, a per-worker point count).
    fn observe(&self, name: &str, tags: &[Tag<'_>], value: f64);

    /// Record a completed span with explicit timing, bypassing the wall
    /// clock. Replay and scheduling tools use this to inject simulated
    /// timelines (per-rank event spans, per-job placements) with
    /// reproducible timestamps; recorders that cannot store spans may
    /// ignore it (the default).
    fn record_span(&self, stage: &str, tags: &[Tag<'_>], start_s: f64, duration_s: f64) {
        let _ = (stage, tags, start_s, duration_s);
    }

    /// A point-in-time copy of everything accumulated, for recorders
    /// that keep state (the [`Registry`](crate::Registry)). `None` — the
    /// default — for sinks that only forward.
    fn snapshot(&self) -> Option<crate::registry::MetricsSnapshot> {
        None
    }
}

/// The default recorder: drops everything, allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span_enter(&self, _stage: &str, _tags: &[Tag<'_>]) -> SpanId {
        SpanId(0)
    }
    fn span_exit(&self, _id: SpanId) {}
    fn add(&self, _name: &str, _tags: &[Tag<'_>], _delta: u64) {}
    fn observe(&self, _name: &str, _tags: &[Tag<'_>], _value: f64) {}
}

/// Whether a real recorder is installed — one relaxed load, the only cost
/// instrumentation pays when observability is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. A `Mutex<Option<Arc<…>>>` rather than a
/// `OnceLock` so tests (and long-lived processes) can swap recorders;
/// the lock is only touched when [`ENABLED`] says a recorder exists, or
/// by the install/clear calls themselves.
static GLOBAL: Mutex<Option<Arc<dyn Recorder>>> = Mutex::new(None);

/// Install a recorder for the whole process. Replaces any previous one.
pub fn set_recorder(rec: Arc<dyn Recorder>) {
    let mut slot = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    *slot = Some(rec);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the installed recorder, reverting to no-op behaviour.
pub fn clear_recorder() {
    let mut slot = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    ENABLED.store(false, Ordering::Release);
    *slot = None;
}

/// Fast check: is a recorder installed? Instrumented code uses this to
/// skip timing (`Instant::now`) entirely when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The installed recorder, if any. Returns `None` (without locking or
/// allocating) when observability is off; callers hold the `Arc` for the
/// duration of a run so the hot loop never re-fetches.
pub fn recorder() -> Option<Arc<dyn Recorder>> {
    if !enabled() {
        return None;
    }
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// A RAII span: exits on drop. Obtained from [`span`].
#[derive(Debug)]
pub struct Span {
    rec: Option<Arc<dyn Recorder>>,
    id: SpanId,
}

impl Span {
    /// A span that records nothing (what [`span`] returns when no
    /// recorder is installed).
    pub fn disabled() -> Self {
        Span {
            rec: None,
            id: SpanId(0),
        }
    }
}

impl fmt::Debug for dyn Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<recorder>")
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            rec.span_exit(self.id);
        }
    }
}

/// Enter a stage span on the global recorder; the span exits when the
/// returned guard is dropped. Free when no recorder is installed.
pub fn span(stage: &str, tags: &[Tag<'_>]) -> Span {
    match recorder() {
        Some(rec) => {
            let id = rec.span_enter(stage, tags);
            Span { rec: Some(rec), id }
        }
        None => Span::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Counts calls, to verify dispatch without the full registry.
    #[derive(Default)]
    struct Probe {
        enters: AtomicU64,
        exits: AtomicU64,
        adds: AtomicU64,
    }

    impl Recorder for Probe {
        fn span_enter(&self, _stage: &str, _tags: &[Tag<'_>]) -> SpanId {
            SpanId(self.enters.fetch_add(1, Ordering::Relaxed) + 1)
        }
        fn span_exit(&self, _id: SpanId) {
            self.exits.fetch_add(1, Ordering::Relaxed);
        }
        fn add(&self, _name: &str, _tags: &[Tag<'_>], delta: u64) {
            self.adds.fetch_add(delta, Ordering::Relaxed);
        }
        fn observe(&self, _name: &str, _tags: &[Tag<'_>], _value: f64) {}
    }

    #[test]
    fn noop_is_free_and_silent() {
        let n = NoopRecorder;
        let id = n.span_enter("x", &[]);
        n.span_exit(id);
        n.add("c", &[], 5);
        n.observe("h", &[], 1.0);
    }

    #[test]
    fn global_install_clear_round_trip() {
        // Serialise against other tests touching the global slot.
        clear_recorder();
        assert!(!enabled());
        assert!(recorder().is_none());
        {
            let _noop_span = span("nothing", &[]);
        }

        let probe = Arc::new(Probe::default());
        set_recorder(probe.clone());
        assert!(enabled());
        {
            let _s = span("stage", &[("platform", TagValue::Str("henri"))]);
            recorder().unwrap().add("c", &[], 2);
        }
        clear_recorder();
        assert!(recorder().is_none());
        assert_eq!(probe.enters.load(Ordering::Relaxed), 1);
        assert_eq!(probe.exits.load(Ordering::Relaxed), 1);
        assert_eq!(probe.adds.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tag_values_display() {
        assert_eq!(TagValue::Str("a").to_string(), "a");
        assert_eq!(TagValue::U64(7).to_string(), "7");
        assert_eq!(TagValue::F64(1.5).to_string(), "1.5");
    }
}
