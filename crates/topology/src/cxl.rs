//! CXL.mem pools: fabric-attached memory shared by the whole node.
//!
//! A pool is a memory device reached through CXL ports hanging off one
//! socket. Unlike a NUMA node, its bandwidth is not arbitrated by a
//! socket's memory controller: accesses ride the CXL ports (each with
//! its own line rate) and then the pool's internal controller. Ranks
//! can use a pool as a *communication medium* — the writer stores a
//! message into pooled memory and the reader loads it back, no NIC
//! involved — which is the message-free scenario of Vanecek et al.
//! ("Modeling the Potential of Message-Free Communication via
//! CXL.mem").

use serde::{Deserialize, Serialize};

use crate::ids::{PoolId, SocketId};

/// One CXL.mem pool attached to the node.
///
/// All bandwidths are GB/s, the latency is in seconds. Every bandwidth
/// must be finite and positive (enforced by
/// [`crate::machine::MachineTopology::validate`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CxlPool {
    /// Identifier (also its index in
    /// [`crate::machine::MachineTopology::cxl_pools`]).
    pub id: PoolId,
    /// Socket whose root complex hosts the CXL ports.
    pub socket: SocketId,
    /// Number of CXL ports into the pool. Concurrent streams spread
    /// over the ports; the port resource caps their aggregate.
    pub ports: u16,
    /// Usable bandwidth of one CXL port, GB/s (a CXL 2.0 x8 port
    /// carries ≈ 25 GB/s raw; usable payload rates are lower).
    pub port_bandwidth: f64,
    /// Aggregate bandwidth of the pool's internal memory controller,
    /// GB/s — the device-side bottleneck all ports share.
    pub pool_bandwidth: f64,
    /// Bandwidth a single load/store stream sustains against the pool,
    /// GB/s. CXL.mem adds protocol hops a core cannot hide, so one
    /// stream achieves well below a local-DRAM stream.
    pub stream_bandwidth: f64,
    /// One-way access latency in seconds (link + controller).
    pub latency: f64,
}

impl CxlPool {
    /// Total port-side bandwidth: ports × per-port rate.
    pub fn total_port_bandwidth(&self) -> f64 {
        f64::from(self.ports) * self.port_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_bandwidth_aggregates() {
        let pool = CxlPool {
            id: PoolId::new(0),
            socket: SocketId::new(0),
            ports: 4,
            port_bandwidth: 8.0,
            pool_bandwidth: 24.0,
            stream_bandwidth: 6.0,
            latency: 0.4e-6,
        };
        assert!((pool.total_port_bandwidth() - 32.0).abs() < 1e-12);
    }
}
