//! Plain-text persistence for platforms.
//!
//! A platform is the other artefact users archive next to their
//! calibrated models: the machine they measured, including behavioural
//! ground truth and any CXL.mem pools. The format mirrors
//! `mc_core::persist` — a minimal `key = value` file with `[section]`
//! headers, hand-rolled so the dependency set stays at the approved
//! crates. Floats are printed with Rust's shortest round-tripping
//! representation, so `from_text(to_text(p)) == p` bit for bit.

use std::fmt::Write as _;

use crate::behavior::{ArbitrationSpec, CoreStreamSpec, HwBehavior, MemCtrlSpec, NoiseSpec};
use crate::cxl::CxlPool;
use crate::ids::{NumaId, PoolId, SocketId};
use crate::link::{InterSocketTech, PcieGen};
use crate::machine::MachineTopology;
use crate::nic::{NetworkTech, Nic};
use crate::platforms::Platform;

/// Errors when parsing a persisted platform.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// A required key is missing from a section.
    MissingKey(&'static str),
    /// A value failed to parse (line number, 1-based).
    BadValue(usize),
    /// A section header is missing, unknown, or duplicated.
    BadSection(usize),
    /// The parsed platform is structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::MissingKey(k) => write!(f, "missing key {k}"),
            PersistError::BadValue(line) => write!(f, "bad value at line {line}"),
            PersistError::BadSection(line) => write!(f, "bad section at line {line}"),
            PersistError::Invalid(e) => write!(f, "invalid platform: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn link_tech_name(t: InterSocketTech) -> &'static str {
    match t {
        InterSocketTech::Upi => "upi",
        InterSocketTech::Qpi => "qpi",
        InterSocketTech::InfinityFabric => "infinity-fabric",
        InterSocketTech::Ccpi2 => "ccpi2",
    }
}

fn link_tech_parse(s: &str) -> Option<InterSocketTech> {
    match s {
        "upi" => Some(InterSocketTech::Upi),
        "qpi" => Some(InterSocketTech::Qpi),
        "infinity-fabric" => Some(InterSocketTech::InfinityFabric),
        "ccpi2" => Some(InterSocketTech::Ccpi2),
        _ => None,
    }
}

fn net_tech_name(t: NetworkTech) -> &'static str {
    match t {
        NetworkTech::InfinibandFdr => "infiniband-fdr",
        NetworkTech::InfinibandEdr => "infiniband-edr",
        NetworkTech::InfinibandHdr => "infiniband-hdr",
        NetworkTech::OmniPath100 => "omni-path-100",
    }
}

fn net_tech_parse(s: &str) -> Option<NetworkTech> {
    match s {
        "infiniband-fdr" => Some(NetworkTech::InfinibandFdr),
        "infiniband-edr" => Some(NetworkTech::InfinibandEdr),
        "infiniband-hdr" => Some(NetworkTech::InfinibandHdr),
        "omni-path-100" => Some(NetworkTech::OmniPath100),
        _ => None,
    }
}

/// Serialise a platform (topology, behaviour, CXL pools) to text.
pub fn platform_to_text(p: &Platform) -> String {
    let topo = &p.topology;
    let b = &p.behavior;
    let mut out = String::new();
    let _ = writeln!(out, "# memory-contention platform");
    let _ = writeln!(out, "[machine]");
    let _ = writeln!(out, "name = {}", topo.name);
    let _ = writeln!(out, "processor = {}", topo.sockets[0].processor);
    let _ = writeln!(out, "sockets = {}", topo.sockets.len());
    let _ = writeln!(out, "cores_per_socket = {}", topo.cores_per_socket());
    let _ = writeln!(out, "numa_per_socket = {}", topo.numa_per_socket());
    let total_mem: u32 = topo.numa_nodes.iter().map(|n| n.memory_gb).sum();
    let _ = writeln!(out, "memory_gb = {total_mem}");
    let _ = writeln!(out, "[link]");
    let link = &topo.links[0];
    let _ = writeln!(out, "tech = {}", link_tech_name(link.tech));
    let _ = writeln!(out, "cpu_bandwidth = {}", link.cpu_bandwidth);
    let _ = writeln!(out, "dma_bandwidth = {}", link.dma_bandwidth);
    let _ = writeln!(out, "[nic]");
    let _ = writeln!(out, "tech = {}", net_tech_name(topo.nic.tech));
    let _ = writeln!(out, "socket = {}", topo.nic.socket.index());
    let _ = writeln!(out, "pcie_generation = {}", topo.nic.pcie.generation);
    let _ = writeln!(out, "pcie_lanes = {}", topo.nic.pcie.lanes);
    let _ = writeln!(out, "closest_numa = {}", topo.nic.closest_numa.index());
    let _ = writeln!(out, "[behavior]");
    let _ = writeln!(out, "mem_ctrl_capacity = {}", b.mem_ctrl.base_capacity);
    let knees: Vec<String> = b
        .mem_ctrl
        .contention_knees
        .iter()
        .map(|(n, p)| format!("{n}:{p}"))
        .collect();
    let _ = writeln!(out, "mem_ctrl_knees = {}", knees.join(","));
    let _ = writeln!(
        out,
        "mem_ctrl_min_fraction = {}",
        b.mem_ctrl.min_capacity_fraction
    );
    let _ = writeln!(out, "mesh_capacity = {}", b.mesh_capacity);
    let _ = writeln!(out, "core_local = {}", b.core_stream.local_bandwidth);
    let _ = writeln!(out, "core_remote = {}", b.core_stream.remote_bandwidth);
    let _ = writeln!(out, "core_dropoff = {}", b.core_stream.scaling_dropoff);
    let _ = writeln!(
        out,
        "dma_floor_fraction = {}",
        b.arbitration.dma_floor_fraction
    );
    let _ = writeln!(
        out,
        "dma_accessor_weight = {}",
        b.arbitration.dma_accessor_weight
    );
    if let Some(u0) = b.arbitration.soft_decay_start {
        let _ = writeln!(out, "soft_decay_start = {u0}");
    }
    let _ = writeln!(
        out,
        "cross_traffic_pressure_factor = {}",
        b.arbitration.cross_traffic_pressure_factor
    );
    let _ = writeln!(out, "noise_compute_sigma = {}", b.noise.compute_sigma);
    let _ = writeln!(out, "noise_comm_sigma = {}", b.noise.comm_sigma);
    let _ = writeln!(out, "noise_seed = {}", b.noise.seed);
    if !b.nic_numa_efficiency.is_empty() {
        let eff: Vec<String> = b.nic_numa_efficiency.iter().map(f64::to_string).collect();
        let _ = writeln!(out, "nic_numa_efficiency = {}", eff.join(","));
    }
    for pool in &topo.cxl_pools {
        let _ = writeln!(out, "[cxl_pool]");
        let _ = writeln!(out, "socket = {}", pool.socket.index());
        let _ = writeln!(out, "ports = {}", pool.ports);
        let _ = writeln!(out, "port_bandwidth = {}", pool.port_bandwidth);
        let _ = writeln!(out, "pool_bandwidth = {}", pool.pool_bandwidth);
        let _ = writeln!(out, "stream_bandwidth = {}", pool.stream_bandwidth);
        let _ = writeln!(out, "latency = {}", pool.latency);
    }
    out
}

/// One parsed section: raw string values plus the line each came from.
#[derive(Default, Clone)]
struct RawSection {
    entries: Vec<(String, String, usize)>,
}

impl RawSection {
    fn get(&self, key: &'static str) -> Result<(&str, usize), PersistError> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, line)| (v.as_str(), *line))
            .ok_or(PersistError::MissingKey(key))
    }

    fn text(&self, key: &'static str) -> Result<String, PersistError> {
        Ok(self.get(key)?.0.to_string())
    }

    fn f64(&self, key: &'static str) -> Result<f64, PersistError> {
        let (v, line) = self.get(key)?;
        let x: f64 = v.parse().map_err(|_| PersistError::BadValue(line))?;
        // `str::parse::<f64>` happily accepts "NaN"/"inf"; a persisted
        // platform must never smuggle non-finite values past validate().
        if !x.is_finite() {
            return Err(PersistError::BadValue(line));
        }
        Ok(x)
    }

    fn int(&self, key: &'static str) -> Result<u64, PersistError> {
        let (v, line) = self.get(key)?;
        v.parse().map_err(|_| PersistError::BadValue(line))
    }

    fn opt_f64(&self, key: &'static str) -> Result<Option<f64>, PersistError> {
        if self.entries.iter().any(|(k, _, _)| k == key) {
            Ok(Some(self.f64(key)?))
        } else {
            Ok(None)
        }
    }
}

/// Parse the text format back into a platform (validated).
pub fn platform_from_text(text: &str) -> Result<Platform, PersistError> {
    let mut machine: Option<RawSection> = None;
    let mut link: Option<RawSection> = None;
    let mut nic: Option<RawSection> = None;
    let mut behavior: Option<RawSection> = None;
    let mut pools: Vec<RawSection> = Vec::new();
    // Index into the logical section currently being filled.
    enum Cur {
        Machine,
        Link,
        Nic,
        Behavior,
        Pool(usize),
        None,
    }
    let mut current = Cur::None;

    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let slot = |opt: &mut Option<RawSection>, cur| {
                if opt.is_some() {
                    Err(PersistError::BadSection(idx + 1))
                } else {
                    *opt = Some(RawSection::default());
                    Ok(cur)
                }
            };
            current = match section {
                "machine" => slot(&mut machine, Cur::Machine)?,
                "link" => slot(&mut link, Cur::Link)?,
                "nic" => slot(&mut nic, Cur::Nic)?,
                "behavior" => slot(&mut behavior, Cur::Behavior)?,
                "cxl_pool" => {
                    pools.push(RawSection::default());
                    Cur::Pool(pools.len() - 1)
                }
                _ => return Err(PersistError::BadSection(idx + 1)),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PersistError::BadValue(idx + 1));
        };
        let entry = (key.trim().to_string(), value.trim().to_string(), idx + 1);
        match current {
            Cur::Machine => machine.as_mut().unwrap().entries.push(entry),
            Cur::Link => link.as_mut().unwrap().entries.push(entry),
            Cur::Nic => nic.as_mut().unwrap().entries.push(entry),
            Cur::Behavior => behavior.as_mut().unwrap().entries.push(entry),
            Cur::Pool(i) => pools[i].entries.push(entry),
            Cur::None => return Err(PersistError::BadSection(idx + 1)),
        }
    }

    let machine = machine.ok_or(PersistError::MissingKey("[machine]"))?;
    let link = link.ok_or(PersistError::MissingKey("[link]"))?;
    let nic = nic.ok_or(PersistError::MissingKey("[nic]"))?;
    let behavior = behavior.ok_or(PersistError::MissingKey("[behavior]"))?;

    let (tech_str, tech_line) = link.get("tech")?;
    let link_tech = link_tech_parse(tech_str).ok_or(PersistError::BadValue(tech_line))?;
    let (nic_tech_str, nic_tech_line) = nic.get("tech")?;
    let nic_tech = net_tech_parse(nic_tech_str).ok_or(PersistError::BadValue(nic_tech_line))?;
    let nic = Nic {
        tech: nic_tech,
        socket: SocketId::new(nic.int("socket")? as u16),
        pcie: PcieGen {
            generation: nic.int("pcie_generation")? as u8,
            lanes: nic.int("pcie_lanes")? as u8,
        },
        closest_numa: NumaId::new(nic.int("closest_numa")? as u16),
    };
    let mut topology = MachineTopology::homogeneous(
        machine.text("name")?,
        machine.text("processor")?,
        machine.int("sockets")? as u16,
        machine.int("cores_per_socket")? as u16,
        machine.int("numa_per_socket")? as u16,
        machine.int("memory_gb")? as u32,
        link_tech,
        link.f64("cpu_bandwidth")?,
        link.f64("dma_bandwidth")?,
        nic,
    )
    .map_err(|e| PersistError::Invalid(e.to_string()))?;
    for (i, sec) in pools.iter().enumerate() {
        topology.cxl_pools.push(CxlPool {
            id: PoolId::new(i as u16),
            socket: SocketId::new(sec.int("socket")? as u16),
            ports: sec.int("ports")? as u16,
            port_bandwidth: sec.f64("port_bandwidth")?,
            pool_bandwidth: sec.f64("pool_bandwidth")?,
            stream_bandwidth: sec.f64("stream_bandwidth")?,
            latency: sec.f64("latency")?,
        });
    }
    topology
        .validate()
        .map_err(|e| PersistError::Invalid(e.to_string()))?;

    let (knees_str, knees_line) = behavior.get("mem_ctrl_knees")?;
    let mut contention_knees = Vec::new();
    for part in knees_str.split(',').filter(|s| !s.is_empty()) {
        let (n, p) = part
            .split_once(':')
            .ok_or(PersistError::BadValue(knees_line))?;
        let n: u32 = n.parse().map_err(|_| PersistError::BadValue(knees_line))?;
        let p: f64 = p.parse().map_err(|_| PersistError::BadValue(knees_line))?;
        if !p.is_finite() {
            return Err(PersistError::BadValue(knees_line));
        }
        contention_knees.push((n, p));
    }
    let nic_numa_efficiency = match behavior
        .entries
        .iter()
        .find(|(k, _, _)| k == "nic_numa_efficiency")
    {
        Some((_, v, line)) => {
            let mut eff = Vec::new();
            for part in v.split(',').filter(|s| !s.is_empty()) {
                let x: f64 = part.parse().map_err(|_| PersistError::BadValue(*line))?;
                if !x.is_finite() {
                    return Err(PersistError::BadValue(*line));
                }
                eff.push(x);
            }
            eff
        }
        None => Vec::new(),
    };

    Ok(Platform {
        topology,
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: behavior.f64("mem_ctrl_capacity")?,
                contention_knees,
                min_capacity_fraction: behavior.f64("mem_ctrl_min_fraction")?,
            },
            mesh_capacity: behavior.f64("mesh_capacity")?,
            core_stream: CoreStreamSpec {
                local_bandwidth: behavior.f64("core_local")?,
                remote_bandwidth: behavior.f64("core_remote")?,
                scaling_dropoff: behavior.f64("core_dropoff")?,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: behavior.f64("dma_floor_fraction")?,
                dma_accessor_weight: behavior.f64("dma_accessor_weight")?,
                soft_decay_start: behavior.opt_f64("soft_decay_start")?,
                cross_traffic_pressure_factor: behavior.f64("cross_traffic_pressure_factor")?,
            },
            noise: NoiseSpec {
                compute_sigma: behavior.f64("noise_compute_sigma")?,
                comm_sigma: behavior.f64("noise_comm_sigma")?,
                seed: behavior.int("noise_seed")?,
            },
            nic_numa_efficiency,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn round_trip_is_exact_on_every_platform() {
        for p in platforms::extended() {
            let text = platform_to_text(&p);
            let back = platform_from_text(&text)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}\n{text}", p.name()));
            assert_eq!(back, p, "{} did not round-trip", p.name());
        }
    }

    #[test]
    fn cxl_fields_are_persisted() {
        let text = platform_to_text(&platforms::henri_cxl());
        assert!(text.contains("[cxl_pool]"), "{text}");
        assert!(text.contains("stream_bandwidth = 6"), "{text}");
        let base = platform_to_text(&platforms::henri());
        assert!(!base.contains("[cxl_pool]"));
    }

    #[test]
    fn degenerate_pool_is_rejected_with_a_typed_error() {
        let text = platform_to_text(&platforms::henri_cxl())
            .replace("pool_bandwidth = 24", "pool_bandwidth = 0");
        match platform_from_text(&text) {
            Err(PersistError::Invalid(msg)) => {
                assert!(msg.contains("cxl pool bandwidth"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_values_are_rejected_with_line_numbers() {
        let text = platform_to_text(&platforms::dahu());
        let broken = text.replace("mesh_capacity = 76", "mesh_capacity = inf");
        assert!(broken.contains("= inf"), "substitution must hit");
        assert!(matches!(
            platform_from_text(&broken),
            Err(PersistError::BadValue(_))
        ));
    }

    #[test]
    fn missing_sections_and_keys_are_reported() {
        assert_eq!(
            platform_from_text("# empty\n"),
            Err(PersistError::MissingKey("[machine]"))
        );
        let text = platform_to_text(&platforms::henri()).replace("mesh_capacity", "mash_capacity");
        assert_eq!(
            platform_from_text(&text),
            Err(PersistError::MissingKey("mesh_capacity"))
        );
    }

    #[test]
    fn unknown_or_duplicate_sections_are_rejected() {
        assert_eq!(
            platform_from_text("[surprise]\nx = 1\n"),
            Err(PersistError::BadSection(1))
        );
        let text = platform_to_text(&platforms::henri());
        let dup = format!("{text}[machine]\nname = again\n");
        assert!(matches!(
            platform_from_text(&dup),
            Err(PersistError::BadSection(_))
        ));
    }

    #[test]
    fn key_before_any_section_is_rejected() {
        assert_eq!(
            platform_from_text("x = 1\n"),
            Err(PersistError::BadSection(1))
        );
    }
}
