//! # mc-topology — machine topology model
//!
//! Structural and behavioural description of the NUMA machines used in
//! *Modeling Memory Contention between Communications and Computations in
//! Distributed HPC Systems* (Denis, Jeannot, Swartvagher, IPDPS-W 2022).
//!
//! This crate plays the role `hwloc` plays in the paper's benchmark: it
//! describes sockets, NUMA nodes, cores, inter-socket links and the NIC, and
//! answers the locality questions the contention model depends on (is a NUMA
//! node local to the computing socket? does a DMA cross the inter-socket
//! bus?). It also carries the behavioural ground truth (capacities,
//! arbitration policy, quirks) that `mc-memsim` interprets, and ships the
//! six testbed platforms of the paper's Table I.
//!
//! ```
//! use mc_topology::platforms;
//!
//! let henri = platforms::henri();
//! assert_eq!(henri.topology.cores_per_socket(), 18);
//! assert_eq!(henri.topology.numa_per_socket(), 1); // the paper's #m
//! println!("{}", henri.topology.summary());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod behavior;
pub mod builder;
pub mod cxl;
pub mod error;
pub mod graph;
pub mod ids;
pub mod link;
pub mod machine;
pub mod nic;
pub mod persist;
pub mod platforms;

pub use behavior::{ArbitrationSpec, CoreStreamSpec, HwBehavior, MemCtrlSpec, NoiseSpec};
pub use builder::PlatformBuilder;
pub use cxl::CxlPool;
pub use error::TopologyError;
pub use graph::{CapacityRule, ResourceGraph, ResourceKind, ResourceNode, RouteSpec};
pub use ids::{CoreId, LinkId, NumaId, PoolId, SocketId};
pub use link::{InterSocketLink, InterSocketTech, PcieGen};
pub use machine::{MachineTopology, NumaNode, Socket};
pub use nic::{NetworkTech, Nic};
pub use platforms::Platform;
