//! The machine model: sockets, NUMA nodes, cores, links, one NIC.
//!
//! This plays the role hwloc plays in the paper's benchmark: it answers
//! locality questions ("is this NUMA node local to the computing socket?",
//! "does a DMA to this node cross the inter-socket bus?") and enumerates
//! placement combinations.

use serde::{Deserialize, Serialize};

use crate::cxl::CxlPool;
use crate::error::TopologyError;
use crate::ids::{CoreId, NumaId, SocketId};
use crate::link::{InterSocketLink, InterSocketTech};
use crate::nic::Nic;

/// One processor package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Socket {
    /// Identifier (also its index in [`MachineTopology::sockets`]).
    pub id: SocketId,
    /// Marketing name of the processor, as in the paper's Table I.
    pub processor: String,
    /// Number of physical cores on this socket.
    pub cores: u16,
    /// NUMA nodes belonging to this socket, in machine order.
    pub numa_nodes: Vec<NumaId>,
}

/// One NUMA node: a memory bank plus its memory controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumaNode {
    /// Identifier (also its index in [`MachineTopology::numa_nodes`]).
    pub id: NumaId,
    /// Socket this node belongs to.
    pub socket: SocketId,
    /// Capacity of the memory bank in GB (Table I column "Memory"). Not
    /// used by the bandwidth model, kept for completeness of the testbed
    /// description.
    pub memory_gb: u32,
}

/// A complete machine description.
///
/// Invariants (checked by [`MachineTopology::validate`]):
/// * sockets, NUMA nodes and cores are numbered densely in socket order;
/// * every socket has the same number of cores and of NUMA nodes;
/// * every pair of sockets is connected by exactly one inter-socket link;
/// * the NIC is attached to an existing socket and its closest NUMA node
///   belongs to that socket;
/// * CXL pools are numbered densely, attach to existing sockets, and
///   every bandwidth on a link, the NIC, or a pool is finite and
///   positive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineTopology {
    /// Machine name (Table I "Name" column).
    pub name: String,
    /// Processor packages.
    pub sockets: Vec<Socket>,
    /// All NUMA nodes, machine-wide order (socket-major).
    pub numa_nodes: Vec<NumaNode>,
    /// Inter-socket links.
    pub links: Vec<InterSocketLink>,
    /// The (single) high-performance NIC.
    pub nic: Nic,
    /// CXL.mem pools attached to the node (usually empty; the paper's
    /// Table I machines have none).
    #[serde(default)]
    pub cxl_pools: Vec<CxlPool>,
}

impl MachineTopology {
    /// Build a homogeneous dual-socket (or more) machine.
    ///
    /// * `numa_per_socket` — the paper's `#m`;
    /// * `cores_per_socket` — physical cores per socket;
    /// * `memory_gb` — total machine memory, split evenly across nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn homogeneous(
        name: impl Into<String>,
        processor: impl Into<String>,
        sockets: u16,
        cores_per_socket: u16,
        numa_per_socket: u16,
        memory_gb: u32,
        link_tech: InterSocketTech,
        link_cpu_bw: f64,
        link_dma_bw: f64,
        nic: Nic,
    ) -> Result<Self, TopologyError> {
        if sockets == 0 || cores_per_socket == 0 || numa_per_socket == 0 {
            return Err(TopologyError::Empty);
        }
        let processor = processor.into();
        let total_nodes = sockets * numa_per_socket;
        let per_node_gb = memory_gb / u32::from(total_nodes);

        let mut socket_vec = Vec::with_capacity(sockets as usize);
        let mut numa_vec = Vec::with_capacity(total_nodes as usize);
        for s in 0..sockets {
            let node_ids: Vec<NumaId> = (0..numa_per_socket)
                .map(|m| NumaId::new(s * numa_per_socket + m))
                .collect();
            for &nid in &node_ids {
                numa_vec.push(NumaNode {
                    id: nid,
                    socket: SocketId::new(s),
                    memory_gb: per_node_gb,
                });
            }
            socket_vec.push(Socket {
                id: SocketId::new(s),
                processor: processor.clone(),
                cores: cores_per_socket,
                numa_nodes: node_ids,
            });
        }

        let mut links = Vec::new();
        for a in 0..sockets {
            for b in (a + 1)..sockets {
                links.push(InterSocketLink {
                    a: SocketId::new(a),
                    b: SocketId::new(b),
                    tech: link_tech,
                    cpu_bandwidth: link_cpu_bw,
                    dma_bandwidth: link_dma_bw,
                });
            }
        }

        let machine = MachineTopology {
            name: name.into(),
            sockets: socket_vec,
            numa_nodes: numa_vec,
            links,
            nic,
            cxl_pools: Vec::new(),
        };
        machine.validate()?;
        Ok(machine)
    }

    /// Check the structural invariants listed on the type.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.sockets.is_empty() || self.numa_nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        let per = self.sockets[0].numa_nodes.len();
        let cores = self.sockets[0].cores;
        for (i, s) in self.sockets.iter().enumerate() {
            if s.id.index() != i {
                return Err(TopologyError::NonDenseIds("socket"));
            }
            if s.numa_nodes.len() != per {
                return Err(TopologyError::HeterogeneousSockets);
            }
            if s.cores != cores {
                return Err(TopologyError::HeterogeneousSockets);
            }
        }
        for (i, n) in self.numa_nodes.iter().enumerate() {
            if n.id.index() != i {
                return Err(TopologyError::NonDenseIds("numa"));
            }
            let s = self
                .sockets
                .get(n.socket.index())
                .ok_or(TopologyError::DanglingReference("numa node socket"))?;
            if !s.numa_nodes.contains(&n.id) {
                return Err(TopologyError::DanglingReference("socket numa list"));
            }
        }
        for s in 1..self.sockets.len() {
            for t in 0..s {
                let count = self
                    .links
                    .iter()
                    .filter(|l| l.connects(SocketId::new(s as u16), SocketId::new(t as u16)))
                    .count();
                if count != 1 {
                    return Err(TopologyError::BadLinkCount {
                        a: SocketId::new(s as u16),
                        b: SocketId::new(t as u16),
                        count,
                    });
                }
            }
        }
        if self.nic.socket.index() >= self.sockets.len() {
            return Err(TopologyError::DanglingReference("nic socket"));
        }
        let nic_node = self
            .numa_nodes
            .get(self.nic.closest_numa.index())
            .ok_or(TopologyError::DanglingReference("nic numa"))?;
        if nic_node.socket != self.nic.socket {
            return Err(TopologyError::DanglingReference(
                "nic numa not on nic socket",
            ));
        }
        // Bandwidths the solver divides by must be finite and positive —
        // a zero or NaN capacity would silently poison every rate.
        fn positive(what: &'static str, v: f64) -> Result<(), TopologyError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(TopologyError::DegenerateBandwidth(what))
            }
        }
        for l in &self.links {
            positive("inter-socket link cpu bandwidth", l.cpu_bandwidth)?;
            positive("inter-socket link dma bandwidth", l.dma_bandwidth)?;
        }
        positive("nic pcie bandwidth", self.nic.pcie.usable_bandwidth())?;
        positive(
            "nic wire bandwidth",
            self.nic.tech.wire_rate() * self.nic.tech.protocol_efficiency(),
        )?;
        for (i, pool) in self.cxl_pools.iter().enumerate() {
            if pool.id.index() != i {
                return Err(TopologyError::NonDenseIds("cxl pool"));
            }
            if pool.socket.index() >= self.sockets.len() {
                return Err(TopologyError::DanglingReference("cxl pool socket"));
            }
            if pool.ports == 0 {
                return Err(TopologyError::DegenerateBandwidth("cxl pool has no ports"));
            }
            positive("cxl port bandwidth", pool.port_bandwidth)?;
            positive("cxl pool bandwidth", pool.pool_bandwidth)?;
            positive("cxl stream bandwidth", pool.stream_bandwidth)?;
            if !(pool.latency.is_finite() && pool.latency >= 0.0) {
                return Err(TopologyError::DegenerateBandwidth("cxl pool latency"));
            }
        }
        Ok(())
    }

    /// Number of NUMA nodes per socket — the paper's `#m`.
    pub fn numa_per_socket(&self) -> usize {
        self.sockets[0].numa_nodes.len()
    }

    /// Total number of NUMA nodes.
    pub fn numa_count(&self) -> usize {
        self.numa_nodes.len()
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.sockets[0].cores as usize
    }

    /// Socket owning a NUMA node.
    pub fn socket_of_numa(&self, numa: NumaId) -> SocketId {
        self.numa_nodes[numa.index()].socket
    }

    /// Socket owning a core (cores are numbered socket-major).
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId::new((core.index() / self.cores_per_socket()) as u16)
    }

    /// Is `numa` local to `socket` (paper terminology: a *local* access)?
    pub fn is_local(&self, socket: SocketId, numa: NumaId) -> bool {
        self.socket_of_numa(numa) == socket
    }

    /// Is `numa` remote with respect to the computing socket 0? This is the
    /// `m >= #m` test in the paper's equations 6–7.
    pub fn is_remote_for_compute(&self, numa: NumaId) -> bool {
        !self.is_local(SocketId::new(0), numa)
    }

    /// Does a DMA from the NIC to `numa` cross the inter-socket bus?
    pub fn dma_crosses_socket_link(&self, numa: NumaId) -> bool {
        self.socket_of_numa(numa) != self.nic.socket
    }

    /// The inter-socket link between two sockets, if distinct.
    pub fn link_between(&self, a: SocketId, b: SocketId) -> Option<&InterSocketLink> {
        if a == b {
            return None;
        }
        self.links.iter().find(|l| l.connects(a, b))
    }

    /// All NUMA node identifiers, machine order.
    pub fn numa_ids(&self) -> impl Iterator<Item = NumaId> + '_ {
        self.numa_nodes.iter().map(|n| n.id)
    }

    /// The first NUMA node of a socket (the calibration configurations of
    /// the paper use "the first NUMA node of the first socket" and "the
    /// first NUMA node of the second socket").
    pub fn first_numa_of(&self, socket: SocketId) -> NumaId {
        self.sockets[socket.index()].numa_nodes[0]
    }

    /// All `(m_comp, m_comm)` placement combinations, row-major with the
    /// communication placement as the outer index — matching the layout of
    /// the paper's figures (each *line* of subplots is one communication
    /// placement, each *column* one computation placement).
    pub fn placement_combinations(&self) -> Vec<(NumaId, NumaId)> {
        let mut v = Vec::with_capacity(self.numa_count() * self.numa_count());
        for comm in self.numa_ids() {
            for comp in self.numa_ids() {
                v.push((comp, comm));
            }
        }
        v
    }

    /// Hop distance between sockets: 0 for same socket, 1 otherwise (all
    /// paper machines are dual-socket, fully connected).
    pub fn socket_distance(&self, a: SocketId, b: SocketId) -> u32 {
        u32::from(a != b)
    }

    /// Human-readable one-line summary in the style of Table I.
    pub fn summary(&self) -> String {
        let total_mem: u32 = self.numa_nodes.iter().map(|n| n.memory_gb).sum();
        format!(
            "{}: {} x {} with {} cores, {} GB of RAM, {} NUMA nodes, {}",
            self.name,
            self.sockets.len(),
            self.sockets[0].processor,
            self.sockets[0].cores,
            total_mem,
            self.numa_count(),
            self.nic.tech
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PcieGen;
    use crate::nic::NetworkTech;

    fn two_socket_machine(numa_per_socket: u16) -> MachineTopology {
        MachineTopology::homogeneous(
            "test",
            "Testor 9000",
            2,
            18,
            numa_per_socket,
            96,
            InterSocketTech::Upi,
            36.0,
            30.0,
            Nic {
                tech: NetworkTech::InfinibandEdr,
                socket: SocketId::new(0),
                pcie: PcieGen::GEN3_X16,
                closest_numa: NumaId::new(0),
            },
        )
        .unwrap()
    }

    #[test]
    fn homogeneous_builds_and_validates() {
        let m = two_socket_machine(2);
        assert_eq!(m.numa_count(), 4);
        assert_eq!(m.numa_per_socket(), 2);
        assert_eq!(m.cores_per_socket(), 18);
        m.validate().unwrap();
    }

    #[test]
    fn numa_ownership_is_socket_major() {
        let m = two_socket_machine(2);
        assert_eq!(m.socket_of_numa(NumaId::new(0)), SocketId::new(0));
        assert_eq!(m.socket_of_numa(NumaId::new(1)), SocketId::new(0));
        assert_eq!(m.socket_of_numa(NumaId::new(2)), SocketId::new(1));
        assert_eq!(m.socket_of_numa(NumaId::new(3)), SocketId::new(1));
    }

    #[test]
    fn core_ownership_is_socket_major() {
        let m = two_socket_machine(1);
        assert_eq!(m.socket_of_core(CoreId::new(0)), SocketId::new(0));
        assert_eq!(m.socket_of_core(CoreId::new(17)), SocketId::new(0));
        assert_eq!(m.socket_of_core(CoreId::new(18)), SocketId::new(1));
    }

    #[test]
    fn remote_test_matches_paper_convention() {
        let m = two_socket_machine(2);
        // #m = 2: nodes 0,1 local, nodes 2,3 remote.
        assert!(!m.is_remote_for_compute(NumaId::new(0)));
        assert!(!m.is_remote_for_compute(NumaId::new(1)));
        assert!(m.is_remote_for_compute(NumaId::new(2)));
        assert!(m.is_remote_for_compute(NumaId::new(3)));
    }

    #[test]
    fn dma_crossing_depends_on_nic_socket() {
        let m = two_socket_machine(2);
        assert!(!m.dma_crosses_socket_link(NumaId::new(0)));
        assert!(m.dma_crosses_socket_link(NumaId::new(2)));
    }

    #[test]
    fn placement_combinations_cover_the_grid() {
        let m = two_socket_machine(2);
        let combos = m.placement_combinations();
        assert_eq!(combos.len(), 16);
        // First row: comm on node 0, comp sweeping.
        assert_eq!(combos[0], (NumaId::new(0), NumaId::new(0)));
        assert_eq!(combos[1], (NumaId::new(1), NumaId::new(0)));
        // Last entry: both on last node.
        assert_eq!(combos[15], (NumaId::new(3), NumaId::new(3)));
    }

    #[test]
    fn link_between_finds_the_single_link() {
        let m = two_socket_machine(1);
        assert!(m.link_between(SocketId::new(0), SocketId::new(1)).is_some());
        assert!(m.link_between(SocketId::new(0), SocketId::new(0)).is_none());
    }

    #[test]
    fn first_numa_of_socket() {
        let m = two_socket_machine(2);
        assert_eq!(m.first_numa_of(SocketId::new(0)), NumaId::new(0));
        assert_eq!(m.first_numa_of(SocketId::new(1)), NumaId::new(2));
    }

    #[test]
    fn summary_mentions_key_facts() {
        let m = two_socket_machine(2);
        let s = m.summary();
        assert!(s.contains("test"));
        assert!(s.contains("18 cores"));
        assert!(s.contains("4 NUMA nodes"));
        assert!(s.contains("InfiniBand EDR"));
    }

    #[test]
    fn validation_rejects_nic_on_wrong_socket() {
        let mut m = two_socket_machine(2);
        m.nic.closest_numa = NumaId::new(2); // belongs to socket 1, NIC on 0
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_missing_link() {
        let mut m = two_socket_machine(1);
        m.links.clear();
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_sockets() {
        let err = MachineTopology::homogeneous(
            "bad",
            "p",
            0,
            1,
            1,
            1,
            InterSocketTech::Upi,
            1.0,
            1.0,
            Nic {
                tech: NetworkTech::InfinibandEdr,
                socket: SocketId::new(0),
                pcie: PcieGen::GEN3_X16,
                closest_numa: NumaId::new(0),
            },
        );
        assert!(err.is_err());
    }
}
