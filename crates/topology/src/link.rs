//! Inter-component links: inter-socket buses and PCIe attachments.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ids::SocketId;

/// The technology of an inter-socket bus. The paper (Fig. 1) notes the bus is
/// called *Ultra Path Interconnect* (UPI) on Intel, *Infinity Fabric* (IF) on
/// AMD; ARM ThunderX2 uses *Cavium Coherent Processor Interconnect* (CCPI),
/// and the older occigen platform uses *QuickPath Interconnect* (QPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterSocketTech {
    /// Intel Ultra Path Interconnect (Skylake-SP and later).
    Upi,
    /// Intel QuickPath Interconnect (pre-Skylake Xeons).
    Qpi,
    /// AMD Infinity Fabric (xGMI between sockets).
    InfinityFabric,
    /// Cavium/Marvell Coherent Processor Interconnect (ThunderX2).
    Ccpi2,
}

impl fmt::Display for InterSocketTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterSocketTech::Upi => "UPI",
            InterSocketTech::Qpi => "QPI",
            InterSocketTech::InfinityFabric => "Infinity Fabric",
            InterSocketTech::Ccpi2 => "CCPI2",
        };
        f.write_str(s)
    }
}

/// A PCI Express generation/width, used for the NIC attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PcieGen {
    /// PCIe generation (3 or 4 on the paper's platforms).
    pub generation: u8,
    /// Number of lanes (x16 for all HPC NICs considered).
    pub lanes: u8,
}

impl PcieGen {
    /// PCIe 3.0 x16, the attachment of EDR InfiniBand and Omni-Path NICs.
    pub const GEN3_X16: PcieGen = PcieGen {
        generation: 3,
        lanes: 16,
    };
    /// PCIe 4.0 x16, the attachment of HDR InfiniBand NICs (diablo).
    pub const GEN4_X16: PcieGen = PcieGen {
        generation: 4,
        lanes: 16,
    };

    /// Usable (payload) bandwidth in GB/s, after encoding and protocol
    /// overheads. Gen3 x16 delivers ≈ 13.8 GB/s of payload in practice,
    /// gen4 x16 about twice that.
    pub fn usable_bandwidth(self) -> f64 {
        // Per-lane payload bandwidth in GB/s after 128b/130b encoding and
        // ~13% TLP header overhead (measured values from vendor tuning
        // guides rather than the raw signalling rate).
        let per_lane = match self.generation {
            1 => 0.21,
            2 => 0.42,
            3 => 0.86,
            4 => 1.72,
            _ => 3.4, // gen5+
        };
        per_lane * f64::from(self.lanes)
    }
}

impl fmt::Display for PcieGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCIe {}.0 x{}", self.generation, self.lanes)
    }
}

/// An inter-socket link between two sockets.
///
/// Capacities are *per direction*: the benchmark only streams data in one
/// direction at a time (computation writes, communication receives), so the
/// simulator models each direction as an independent resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterSocketLink {
    /// One endpoint.
    pub a: SocketId,
    /// The other endpoint.
    pub b: SocketId,
    /// Bus technology (display/documentation only; behaviour is carried by
    /// the capacity numbers).
    pub tech: InterSocketTech,
    /// Usable bandwidth in GB/s per direction for CPU-initiated traffic.
    pub cpu_bandwidth: f64,
    /// Usable bandwidth in GB/s per direction for DMA (PCIe-originated)
    /// traffic crossing the bus. On some machines (diablo) this is markedly
    /// lower than `cpu_bandwidth` because I/O traffic takes a narrower path
    /// through the fabric, which is what makes the NIC locality-sensitive.
    pub dma_bandwidth: f64,
}

impl InterSocketLink {
    /// Whether this link connects `x` and `y` (in either order).
    pub fn connects(&self, x: SocketId, y: SocketId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_bandwidth_is_monotonic_in_generation() {
        assert!(PcieGen::GEN4_X16.usable_bandwidth() > PcieGen::GEN3_X16.usable_bandwidth());
    }

    #[test]
    fn pcie_gen3_x16_close_to_measured() {
        let bw = PcieGen::GEN3_X16.usable_bandwidth();
        assert!((12.0..15.0).contains(&bw), "got {bw}");
    }

    #[test]
    fn link_connects_is_symmetric() {
        let l = InterSocketLink {
            a: SocketId::new(0),
            b: SocketId::new(1),
            tech: InterSocketTech::Upi,
            cpu_bandwidth: 36.0,
            dma_bandwidth: 30.0,
        };
        assert!(l.connects(SocketId::new(0), SocketId::new(1)));
        assert!(l.connects(SocketId::new(1), SocketId::new(0)));
        assert!(!l.connects(SocketId::new(0), SocketId::new(2)));
    }

    #[test]
    fn tech_display() {
        assert_eq!(
            InterSocketTech::InfinityFabric.to_string(),
            "Infinity Fabric"
        );
        assert_eq!(PcieGen::GEN3_X16.to_string(), "PCIe 3.0 x16");
    }
}
