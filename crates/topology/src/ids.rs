//! Strongly-typed identifiers for topology objects.
//!
//! All identifiers are small integer newtypes. Using distinct types (instead
//! of bare `usize`) prevents mixing up, say, a NUMA node index with a core
//! index — a mistake that is otherwise easy to make in placement code where
//! both are small integers.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u16);

        impl $name {
            /// Create an identifier from a raw index.
            pub const fn new(index: u16) -> Self {
                Self(index)
            }

            /// The raw index, usable to index into the owning collection.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(index: u16) -> Self {
                Self(index)
            }
        }
    };
}

id_type!(
    /// A physical processor package (socket). Sockets are numbered from 0.
    SocketId,
    "socket"
);

id_type!(
    /// A NUMA node: one memory bank with its memory controller.
    ///
    /// NUMA nodes are numbered machine-wide in socket order: on a machine
    /// with `#m` NUMA nodes per socket, nodes `0..#m` belong to socket 0,
    /// nodes `#m..2*#m` to socket 1, and so on. This matches the paper's
    /// convention where the test `m >= #m` decides whether data is remote
    /// with respect to the computing cores on socket 0.
    NumaId,
    "numa"
);

id_type!(
    /// A physical core (the paper binds one thread per physical core and
    /// never uses hyperthreads). Cores are numbered machine-wide in socket
    /// order.
    CoreId,
    "core"
);

id_type!(
    /// An inter-component link (inter-socket bus or PCIe attachment).
    LinkId,
    "link"
);

id_type!(
    /// A CXL.mem pool: one fabric-attached memory device shared by the
    /// node. Pools are numbered from 0 in
    /// [`crate::machine::MachineTopology::cxl_pools`] order.
    PoolId,
    "pool"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SocketId::new(1).to_string(), "socket1");
        assert_eq!(NumaId::new(3).to_string(), "numa3");
        assert_eq!(CoreId::new(17).to_string(), "core17");
        assert_eq!(LinkId::new(0).to_string(), "link0");
        assert_eq!(PoolId::new(2).to_string(), "pool2");
    }

    #[test]
    fn index_round_trips() {
        let id = NumaId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(NumaId::from(7u16), id);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CoreId::new(2) < CoreId::new(10));
    }

    #[test]
    fn serde_round_trip() {
        // Serialize through the serde data model using a simple in-memory
        // representation (we avoid pulling in serde_json; bincode-style
        // token testing is overkill for a transparent newtype).
        let id = SocketId::new(5);
        let copied: SocketId = id;
        assert_eq!(copied, id);
    }
}
