//! Fluent builder for custom platforms.
//!
//! The six Table I machines cover the paper's evaluation; downstream users
//! modelling *their* cluster need to describe their own node. The builder
//! assembles a [`Platform`] from high-level facts (socket/core/NUMA
//! counts, link and memory bandwidths, NIC technology and placement) and
//! validates the result.

use crate::behavior::{ArbitrationSpec, CoreStreamSpec, HwBehavior, MemCtrlSpec, NoiseSpec};
use crate::cxl::CxlPool;
use crate::error::TopologyError;
use crate::ids::{NumaId, PoolId, SocketId};
use crate::link::{InterSocketTech, PcieGen};
use crate::machine::MachineTopology;
use crate::nic::{NetworkTech, Nic};
use crate::platforms::Platform;

/// Builder for a custom [`Platform`]. Start from [`PlatformBuilder::new`],
/// chain setters, finish with [`PlatformBuilder::build`].
///
/// ```
/// use mc_topology::builder::{InterconnectKind, PlatformBuilder};
/// use mc_topology::NetworkTech;
///
/// let platform = PlatformBuilder::new("mycluster")
///     .processor("Example CPU 9000", 24)
///     .sockets(2)
///     .numa_per_socket(2)
///     .memory_gb(128)
///     .memory_controller(45.0, 8, 0.5)
///     .core_stream(5.0, 4.0)
///     .interconnect(InterconnectKind::Upi, 36.0, 26.0)
///     .nic(NetworkTech::InfinibandEdr, 0)
///     .build()
///     .unwrap();
/// assert_eq!(platform.topology.numa_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    processor: String,
    cores_per_socket: u16,
    sockets: u16,
    numa_per_socket: u16,
    memory_gb: u32,
    mem_ctrl: MemCtrlSpec,
    mesh_capacity: Option<f64>,
    core_stream: CoreStreamSpec,
    link_tech: InterSocketTech,
    link_cpu_bw: f64,
    link_dma_bw: f64,
    nic_tech: NetworkTech,
    nic_socket: u16,
    nic_pcie: PcieGen,
    arbitration: ArbitrationSpec,
    noise: NoiseSpec,
    nic_numa_efficiency: Vec<f64>,
    cxl_pools: Vec<CxlPool>,
}

/// Re-exported link technology under a builder-friendly name.
pub use crate::link::InterSocketTech as InterconnectKind;

impl PlatformBuilder {
    /// Start a builder with sensible dual-socket Intel-like defaults.
    pub fn new(name: impl Into<String>) -> Self {
        PlatformBuilder {
            name: name.into(),
            processor: "Generic CPU".into(),
            cores_per_socket: 16,
            sockets: 2,
            numa_per_socket: 1,
            memory_gb: 128,
            mem_ctrl: MemCtrlSpec {
                base_capacity: 75.0,
                contention_knees: vec![(13, 0.5)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: None,
            core_stream: CoreStreamSpec {
                local_bandwidth: 5.4,
                remote_bandwidth: 4.2,
                scaling_dropoff: 0.0,
            },
            link_tech: InterSocketTech::Upi,
            link_cpu_bw: 36.0,
            link_dma_bw: 26.0,
            nic_tech: NetworkTech::InfinibandEdr,
            nic_socket: 0,
            nic_pcie: PcieGen::GEN3_X16,
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.3,
                dma_accessor_weight: 2.2,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.01,
                comm_sigma: 0.012,
                seed: 0x5EED,
            },
            nic_numa_efficiency: vec![],
            cxl_pools: vec![],
        }
    }

    /// Processor name and physical cores per socket.
    pub fn processor(mut self, name: impl Into<String>, cores_per_socket: u16) -> Self {
        self.processor = name.into();
        self.cores_per_socket = cores_per_socket;
        self
    }

    /// Number of sockets (≥ 2 for a machine with remote accesses).
    pub fn sockets(mut self, sockets: u16) -> Self {
        self.sockets = sockets;
        self
    }

    /// NUMA nodes per socket (the paper's `#m`).
    pub fn numa_per_socket(mut self, numa: u16) -> Self {
        self.numa_per_socket = numa;
        self
    }

    /// Total machine memory in GB (split evenly across NUMA nodes).
    pub fn memory_gb(mut self, gb: u32) -> Self {
        self.memory_gb = gb;
        self
    }

    /// Memory-controller behaviour: non-temporal capacity in GB/s per NUMA
    /// node, the accessor knee, and the per-extra-accessor penalty.
    pub fn memory_controller(mut self, capacity: f64, knee: u32, penalty: f64) -> Self {
        self.mem_ctrl = MemCtrlSpec {
            base_capacity: capacity,
            contention_knees: vec![(knee, penalty)],
            min_capacity_fraction: 0.55,
        };
        self
    }

    /// Socket-level mesh throughput (defaults to the controller capacity
    /// times the NUMA nodes per socket, capped sensibly).
    pub fn mesh_capacity(mut self, capacity: f64) -> Self {
        self.mesh_capacity = Some(capacity);
        self
    }

    /// Per-core streaming bandwidth to local and remote NUMA nodes, GB/s.
    pub fn core_stream(mut self, local: f64, remote: f64) -> Self {
        self.core_stream.local_bandwidth = local;
        self.core_stream.remote_bandwidth = remote;
        self
    }

    /// Inter-socket interconnect: technology plus usable CPU and DMA
    /// bandwidths per direction.
    pub fn interconnect(mut self, kind: InterconnectKind, cpu_bw: f64, dma_bw: f64) -> Self {
        self.link_tech = kind;
        self.link_cpu_bw = cpu_bw;
        self.link_dma_bw = dma_bw;
        self
    }

    /// NIC technology and the socket hosting it.
    pub fn nic(mut self, tech: NetworkTech, socket: u16) -> Self {
        self.nic_tech = tech;
        self.nic_socket = socket;
        if tech == NetworkTech::InfinibandHdr {
            self.nic_pcie = PcieGen::GEN4_X16;
        }
        self
    }

    /// DMA arbitration: guaranteed floor fraction and accessor weight.
    pub fn arbitration(mut self, floor_fraction: f64, accessor_weight: f64) -> Self {
        self.arbitration.dma_floor_fraction = floor_fraction;
        self.arbitration.dma_accessor_weight = accessor_weight;
        self
    }

    /// Measurement-noise magnitudes and seed.
    pub fn noise(mut self, compute_sigma: f64, comm_sigma: f64, seed: u64) -> Self {
        self.noise = NoiseSpec {
            compute_sigma,
            comm_sigma,
            seed,
        };
        self
    }

    /// Per-NUMA NIC efficiency multipliers (indexed by machine-wide node
    /// id; missing entries default to 1.0).
    pub fn nic_numa_efficiency(mut self, eff: Vec<f64>) -> Self {
        self.nic_numa_efficiency = eff;
        self
    }

    /// Attach a CXL.mem pool: the hosting socket, the number of CXL
    /// ports and per-port bandwidth (GB/s), the pool controller's
    /// aggregate bandwidth (GB/s), the bandwidth one load/store stream
    /// sustains (GB/s), and the one-way access latency in seconds.
    /// Call repeatedly for several pools; ids are assigned in call
    /// order.
    pub fn cxl_pool(
        mut self,
        socket: u16,
        ports: u16,
        port_bandwidth: f64,
        pool_bandwidth: f64,
        stream_bandwidth: f64,
        latency: f64,
    ) -> Self {
        self.cxl_pools.push(CxlPool {
            id: PoolId::new(self.cxl_pools.len() as u16),
            socket: SocketId::new(socket),
            ports,
            port_bandwidth,
            pool_bandwidth,
            stream_bandwidth,
            latency,
        });
        self
    }

    /// Assemble and validate the platform.
    pub fn build(self) -> Result<Platform, TopologyError> {
        let nic_numa = NumaId::new(self.nic_socket * self.numa_per_socket);
        let mut topology = MachineTopology::homogeneous(
            self.name,
            self.processor,
            self.sockets,
            self.cores_per_socket,
            self.numa_per_socket,
            self.memory_gb,
            self.link_tech,
            self.link_cpu_bw,
            self.link_dma_bw,
            Nic {
                tech: self.nic_tech,
                socket: SocketId::new(self.nic_socket),
                pcie: self.nic_pcie,
                closest_numa: nic_numa,
            },
        )?;
        if !self.cxl_pools.is_empty() {
            topology.cxl_pools = self.cxl_pools;
            topology.validate()?;
        }
        let mesh_capacity = self.mesh_capacity.unwrap_or_else(|| {
            // Default: the socket can absorb what all its controllers can,
            // up to a mild mesh limit.
            self.mem_ctrl.base_capacity * f64::from(self.numa_per_socket).min(2.0)
        });
        Ok(Platform {
            topology,
            behavior: HwBehavior {
                mem_ctrl: self.mem_ctrl,
                mesh_capacity,
                core_stream: self.core_stream,
                arbitration: self.arbitration,
                noise: self.noise,
                nic_numa_efficiency: self.nic_numa_efficiency,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_valid_platform() {
        let p = PlatformBuilder::new("default-box").build().unwrap();
        p.topology.validate().unwrap();
        assert_eq!(p.topology.cores_per_socket(), 16);
        assert_eq!(p.topology.numa_count(), 2);
        assert_eq!(p.name(), "default-box");
    }

    #[test]
    fn custom_settings_are_applied() {
        let p = PlatformBuilder::new("big")
            .processor("Mega 128", 64)
            .numa_per_socket(4)
            .memory_gb(512)
            .memory_controller(40.0, 10, 0.6)
            .core_stream(4.5, 3.6)
            .interconnect(InterconnectKind::InfinityFabric, 40.0, 14.0)
            .nic(NetworkTech::InfinibandHdr, 1)
            .arbitration(0.5, 2.0)
            .noise(0.005, 0.006, 77)
            .build()
            .unwrap();
        assert_eq!(p.topology.cores_per_socket(), 64);
        assert_eq!(p.topology.numa_count(), 8);
        assert_eq!(p.topology.nic.socket, SocketId::new(1));
        // NIC on socket 1 with 4 nodes/socket → closest node is 4.
        assert_eq!(p.topology.nic.closest_numa, NumaId::new(4));
        // HDR implies a gen4 slot.
        assert_eq!(p.topology.nic.pcie, PcieGen::GEN4_X16);
        assert_eq!(p.behavior.arbitration.dma_floor_fraction, 0.5);
        assert_eq!(p.behavior.noise.seed, 77);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(PlatformBuilder::new("bad").sockets(0).build().is_err());
        assert!(PlatformBuilder::new("bad")
            .processor("x", 0)
            .build()
            .is_err());
    }

    #[test]
    fn cxl_pools_are_attached_and_validated() {
        let p = PlatformBuilder::new("pooled")
            .cxl_pool(1, 4, 8.0, 24.0, 6.0, 0.4e-6)
            .build()
            .unwrap();
        assert_eq!(p.topology.cxl_pools.len(), 1);
        let pool = &p.topology.cxl_pools[0];
        assert_eq!(pool.id.index(), 0);
        assert_eq!(pool.socket, SocketId::new(1));
        assert_eq!(pool.ports, 4);
        // A degenerate pool bandwidth is rejected at build time.
        let bad = PlatformBuilder::new("bad-pool")
            .cxl_pool(0, 4, 0.0, 24.0, 6.0, 0.4e-6)
            .build();
        assert!(matches!(
            bad,
            Err(TopologyError::DegenerateBandwidth("cxl port bandwidth"))
        ));
        // So is a pool hanging off a socket the machine does not have.
        let dangling = PlatformBuilder::new("dangling-pool")
            .cxl_pool(7, 4, 8.0, 24.0, 6.0, 0.4e-6)
            .build();
        assert!(matches!(
            dangling,
            Err(TopologyError::DanglingReference("cxl pool socket"))
        ));
    }

    #[test]
    fn default_mesh_tracks_controller_capacity() {
        let one = PlatformBuilder::new("a").build().unwrap();
        assert!((one.behavior.mesh_capacity - 75.0).abs() < 1e-9);
        let two = PlatformBuilder::new("b")
            .numa_per_socket(2)
            .build()
            .unwrap();
        assert!((two.behavior.mesh_capacity - 150.0).abs() < 1e-9);
        let explicit = PlatformBuilder::new("c")
            .mesh_capacity(99.0)
            .build()
            .unwrap();
        assert_eq!(explicit.behavior.mesh_capacity, 99.0);
    }
}
