//! Topology validation errors.

use std::fmt;

use crate::ids::SocketId;

/// Errors raised by [`crate::machine::MachineTopology::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The machine has no socket, NUMA node or core.
    Empty,
    /// Identifiers are not dense indexes into the owning collection.
    NonDenseIds(&'static str),
    /// Sockets differ in core or NUMA node count.
    HeterogeneousSockets,
    /// An object references a component that does not exist (or is
    /// inconsistent with the referenced component).
    DanglingReference(&'static str),
    /// A socket pair is connected by zero or several links.
    BadLinkCount {
        /// First socket.
        a: SocketId,
        /// Second socket.
        b: SocketId,
        /// Number of links found (expected exactly 1).
        count: usize,
    },
    /// A link, NIC, or CXL pool declares a zero, negative, or
    /// non-finite bandwidth (or latency) — a silent divide-by-zero
    /// hazard if it ever reached the solver.
    DegenerateBandwidth(&'static str),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "machine has no sockets/NUMA nodes/cores"),
            TopologyError::NonDenseIds(what) => {
                write!(f, "{what} identifiers are not dense indexes")
            }
            TopologyError::HeterogeneousSockets => {
                write!(f, "sockets differ in core or NUMA node count")
            }
            TopologyError::DanglingReference(what) => {
                write!(f, "dangling or inconsistent reference: {what}")
            }
            TopologyError::BadLinkCount { a, b, count } => {
                write!(f, "{a} and {b} connected by {count} links, expected 1")
            }
            TopologyError::DegenerateBandwidth(what) => {
                write!(f, "zero, negative, or non-finite value: {what}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::BadLinkCount {
            a: SocketId::new(0),
            b: SocketId::new(1),
            count: 2,
        };
        let s = e.to_string();
        assert!(s.contains("socket0"));
        assert!(s.contains("2 links"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TopologyError::Empty);
    }
}
