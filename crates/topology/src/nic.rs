//! Network interface description: technology, wire rate, attachment point.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ids::{NumaId, SocketId};
use crate::link::PcieGen;

/// High-speed interconnect technologies used by the paper's testbed
/// (Table I). Only fast networks are considered, "where contention occurs
/// more".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkTech {
    /// InfiniBand FDR: 56 Gb/s signalling, ≈ 6.8 GB/s payload.
    InfinibandFdr,
    /// InfiniBand EDR: 100 Gb/s signalling, ≈ 12.3 GB/s payload.
    InfinibandEdr,
    /// InfiniBand HDR: 200 Gb/s signalling, ≈ 24.6 GB/s payload.
    InfinibandHdr,
    /// Intel Omni-Path 100 series: 100 Gb/s signalling, ≈ 12.3 GB/s payload.
    OmniPath100,
}

impl NetworkTech {
    /// Raw payload wire rate in GB/s (after encoding), before any protocol
    /// or PCIe overhead. This is the upper bound a perfect benchmark could
    /// observe for very large messages.
    pub fn wire_rate(self) -> f64 {
        match self {
            NetworkTech::InfinibandFdr => 6.8,
            NetworkTech::InfinibandEdr => 12.3,
            NetworkTech::InfinibandHdr => 24.6,
            NetworkTech::OmniPath100 => 12.3,
        }
    }

    /// One-way wire latency in microseconds for a small control message
    /// (used by the rendezvous handshake in the protocol simulator).
    pub fn small_message_latency_us(self) -> f64 {
        match self {
            NetworkTech::InfinibandFdr => 1.1,
            NetworkTech::InfinibandEdr => 0.9,
            NetworkTech::InfinibandHdr => 0.8,
            // Omni-Path is an "onloaded" design: the host CPU runs more of
            // the protocol, giving slightly higher small-message latency.
            NetworkTech::OmniPath100 => 1.3,
        }
    }

    /// Fraction of the wire rate a well-tuned receive benchmark achieves
    /// with 64 MB messages (protocol efficiency). Omni-Path's PIO/onload
    /// design loses a little more than InfiniBand's full offload.
    pub fn protocol_efficiency(self) -> f64 {
        match self {
            NetworkTech::InfinibandFdr => 0.92,
            NetworkTech::InfinibandEdr => 0.92,
            NetworkTech::InfinibandHdr => 0.93,
            NetworkTech::OmniPath100 => 0.86,
        }
    }
}

impl fmt::Display for NetworkTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkTech::InfinibandFdr => "InfiniBand FDR",
            NetworkTech::InfinibandEdr => "InfiniBand EDR",
            NetworkTech::InfinibandHdr => "InfiniBand HDR",
            NetworkTech::OmniPath100 => "Omni-Path 100",
        };
        f.write_str(s)
    }
}

/// A network interface card and where it is plugged.
///
/// The NIC sits behind a PCIe link attached to one socket; received data is
/// DMA-written to the NUMA node holding the communication buffer, crossing
/// the inter-socket bus when that node belongs to the other socket. Knowing
/// the attachment socket is essential: the paper observes (diablo) that
/// network bandwidth can almost double when the destination buffer is local
/// to the NIC's socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nic {
    /// Interconnect technology.
    pub tech: NetworkTech,
    /// Socket whose PCIe root complex hosts the NIC.
    pub socket: SocketId,
    /// PCIe attachment.
    pub pcie: PcieGen,
    /// NUMA node closest to the NIC (first node of `socket` unless the
    /// platform says otherwise). DMA to this node never crosses the
    /// inter-socket bus.
    pub closest_numa: NumaId,
}

impl Nic {
    /// Peak receive bandwidth in GB/s achievable for large messages to the
    /// closest NUMA node: wire rate × protocol efficiency, capped by the
    /// PCIe attachment.
    pub fn peak_receive_bandwidth(&self) -> f64 {
        (self.tech.wire_rate() * self.tech.protocol_efficiency()).min(self.pcie.usable_bandwidth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edr_nic() -> Nic {
        Nic {
            tech: NetworkTech::InfinibandEdr,
            socket: SocketId::new(0),
            pcie: PcieGen::GEN3_X16,
            closest_numa: NumaId::new(0),
        }
    }

    #[test]
    fn edr_peak_close_to_11_gbs() {
        let peak = edr_nic().peak_receive_bandwidth();
        assert!((10.5..12.0).contains(&peak), "got {peak}");
    }

    #[test]
    fn hdr_is_capped_by_pcie_gen3() {
        // An HDR NIC mistakenly plugged in a gen3 slot cannot exceed the
        // slot bandwidth — the min() must kick in.
        let nic = Nic {
            tech: NetworkTech::InfinibandHdr,
            pcie: PcieGen::GEN3_X16,
            ..edr_nic()
        };
        assert!(nic.peak_receive_bandwidth() <= PcieGen::GEN3_X16.usable_bandwidth());
    }

    #[test]
    fn wire_rates_are_ordered() {
        assert!(NetworkTech::InfinibandFdr.wire_rate() < NetworkTech::InfinibandEdr.wire_rate());
        assert!(NetworkTech::InfinibandEdr.wire_rate() < NetworkTech::InfinibandHdr.wire_rate());
    }

    #[test]
    fn display_names() {
        assert_eq!(NetworkTech::OmniPath100.to_string(), "Omni-Path 100");
    }
}
