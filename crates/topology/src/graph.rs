//! The declarative resource graph: every capacity-bearing hardware
//! component of a platform as a named node, plus the routes streams
//! take through them.
//!
//! Historically the simulator hardwired its resource kinds and built
//! flow paths inline in `Fabric::new`, so adding a new link or memory
//! type meant editing the solver's plumbing. The graph inverts that:
//! [`ResourceGraph::for_topology`] enumerates the nodes (each with a
//! [`CapacityRule`] saying how its effective capacity is computed) and
//! [`ResourceGraph::route`] resolves a stream's contention footprint —
//! the ordered list of node indices it occupies — from a declarative
//! [`RouteSpec`]. The progressive-filling solver downstream consumes
//! plain indices and never learns what a node *is*.
//!
//! ## Bit-identity invariants
//!
//! The node emission order and the per-route hop order reproduce the
//! historical hardwired builders exactly, so solves on pre-existing
//! platforms stay bit-identical:
//!
//! * nodes: one `MemCtrl` per NUMA node (machine order), then two
//!   `LinkDir` per inter-socket link (a→b, then b→a), then
//!   `Pcie(nic.socket)`, then `NicWire` — and only *after* all of
//!   those, CXL ports/controllers (two nodes per pool, port before
//!   controller), so platforms without pools get the same indices as
//!   before the graph existed;
//! * routes: controller first for CPU writes (link second when the
//!   write crosses sockets); wire, PCIe, controller, then link for NIC
//!   DMA;
//! * `Fixed` capacities are evaluated here with the same expressions
//!   the legacy builder used, so the floats are identical to the bit.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{NumaId, PoolId, SocketId};
use crate::machine::MachineTopology;

/// What kind of hardware component a resource node denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// The memory controller of one NUMA node.
    MemCtrl(NumaId),
    /// One direction of an inter-socket link.
    LinkDir {
        /// Source socket.
        from: SocketId,
        /// Destination socket.
        to: SocketId,
    },
    /// The PCIe link hosting the NIC.
    Pcie(SocketId),
    /// The NIC wire (network line rate after protocol efficiency).
    NicWire,
    /// The CXL ports into one pool (aggregate of all ports).
    CxlPort(PoolId),
    /// The internal memory controller of one CXL pool.
    CxlCtrl(PoolId),
}

/// How a node's effective capacity is obtained at solve time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityRule {
    /// Constant bandwidth in GB/s, precomputed when the graph is built.
    Fixed(f64),
    /// A NUMA memory controller: capacity depends on how many CPU and
    /// DMA accessors currently target the node, so the simulator
    /// evaluates it per solve from the behavioural spec.
    Controller(NumaId),
}

/// One capacity-bearing node of the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceNode {
    /// What the node is.
    pub kind: ResourceKind,
    /// How its capacity is computed.
    pub capacity: CapacityRule,
}

/// A stream's endpoint pair, declaratively: the graph resolves it to
/// the ordered node indices the stream occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSpec {
    /// Cores on `socket` issuing stores to the DRAM of `numa`.
    CpuWrite {
        /// Socket hosting the cores.
        socket: SocketId,
        /// Target NUMA node.
        numa: NumaId,
    },
    /// The NIC DMA engine writing received data into `numa`.
    DmaRecv {
        /// NUMA node holding the receive buffer.
        numa: NumaId,
    },
    /// The NIC DMA engine reading outgoing data from `numa`.
    DmaSend {
        /// NUMA node holding the send buffer.
        numa: NumaId,
    },
    /// A core pushing a message from its buffer on `numa` into a CXL
    /// pool: local controller, the inter-socket link when the buffer's
    /// socket is not the pool's attach point, then port and pool
    /// controller.
    CxlWrite {
        /// NUMA node holding the source buffer.
        numa: NumaId,
        /// Destination pool.
        pool: PoolId,
    },
    /// A core pulling a message from a CXL pool into its buffer on
    /// `numa`: pool controller, port, link when crossing, then the
    /// local controller.
    CxlRead {
        /// NUMA node holding the destination buffer.
        numa: NumaId,
        /// Source pool.
        pool: PoolId,
    },
}

/// The resource graph of one machine. Build once per platform; route
/// resolution is intended for `Fabric` build time, not per solve.
#[derive(Debug, Clone)]
pub struct ResourceGraph {
    nodes: Vec<ResourceNode>,
    index: HashMap<ResourceKind, usize>,
}

impl ResourceGraph {
    /// Enumerate every capacity-bearing component of `topo` in the
    /// canonical order documented on the module.
    pub fn for_topology(topo: &MachineTopology) -> Self {
        let mut nodes = Vec::new();
        for n in topo.numa_ids() {
            nodes.push(ResourceNode {
                kind: ResourceKind::MemCtrl(n),
                capacity: CapacityRule::Controller(n),
            });
        }
        for link in &topo.links {
            nodes.push(ResourceNode {
                kind: ResourceKind::LinkDir {
                    from: link.a,
                    to: link.b,
                },
                capacity: CapacityRule::Fixed(link.cpu_bandwidth),
            });
            nodes.push(ResourceNode {
                kind: ResourceKind::LinkDir {
                    from: link.b,
                    to: link.a,
                },
                capacity: CapacityRule::Fixed(link.cpu_bandwidth),
            });
        }
        nodes.push(ResourceNode {
            kind: ResourceKind::Pcie(topo.nic.socket),
            capacity: CapacityRule::Fixed(topo.nic.pcie.usable_bandwidth()),
        });
        nodes.push(ResourceNode {
            kind: ResourceKind::NicWire,
            capacity: CapacityRule::Fixed(
                topo.nic.tech.wire_rate() * topo.nic.tech.protocol_efficiency(),
            ),
        });
        // CXL nodes strictly after every legacy node: platforms without
        // pools keep their historical indices bit-for-bit.
        for pool in &topo.cxl_pools {
            nodes.push(ResourceNode {
                kind: ResourceKind::CxlPort(pool.id),
                capacity: CapacityRule::Fixed(pool.total_port_bandwidth()),
            });
            nodes.push(ResourceNode {
                kind: ResourceKind::CxlCtrl(pool.id),
                capacity: CapacityRule::Fixed(pool.pool_bandwidth),
            });
        }
        let index = nodes.iter().enumerate().map(|(i, n)| (n.kind, i)).collect();
        ResourceGraph { nodes, index }
    }

    /// All nodes, canonical order.
    pub fn nodes(&self) -> &[ResourceNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a valid machine).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of a resource kind, if the machine has it.
    pub fn index_of(&self, kind: ResourceKind) -> Option<usize> {
        self.index.get(&kind).copied()
    }

    fn require(&self, kind: ResourceKind) -> usize {
        self.index_of(kind)
            .unwrap_or_else(|| panic!("resource graph is missing {kind:?}"))
    }

    fn link_dir(&self, from: SocketId, to: SocketId) -> usize {
        self.require(ResourceKind::LinkDir { from, to })
    }

    /// Resolve a route to the ordered node indices the stream occupies,
    /// appended to `out`. Hop order follows the module invariants.
    pub fn route(&self, topo: &MachineTopology, spec: RouteSpec, out: &mut Vec<u32>) {
        let push = |out: &mut Vec<u32>, i: usize| out.push(i as u32);
        match spec {
            RouteSpec::CpuWrite { socket, numa } => {
                push(out, self.require(ResourceKind::MemCtrl(numa)));
                let target = topo.socket_of_numa(numa);
                if target != socket {
                    push(out, self.link_dir(socket, target));
                }
            }
            RouteSpec::DmaRecv { numa } => {
                let nic_socket = topo.nic.socket;
                push(out, self.require(ResourceKind::NicWire));
                push(out, self.require(ResourceKind::Pcie(nic_socket)));
                push(out, self.require(ResourceKind::MemCtrl(numa)));
                let target = topo.socket_of_numa(numa);
                if target != nic_socket {
                    push(out, self.link_dir(nic_socket, target));
                }
            }
            RouteSpec::DmaSend { numa } => {
                let nic_socket = topo.nic.socket;
                push(out, self.require(ResourceKind::NicWire));
                push(out, self.require(ResourceKind::Pcie(nic_socket)));
                push(out, self.require(ResourceKind::MemCtrl(numa)));
                let target = topo.socket_of_numa(numa);
                if target != nic_socket {
                    push(out, self.link_dir(target, nic_socket));
                }
            }
            RouteSpec::CxlWrite { numa, pool } => {
                push(out, self.require(ResourceKind::MemCtrl(numa)));
                let src = topo.socket_of_numa(numa);
                let attach = topo.cxl_pools[pool.index()].socket;
                if src != attach {
                    push(out, self.link_dir(src, attach));
                }
                push(out, self.require(ResourceKind::CxlPort(pool)));
                push(out, self.require(ResourceKind::CxlCtrl(pool)));
            }
            RouteSpec::CxlRead { numa, pool } => {
                push(out, self.require(ResourceKind::CxlCtrl(pool)));
                push(out, self.require(ResourceKind::CxlPort(pool)));
                let dst = topo.socket_of_numa(numa);
                let attach = topo.cxl_pools[pool.index()].socket;
                if dst != attach {
                    push(out, self.link_dir(attach, dst));
                }
                push(out, self.require(ResourceKind::MemCtrl(numa)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn legacy_node_order_is_preserved() {
        let p = platforms::henri();
        let g = ResourceGraph::for_topology(&p.topology);
        let kinds: Vec<ResourceKind> = g.nodes().iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            [
                ResourceKind::MemCtrl(NumaId::new(0)),
                ResourceKind::MemCtrl(NumaId::new(1)),
                ResourceKind::LinkDir {
                    from: SocketId::new(0),
                    to: SocketId::new(1)
                },
                ResourceKind::LinkDir {
                    from: SocketId::new(1),
                    to: SocketId::new(0)
                },
                ResourceKind::Pcie(SocketId::new(0)),
                ResourceKind::NicWire,
            ]
        );
    }

    #[test]
    fn cxl_nodes_append_after_the_legacy_set() {
        let base = platforms::henri();
        let cxl = platforms::henri_cxl();
        let g_base = ResourceGraph::for_topology(&base.topology);
        let g_cxl = ResourceGraph::for_topology(&cxl.topology);
        let base_kinds: Vec<ResourceKind> = g_base.nodes().iter().map(|n| n.kind).collect();
        let cxl_kinds: Vec<ResourceKind> = g_cxl.nodes().iter().map(|n| n.kind).collect();
        assert_eq!(&cxl_kinds[..base_kinds.len()], &base_kinds[..]);
        assert_eq!(
            &cxl_kinds[base_kinds.len()..],
            [
                ResourceKind::CxlPort(PoolId::new(0)),
                ResourceKind::CxlCtrl(PoolId::new(0)),
            ]
        );
    }

    #[test]
    fn fixed_capacities_match_the_legacy_expressions() {
        let p = platforms::diablo();
        let g = ResourceGraph::for_topology(&p.topology);
        let topo = &p.topology;
        for node in g.nodes() {
            match (node.kind, node.capacity) {
                (ResourceKind::LinkDir { from, to }, CapacityRule::Fixed(c)) => {
                    let l = topo.link_between(from, to).unwrap();
                    assert_eq!(c.to_bits(), l.cpu_bandwidth.to_bits());
                }
                (ResourceKind::Pcie(_), CapacityRule::Fixed(c)) => {
                    assert_eq!(c.to_bits(), topo.nic.pcie.usable_bandwidth().to_bits());
                }
                (ResourceKind::NicWire, CapacityRule::Fixed(c)) => {
                    let w = topo.nic.tech.wire_rate() * topo.nic.tech.protocol_efficiency();
                    assert_eq!(c.to_bits(), w.to_bits());
                }
                (ResourceKind::MemCtrl(n), CapacityRule::Controller(m)) => assert_eq!(n, m),
                other => panic!("unexpected node {other:?}"),
            }
        }
    }

    #[test]
    fn cxl_routes_cross_the_link_only_when_needed() {
        let p = platforms::henri_cxl();
        let topo = &p.topology;
        let g = ResourceGraph::for_topology(topo);
        let pool = topo.cxl_pools[0].id;
        // Pool attached to socket 0; a buffer on numa 0 stays on-socket.
        let mut local = Vec::new();
        g.route(
            topo,
            RouteSpec::CxlWrite {
                numa: NumaId::new(0),
                pool,
            },
            &mut local,
        );
        assert_eq!(local.len(), 3);
        // A buffer on numa 1 (socket 1) crosses the inter-socket link.
        let mut remote = Vec::new();
        g.route(
            topo,
            RouteSpec::CxlRead {
                numa: NumaId::new(1),
                pool,
            },
            &mut remote,
        );
        assert_eq!(remote.len(), 4);
        let link = g.link_dir(SocketId::new(0), SocketId::new(1)) as u32;
        assert!(remote.contains(&link));
    }
}
