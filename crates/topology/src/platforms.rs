//! The six testbed platforms of the paper's Table I, with behavioural
//! ground truth.
//!
//! Capacities are *shaped after* the paper's observations (who saturates
//! what, at how many cores, and which quirks appear on which machine), not
//! copied from the authors' testbed — the point of the reproduction is that
//! the model, calibrated from two benchmark sweeps, predicts all other
//! placements; the absolute GB/s values only set the scale.
//!
//! | Name           | Processor                  | Cores | NUMA | Network        |
//! |----------------|----------------------------|-------|------|----------------|
//! | henri          | 2× Intel Xeon Gold 6140    | 18    | 2    | InfiniBand EDR |
//! | henri-subnuma  | same, sub-NUMA clustering  | 18    | 4    | InfiniBand EDR |
//! | dahu           | 2× Intel Xeon Gold 6130    | 16    | 2    | Omni-Path      |
//! | diablo         | 2× AMD EPYC 7452           | 32    | 2    | InfiniBand HDR |
//! | pyxis          | 2× Cavium ThunderX2 99xx   | 32    | 2    | InfiniBand EDR |
//! | occigen        | 2× Intel Xeon E5-2690v4    | 14    | 2    | InfiniBand FDR |

use serde::{Deserialize, Serialize};

use crate::behavior::{ArbitrationSpec, CoreStreamSpec, HwBehavior, MemCtrlSpec, NoiseSpec};
use crate::cxl::CxlPool;
use crate::ids::{NumaId, PoolId, SocketId};
use crate::link::{InterSocketTech, PcieGen};
use crate::machine::MachineTopology;
use crate::nic::{NetworkTech, Nic};

/// A complete simulated platform: structural topology plus behavioural
/// ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Structural description (Table I facts).
    pub topology: MachineTopology,
    /// Behavioural ground truth interpreted by `mc-memsim`.
    pub behavior: HwBehavior,
}

impl Platform {
    /// Platform name (mirrors `topology.name`).
    pub fn name(&self) -> &str {
        &self.topology.name
    }

    /// Maximum number of computing cores the benchmark sweeps: all cores of
    /// the first socket except the one dedicated to the communication
    /// progress thread (the paper binds communications to "a single thread
    /// bound to a dedicated core").
    pub fn max_compute_cores(&self) -> usize {
        self.topology.cores_per_socket() - 1
    }
}

fn intel_nic(tech: NetworkTech) -> Nic {
    Nic {
        tech,
        socket: SocketId::new(0),
        pcie: PcieGen::GEN3_X16,
        closest_numa: NumaId::new(0),
    }
}

/// `henri`: 2× Intel Xeon Gold 6140 (18 cores), 96 GB, 2 NUMA nodes,
/// InfiniBand EDR (§IV-B a, Fig. 3).
///
/// Quirk reproduced: communications start to degrade *before* the total
/// bandwidth threshold is reached (`soft_decay_start = 0.95`), which is the
/// flaw the paper reports its model showing on this machine ("the model
/// predicts a decrease starting with 14 computing cores, while it is 10 in
/// reality").
pub fn henri() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "henri",
            "Intel Xeon Gold 6140",
            2,
            18,
            1,
            96,
            InterSocketTech::Upi,
            36.0,
            26.0,
            intel_nic(NetworkTech::InfinibandEdr),
        )
        .expect("henri topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 80.0,
                contention_knees: vec![(12, 0.55)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: 80.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 5.6,
                remote_bandwidth: 4.4,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.25,
                dma_accessor_weight: 2.5,
                soft_decay_start: Some(0.95),
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.010,
                comm_sigma: 0.012,
                seed: 0xE1,
            },
            nic_numa_efficiency: vec![],
        },
    }
}

/// `henri-subnuma`: the same machine with sub-NUMA clustering enabled,
/// exposing 4 NUMA nodes (§IV-B b, Fig. 4). Each sub-NUMA controller has
/// roughly half the socket bandwidth, so 18 cores hammering one node makes
/// contention much more severe — the 16-subplot grid of the paper.
pub fn henri_subnuma() -> Platform {
    let mut p = henri();
    p.topology = MachineTopology::homogeneous(
        "henri-subnuma",
        "Intel Xeon Gold 6140",
        2,
        18,
        2,
        96,
        InterSocketTech::Upi,
        36.0,
        26.0,
        intel_nic(NetworkTech::InfinibandEdr),
    )
    .expect("henri-subnuma topology is valid");
    p.behavior.mem_ctrl = MemCtrlSpec {
        base_capacity: 42.0,
        contention_knees: vec![(7, 0.50)],
        min_capacity_fraction: 0.55,
    };
    // Sub-NUMA clustering also partitions the CHA/mesh slices, lowering the
    // socket-level throughput a single stream population can draw.
    p.behavior.mesh_capacity = 46.0;
    p.behavior.noise.seed = 0xE2;
    p
}

/// `dahu`: 2× Intel Xeon Gold 6130 (16 cores), 192 GB, 2 NUMA nodes,
/// Omni-Path (§IV-B f, Fig. 8). Behaves like henri with a slightly slower
/// onloaded network and no early-decay quirk.
pub fn dahu() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "dahu",
            "Intel Xeon Gold 6130",
            2,
            16,
            1,
            192,
            InterSocketTech::Upi,
            36.0,
            26.0,
            intel_nic(NetworkTech::OmniPath100),
        )
        .expect("dahu topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 76.0,
                contention_knees: vec![(13, 0.50)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: 76.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 5.4,
                remote_bandwidth: 4.2,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.30,
                dma_accessor_weight: 2.2,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.012,
                comm_sigma: 0.015,
                seed: 0xDA,
            },
            nic_numa_efficiency: vec![],
        },
    }
}

/// `diablo`: 2× AMD EPYC 7452 (32 cores), 256 GB, 2 NUMA nodes, InfiniBand
/// HDR (§IV-B c, Fig. 5).
///
/// Quirks reproduced: the NIC is plugged to the *second* socket and network
/// performance is highly locality-sensitive — ≈ 22.4 GB/s into the NIC-local
/// node versus ≈ 12.1 GB/s into the other node, because DMA traffic crossing
/// Infinity Fabric takes a narrower path (`dma_bandwidth = 12.6`). Memory
/// bandwidth is so plentiful (8-channel DDR4) that there is "almost no
/// contention on this platform".
pub fn diablo() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "diablo",
            "AMD EPYC 7452",
            2,
            32,
            1,
            256,
            InterSocketTech::InfinityFabric,
            38.0,
            12.6,
            Nic {
                tech: NetworkTech::InfinibandHdr,
                socket: SocketId::new(1),
                pcie: PcieGen::GEN4_X16,
                closest_numa: NumaId::new(1),
            },
        )
        .expect("diablo topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 140.0,
                contention_knees: vec![(30, 0.60)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: 140.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 4.3,
                remote_bandwidth: 3.5,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.80,
                dma_accessor_weight: 2.0,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.010,
                comm_sigma: 0.012,
                seed: 0xD1,
            },
            nic_numa_efficiency: vec![],
        },
    }
}

/// `pyxis`: 2× Cavium ThunderX2 99xx (32 cores), 256 GB, 2 NUMA nodes,
/// InfiniBand EDR (§IV-B e, Fig. 7).
///
/// Quirks reproduced: compute bandwidth "does not scale well when it gets
/// closer to the threshold" (`scaling_dropoff` + a second contention knee),
/// and network performance depends on data locality in a way plain link
/// capacities do not explain (`nic_numa_efficiency`), with noticeably noisier
/// network measurements — the combination behind the paper's worst
/// non-sample communication error (13.32 %).
pub fn pyxis() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "pyxis",
            "Cavium-ARM ThunderX2 99xx",
            2,
            32,
            1,
            256,
            InterSocketTech::Ccpi2,
            42.0,
            24.0,
            intel_nic(NetworkTech::InfinibandEdr),
        )
        .expect("pyxis topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 105.0,
                contention_knees: vec![(20, 0.35), (27, 0.90)],
                min_capacity_fraction: 0.50,
            },
            mesh_capacity: 105.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 3.9,
                remote_bandwidth: 3.1,
                scaling_dropoff: 0.0015,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.35,
                dma_accessor_weight: 2.5,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.2,
            },
            noise: NoiseSpec {
                compute_sigma: 0.015,
                comm_sigma: 0.012,
                seed: 0x97,
            },
            nic_numa_efficiency: vec![1.0, 0.82],
        },
    }
}

/// `occigen`: 2× Intel Xeon E5-2690v4 (14 cores), 64 GB, 2 NUMA nodes,
/// InfiniBand FDR — the only production platform (2014–2022) (§IV-B d,
/// Fig. 6).
///
/// Quirk reproduced: DMA is *never* throttled (`dma_floor_fraction = 1.0`),
/// so "only computations are impacted when computations and communications
/// do both remote memory accesses"; measurements are extremely stable, which
/// is why the paper's lowest prediction error (0.01 % on communications) is
/// on this machine.
pub fn occigen() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "occigen",
            "Intel Xeon E5 2690v4",
            2,
            14,
            1,
            64,
            InterSocketTech::Qpi,
            28.0,
            22.0,
            intel_nic(NetworkTech::InfinibandFdr),
        )
        .expect("occigen topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 58.0,
                contention_knees: vec![(12, 0.45)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: 58.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 4.7,
                remote_bandwidth: 3.6,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 1.0,
                dma_accessor_weight: 2.0,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.0010,
                comm_sigma: 0.0003,
                seed: 0x0C,
            },
            nic_numa_efficiency: vec![],
        },
    }
}

/// `grillon`: a *synthetic* 8-NUMA machine (2× AMD EPYC in NPS4 mode) used
/// to demonstrate the model limitation the paper documents in §IV-C1: "On
/// machines with many NUMA nodes (more than 4), network performances under
/// memory contention depend on data locality and the heuristic given by
/// formula 6 is not sufficiently accurate anymore."
///
/// Each sub-NUMA node sits at a different distance from the NIC, so the
/// NIC efficiency declines gradually across the eight nodes — a gradient
/// the model's binary local/remote split cannot represent. Not part of the
/// paper's Table I; exposed through [`extended`] only.
pub fn grillon_nps4() -> Platform {
    Platform {
        topology: MachineTopology::homogeneous(
            "grillon",
            "AMD EPYC 7452 (NPS4)",
            2,
            32,
            4,
            256,
            InterSocketTech::InfinityFabric,
            38.0,
            12.6,
            Nic {
                tech: NetworkTech::InfinibandHdr,
                socket: SocketId::new(0),
                pcie: PcieGen::GEN4_X16,
                closest_numa: NumaId::new(0),
            },
        )
        .expect("grillon topology is valid"),
        behavior: HwBehavior {
            mem_ctrl: MemCtrlSpec {
                base_capacity: 36.0,
                contention_knees: vec![(8, 0.50)],
                min_capacity_fraction: 0.55,
            },
            mesh_capacity: 120.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 4.3,
                remote_bandwidth: 3.5,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.45,
                dma_accessor_weight: 2.0,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.010,
                comm_sigma: 0.012,
                seed: 0x6B,
            },
            // Distance-to-NIC gradient across the eight nodes: within the
            // NIC socket the dies sit 1-3 IF hops away, on the remote
            // socket further still — a smooth decline that formula 6's
            // local/remote dichotomy flattens into two values.
            nic_numa_efficiency: vec![1.0, 0.93, 0.86, 0.79, 0.72, 0.67, 0.62, 0.57],
        },
    }
}

/// Default CXL.mem pool used by the `*-cxl` platform variants: four
/// CXL ports on the given socket, shaped after the single-device
/// numbers of Vanecek et al. — one load/store stream sustains well
/// below a NIC wire (≈ 6 GB/s), but the pool is reached without the
/// NIC's DMA arbitration, so heavy compute cannot squeeze it to a
/// floor.
fn default_pool(socket: u16) -> CxlPool {
    CxlPool {
        id: PoolId::new(0),
        socket: SocketId::new(socket),
        ports: 4,
        port_bandwidth: 8.0,
        pool_bandwidth: 24.0,
        stream_bandwidth: 6.0,
        latency: 0.4e-6,
    }
}

/// `henri-cxl`: the henri machine with one CXL.mem pool on socket 0 —
/// the message-free communication scenario of Vanecek et al. run on
/// the paper's primary testbed. Not part of Table I; exposed through
/// [`extended`] only.
pub fn henri_cxl() -> Platform {
    let mut p = henri();
    p.topology.name = "henri-cxl".into();
    p.topology.cxl_pools.push(default_pool(0));
    p.behavior.noise.seed = 0xEC;
    p
}

/// `dahu-cxl`: the dahu machine with one CXL.mem pool on socket 0.
/// With Omni-Path's onloaded NIC the messaging path is slower than on
/// henri, shifting the messaging-vs-message-free crossover. Not part
/// of Table I; exposed through [`extended`] only.
pub fn dahu_cxl() -> Platform {
    let mut p = dahu();
    p.topology.name = "dahu-cxl".into();
    p.topology.cxl_pools.push(default_pool(0));
    p.behavior.noise.seed = 0xDC;
    p
}

/// All six platforms, in the order of the paper's Table I.
pub fn all() -> Vec<Platform> {
    vec![
        henri(),
        henri_subnuma(),
        dahu(),
        diablo(),
        pyxis(),
        occigen(),
    ]
}

/// Table I platforms plus the synthetic many-NUMA `grillon` machine that
/// demonstrates the §IV-C1 limitation and the CXL.mem pool variants
/// `henri-cxl` / `dahu-cxl`.
pub fn extended() -> Vec<Platform> {
    let mut v = all();
    v.push(grillon_nps4());
    v.push(henri_cxl());
    v.push(dahu_cxl());
    v
}

/// Look a platform up by its name (searches the extended set).
pub fn by_name(name: &str) -> Option<Platform> {
    extended().into_iter().find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_platforms_validate() {
        for p in all() {
            p.topology.validate().unwrap_or_else(|e| {
                panic!("platform {} invalid: {e}", p.name());
            });
        }
    }

    #[test]
    fn table1_shape() {
        let names: Vec<_> = all().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(
            names,
            [
                "henri",
                "henri-subnuma",
                "dahu",
                "diablo",
                "pyxis",
                "occigen"
            ]
        );
    }

    #[test]
    fn henri_subnuma_has_four_numa_nodes() {
        assert_eq!(henri().topology.numa_count(), 2);
        assert_eq!(henri_subnuma().topology.numa_count(), 4);
        assert_eq!(henri_subnuma().topology.numa_per_socket(), 2);
    }

    #[test]
    fn diablo_nic_is_on_second_socket() {
        let d = diablo();
        assert_eq!(d.topology.nic.socket, SocketId::new(1));
        assert_eq!(d.topology.nic.closest_numa, NumaId::new(1));
        // DMA to node 0 crosses Infinity Fabric; to node 1 it does not.
        assert!(d.topology.dma_crosses_socket_link(NumaId::new(0)));
        assert!(!d.topology.dma_crosses_socket_link(NumaId::new(1)));
    }

    #[test]
    fn max_compute_cores_reserves_comm_core() {
        assert_eq!(henri().max_compute_cores(), 17);
        assert_eq!(dahu().max_compute_cores(), 15);
        assert_eq!(diablo().max_compute_cores(), 31);
        assert_eq!(occigen().max_compute_cores(), 13);
    }

    #[test]
    fn by_name_finds_each() {
        for p in extended() {
            assert!(by_name(p.name()).is_some(), "{} not found", p.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn grillon_is_extended_only() {
        assert!(all().iter().all(|p| p.name() != "grillon"));
        assert!(extended().iter().any(|p| p.name() == "grillon"));
        let g = grillon_nps4();
        g.topology.validate().unwrap();
        assert_eq!(g.topology.numa_count(), 8);
        assert_eq!(g.topology.numa_per_socket(), 4);
        // The NIC efficiency gradient is strictly decreasing with node id.
        let eff = &g.behavior.nic_numa_efficiency;
        assert_eq!(eff.len(), 8);
        assert!(eff.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn cxl_variants_are_extended_only() {
        for name in ["henri-cxl", "dahu-cxl"] {
            assert!(all().iter().all(|p| p.name() != name));
            assert!(extended().iter().any(|p| p.name() == name), "{name}");
        }
        for p in [henri_cxl(), dahu_cxl()] {
            p.topology.validate().unwrap();
            assert_eq!(p.topology.cxl_pools.len(), 1);
            let pool = &p.topology.cxl_pools[0];
            // One CXL stream is slower than the platform's NIC wire,
            // but the ports and pool controller out-carry one stream:
            // the crossover has to come from contention, not raw rates.
            let wire = p.topology.nic.tech.wire_rate() * p.topology.nic.tech.protocol_efficiency();
            assert!(pool.stream_bandwidth < wire);
            assert!(pool.total_port_bandwidth() > pool.stream_bandwidth);
            assert!(pool.pool_bandwidth > pool.stream_bandwidth);
        }
        // Apart from the pool, name, and seed, the variants are their
        // base machines — the head-to-head comparison is apples to
        // apples.
        let (base, cxl) = (henri(), henri_cxl());
        assert_eq!(base.topology.sockets, cxl.topology.sockets);
        assert_eq!(base.topology.links, cxl.topology.links);
        assert_eq!(base.topology.nic, cxl.topology.nic);
        assert_eq!(base.behavior.mem_ctrl, cxl.behavior.mem_ctrl);
    }

    #[test]
    fn seeds_differ_across_platforms() {
        let seeds: Vec<u64> = extended().iter().map(|p| p.behavior.noise.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }

    #[test]
    fn occigen_never_throttles_dma() {
        assert_eq!(occigen().behavior.arbitration.dma_floor_fraction, 1.0);
    }

    #[test]
    fn pyxis_has_locality_sensitive_nic() {
        let p = pyxis();
        assert!(p.behavior.nic_efficiency_for(1) < p.behavior.nic_efficiency_for(0));
    }
}
