//! Hardware *behaviour* description: the ground-truth parameters the
//! simulator (`mc-memsim`) interprets.
//!
//! The paper stresses (§II) that processor vendors do not document how their
//! memory systems arbitrate between CPU and DMA streams, which is why the
//! model is calibrated from experiments. Our substitute for the physical
//! machines is a simulator whose arbitration implements exactly the
//! hypotheses the paper validated:
//!
//! 1. each memory controller / bus has a finite bandwidth capacity;
//! 2. CPU requests are prioritised over PCIe (DMA) requests;
//! 3. a minimal bandwidth is always reserved for DMA to prevent starvation;
//! 4. when the DMA floor is reached, computing cores degrade uniformly;
//! 5. computing cores also contend with *each other*: effective capacity
//!    decreases slightly for every extra accessor beyond a knee.
//!
//! Everything in this module is plain data (serde-serialisable); the engine
//! lives in `mc-memsim`.

use serde::{Deserialize, Serialize};

/// Effective-capacity description of one memory controller.
///
/// The effective capacity seen by `k` concurrent accessors is
/// `base_capacity - Σ penalty_i · max(0, k - knee_i)`, clamped to
/// `min_capacity_fraction · base_capacity`. A single knee gives the linear
/// decrease the paper observes on Intel machines (Fig. 2's `δ` slopes); two
/// knees give the stronger curvature of pyxis' ThunderX2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemCtrlSpec {
    /// Non-temporal store capacity of one controller in GB/s, with few
    /// accessors.
    pub base_capacity: f64,
    /// `(knee, penalty)` pairs: beyond `knee` accessors, each extra accessor
    /// costs `penalty` GB/s of effective capacity.
    pub contention_knees: Vec<(u32, f64)>,
    /// Lower clamp as a fraction of `base_capacity` (the controller never
    /// collapses below this).
    pub min_capacity_fraction: f64,
}

impl MemCtrlSpec {
    /// Effective capacity in GB/s for `k` concurrent accessor slots.
    /// DMA engines count as more than one slot (see
    /// [`ArbitrationSpec::dma_accessor_weight`]) because they issue requests
    /// at a higher rate than a single core.
    pub fn effective_capacity(&self, accessor_slots: f64) -> f64 {
        let mut cap = self.base_capacity;
        for &(knee, penalty) in &self.contention_knees {
            let excess = (accessor_slots - f64::from(knee)).max(0.0);
            cap -= penalty * excess;
        }
        cap.max(self.base_capacity * self.min_capacity_fraction)
    }
}

/// Per-core streaming behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreStreamSpec {
    /// Single-core non-temporal store bandwidth to a local NUMA node, GB/s
    /// (the paper quotes ≈ 5 GB/s per core).
    pub local_bandwidth: f64,
    /// Single-core bandwidth to a remote NUMA node, GB/s (lower: each access
    /// pays the inter-socket hop, limiting the request rate one core can
    /// sustain).
    pub remote_bandwidth: f64,
    /// Imperfect-scaling factor: the demand of each core is multiplied by
    /// `1 - scaling_dropoff · (n - 1)` when `n` cores compute together.
    /// Zero on well-behaved platforms; positive on pyxis, whose bandwidth
    /// "does not scale well when it gets closer to the threshold" (§IV-B e).
    pub scaling_dropoff: f64,
}

impl CoreStreamSpec {
    /// Demand of one core in GB/s when `n` cores stream together to a node
    /// that is `local` or not.
    pub fn demand(&self, n: usize, local: bool) -> f64 {
        let base = if local {
            self.local_bandwidth
        } else {
            self.remote_bandwidth
        };
        let factor = (1.0 - self.scaling_dropoff * (n.saturating_sub(1) as f64)).max(0.1);
        base * factor
    }
}

/// How the platform arbitrates between CPU and DMA streams under pressure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbitrationSpec {
    /// Fraction of the DMA demand that is always guaranteed (the hardware
    /// origin of the paper's `α`). 1.0 means DMA is never throttled (the
    /// occigen behaviour where only computations are impacted); small values
    /// mean communications give way almost entirely.
    pub dma_floor_fraction: f64,
    /// How many accessor slots one DMA engine occupies on a memory
    /// controller. A NIC issues requests at a higher rate than one core
    /// (§II-D notes a single core reaches ≈ 5 GB/s while the network can
    /// reach ≈ 10 GB/s), so its pressure on the controller is larger.
    pub dma_accessor_weight: f64,
    /// If `Some(u0)` with `u0 < 1`, DMA starts being throttled *before* the
    /// capacity threshold is reached, once utilisation exceeds `u0`. This is
    /// the henri behaviour the paper's model misses ("communications start
    /// to be impacted before the total bandwidth threshold T is reached",
    /// §IV-B a). `None` means DMA keeps its full demand until CPU traffic
    /// actually squeezes it.
    pub soft_decay_start: Option<f64>,
    /// Extra pressure multiplier applied to CPU traffic when the DMA stream
    /// crosses the inter-socket link (1.0 = none). Models architectures
    /// whose cross-socket I/O path is disproportionately sensitive to
    /// concurrent CPU traffic — the pyxis behaviour behind the paper's
    /// largest non-sample communication error ("the wrong appreciation of
    /// locality impact on this architecture", §IV-B).
    pub cross_traffic_pressure_factor: f64,
}

/// Deterministic measurement-noise description. Real machines show
/// run-to-run variability ("the run-to-run variability is very low",
/// §IV-B); we reproduce a small multiplicative jitter, seeded so every run
/// of the test-suite sees identical numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Relative standard deviation of compute-bandwidth measurements.
    pub compute_sigma: f64,
    /// Relative standard deviation of network-bandwidth measurements
    /// (larger on pyxis, whose "network performances are not stable even
    /// without contention", §IV-C1).
    pub comm_sigma: f64,
    /// Base RNG seed for this platform.
    pub seed: u64,
}

/// Full behavioural ground truth of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwBehavior {
    /// Memory-controller behaviour (same spec for every NUMA node of the
    /// machine — all paper platforms are homogeneous).
    pub mem_ctrl: MemCtrlSpec,
    /// Socket-level mesh/IIO throughput in GB/s. CPU stores *issued* by a
    /// socket's cores and DMA writes entering or landing on the socket all
    /// occupy its on-die interconnect, whatever NUMA node they target.
    /// This is why communications suffer local-config-like contention in
    /// every placement (the paper's eq. 6 applies the local model to all
    /// non-both-remote placements): even when streams land on different
    /// controllers, they still meet on the mesh.
    pub mesh_capacity: f64,
    /// Per-core streaming behaviour.
    pub core_stream: CoreStreamSpec,
    /// CPU/DMA arbitration policy.
    pub arbitration: ArbitrationSpec,
    /// Measurement noise.
    pub noise: NoiseSpec,
    /// Per-NUMA-node efficiency multiplier applied to the NIC demand when
    /// receiving into that node, indexed by machine-wide NUMA id. Captures
    /// platform oddities where network performance depends on data locality
    /// beyond what link capacities explain (pyxis). Empty ⇒ all 1.0.
    pub nic_numa_efficiency: Vec<f64>,
}

impl HwBehavior {
    /// NIC efficiency multiplier for DMA targeting `numa_index`.
    pub fn nic_efficiency_for(&self, numa_index: usize) -> f64 {
        self.nic_numa_efficiency
            .get(numa_index)
            .copied()
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemCtrlSpec {
        MemCtrlSpec {
            base_capacity: 80.0,
            contention_knees: vec![(14, 0.5)],
            min_capacity_fraction: 0.5,
        }
    }

    #[test]
    fn capacity_flat_before_knee() {
        let c = ctrl();
        assert_eq!(c.effective_capacity(1.0), 80.0);
        assert_eq!(c.effective_capacity(14.0), 80.0);
    }

    #[test]
    fn capacity_declines_after_knee() {
        let c = ctrl();
        assert!((c.effective_capacity(16.0) - 79.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_clamped_at_floor() {
        let c = MemCtrlSpec {
            base_capacity: 10.0,
            contention_knees: vec![(0, 5.0)],
            min_capacity_fraction: 0.6,
        };
        assert_eq!(c.effective_capacity(100.0), 6.0);
    }

    #[test]
    fn two_knees_compound() {
        let c = MemCtrlSpec {
            base_capacity: 100.0,
            contention_knees: vec![(10, 1.0), (20, 2.0)],
            min_capacity_fraction: 0.0,
        };
        // at k=25: -1*(15) - 2*(5) = -25
        assert!((c.effective_capacity(25.0) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn core_demand_local_vs_remote() {
        let s = CoreStreamSpec {
            local_bandwidth: 5.6,
            remote_bandwidth: 4.2,
            scaling_dropoff: 0.0,
        };
        assert_eq!(s.demand(4, true), 5.6);
        assert_eq!(s.demand(4, false), 4.2);
    }

    #[test]
    fn scaling_dropoff_reduces_demand_with_more_cores() {
        let s = CoreStreamSpec {
            local_bandwidth: 4.0,
            remote_bandwidth: 3.0,
            scaling_dropoff: 0.01,
        };
        assert_eq!(s.demand(1, true), 4.0);
        assert!(s.demand(10, true) < 4.0);
        // Never collapses below 10% of nominal.
        assert!(s.demand(10_000, true) >= 0.4 - 1e-12);
    }

    #[test]
    fn nic_efficiency_defaults_to_one() {
        let b = HwBehavior {
            mem_ctrl: ctrl(),
            mesh_capacity: 80.0,
            core_stream: CoreStreamSpec {
                local_bandwidth: 5.0,
                remote_bandwidth: 4.0,
                scaling_dropoff: 0.0,
            },
            arbitration: ArbitrationSpec {
                dma_floor_fraction: 0.25,
                dma_accessor_weight: 2.5,
                soft_decay_start: None,
                cross_traffic_pressure_factor: 1.0,
            },
            noise: NoiseSpec {
                compute_sigma: 0.01,
                comm_sigma: 0.01,
                seed: 42,
            },
            nic_numa_efficiency: vec![1.0, 0.8],
        };
        assert_eq!(b.nic_efficiency_for(1), 0.8);
        assert_eq!(b.nic_efficiency_for(7), 1.0);
    }
}
