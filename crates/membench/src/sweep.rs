//! Platform-wide sweeps: every placement combination, optionally measured
//! in parallel worker threads.

use crossbeam::thread;
use parking_lot::Mutex;

use mc_topology::{NumaId, Platform, SocketId};

use crate::config::BenchConfig;
use crate::record::{PlacementSweep, PlatformSweep};
use crate::runner::BenchRunner;

/// The two placement configurations used to *instantiate* the model
/// (§IV-A2): both buffers on the first NUMA node of the first socket
/// (local model), and both on the first NUMA node of the second socket
/// (remote model). Returns `((comp, comm) local, (comp, comm) remote)`.
pub fn calibration_placements(platform: &Platform) -> ((NumaId, NumaId), (NumaId, NumaId)) {
    let topo = &platform.topology;
    let local = topo.first_numa_of(SocketId::new(0));
    let remote = topo.first_numa_of(SocketId::new(1));
    ((local, local), (remote, remote))
}

/// Measure the two calibration sweeps of a platform.
pub fn calibration_sweeps(
    platform: &Platform,
    config: BenchConfig,
) -> (PlacementSweep, PlacementSweep) {
    let runner = BenchRunner::new(platform, config);
    let ((lc, lm), (rc, rm)) = calibration_placements(platform);
    (runner.run_placement(lc, lm), runner.run_placement(rc, rm))
}

/// Measure every placement combination of a platform sequentially.
pub fn sweep_platform(platform: &Platform, config: BenchConfig) -> PlatformSweep {
    let runner = BenchRunner::new(platform, config);
    let sweeps = platform
        .topology
        .placement_combinations()
        .into_iter()
        .map(|(m_comp, m_comm)| runner.run_placement(m_comp, m_comm))
        .collect();
    PlatformSweep {
        platform: platform.name().to_string(),
        sweeps,
    }
}

/// Measure every placement combination using one worker thread per
/// placement (the sweeps are independent; the noise source is stateless,
/// so results are identical to the sequential path).
pub fn sweep_platform_parallel(platform: &Platform, config: BenchConfig) -> PlatformSweep {
    let combos = platform.topology.placement_combinations();
    let results: Mutex<Vec<Option<PlacementSweep>>> = Mutex::new(vec![None; combos.len()]);
    thread::scope(|s| {
        for (idx, &(m_comp, m_comm)) in combos.iter().enumerate() {
            let results = &results;
            let platform = &platform;
            s.spawn(move |_| {
                let runner = BenchRunner::new(platform, config);
                let sweep = runner.run_placement(m_comp, m_comm);
                results.lock()[idx] = Some(sweep);
            });
        }
    })
    .expect("sweep worker panicked");
    PlatformSweep {
        platform: platform.name().to_string(),
        sweeps: results
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every placement measured"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn calibration_placements_follow_the_paper() {
        let p = platforms::henri_subnuma();
        let ((lc, lm), (rc, rm)) = calibration_placements(&p);
        // First NUMA node of socket 0 and first of socket 1 (#m = 2 → node 2).
        assert_eq!(lc, NumaId::new(0));
        assert_eq!(lm, NumaId::new(0));
        assert_eq!(rc, NumaId::new(2));
        assert_eq!(rm, NumaId::new(2));
    }

    #[test]
    fn full_sweep_covers_all_placements() {
        let p = platforms::henri();
        let sweep = sweep_platform(&p, BenchConfig::exact());
        assert_eq!(sweep.sweeps.len(), 4);
        let p4 = platforms::henri_subnuma();
        let sweep4 = sweep_platform(&p4, BenchConfig::exact());
        assert_eq!(sweep4.sweeps.len(), 16);
    }

    #[test]
    fn parallel_sweep_equals_sequential() {
        let p = platforms::henri();
        let cfg = BenchConfig::default(); // noisy: exercises determinism too
        let seq = sweep_platform(&p, cfg);
        let par = sweep_platform_parallel(&p, cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn calibration_sweeps_are_the_diagonal_configs() {
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::exact());
        assert_eq!(local.m_comp, local.m_comm);
        assert_eq!(remote.m_comp, remote.m_comm);
        assert_ne!(local.m_comp, remote.m_comp);
    }
}
