//! Platform-wide sweeps: every placement combination, optionally measured
//! by a bounded pool of worker threads.
//!
//! The parallel driver schedules individual `(placement, n_cores)` points,
//! not whole placements: placements differ wildly in cost (a 17-core
//! placement sweep solves an order of magnitude more events than a 1-core
//! one), so point-level work stealing load-balances where
//! one-thread-per-placement cannot. Determinism is preserved because the
//! measurement noise is *stateless* (a pure function of `(seed, tags)`,
//! see `mc_memsim::noise`) and every point writes to its own
//! pre-assigned slot — results are bit-identical to the sequential path
//! regardless of which worker measures which point in which order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mc_topology::{NumaId, Platform, SocketId};

use crate::config::BenchConfig;
use crate::record::{PlacementSweep, PlatformSweep, SweepPoint};
use crate::runner::BenchRunner;

/// The two placement configurations used to *instantiate* the model
/// (§IV-A2): both buffers on the first NUMA node of the first socket
/// (local model), and both on the first NUMA node of the second socket
/// (remote model). Returns `((comp, comm) local, (comp, comm) remote)`.
pub fn calibration_placements(platform: &Platform) -> ((NumaId, NumaId), (NumaId, NumaId)) {
    let topo = &platform.topology;
    let local = topo.first_numa_of(SocketId::new(0));
    let remote = topo.first_numa_of(SocketId::new(1));
    ((local, local), (remote, remote))
}

/// Measure the two calibration sweeps of a platform.
pub fn calibration_sweeps(
    platform: &Platform,
    config: BenchConfig,
) -> (PlacementSweep, PlacementSweep) {
    let runner = BenchRunner::new(platform, config);
    let ((lc, lm), (rc, rm)) = calibration_placements(platform);
    (runner.run_placement(lc, lm), runner.run_placement(rc, rm))
}

/// Measure every placement combination of a platform sequentially.
pub fn sweep_platform(platform: &Platform, config: BenchConfig) -> PlatformSweep {
    let _span = mc_obs::span(
        "sweep",
        &[
            ("platform", mc_obs::TagValue::Str(platform.name())),
            ("mode", mc_obs::TagValue::Str("sequential")),
            (
                "n_cores",
                mc_obs::TagValue::U64(platform.max_compute_cores() as u64),
            ),
        ],
    );
    let runner = BenchRunner::new(platform, config);
    let sweeps = platform
        .topology
        .placement_combinations()
        .into_iter()
        .map(|(m_comp, m_comm)| runner.run_placement(m_comp, m_comm))
        .collect();
    PlatformSweep {
        platform: platform.name().to_string(),
        sweeps,
    }
}

/// Measure every placement combination with a bounded pool of workers
/// stealing individual `(placement, n_cores)` points.
///
/// Uses up to [`std::thread::available_parallelism`] workers (capped by
/// the number of points). Results are bit-identical to
/// [`sweep_platform`]: the noise source is stateless and each point lands
/// in its pre-assigned slot, so scheduling order is unobservable.
pub fn sweep_platform_parallel(platform: &Platform, config: BenchConfig) -> PlatformSweep {
    let combos = platform.topology.placement_combinations();
    let max_n = platform.max_compute_cores();
    let total = combos.len() * max_n;
    if total == 0 {
        return PlatformSweep {
            platform: platform.name().to_string(),
            sweeps: Vec::new(),
        };
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(total);
    let _span = mc_obs::span(
        "sweep",
        &[
            ("platform", mc_obs::TagValue::Str(platform.name())),
            ("mode", mc_obs::TagValue::Str("parallel")),
            ("n_cores", mc_obs::TagValue::U64(max_n as u64)),
            ("workers", mc_obs::TagValue::U64(workers as u64)),
        ],
    );

    let shared_platform = Arc::new(platform.clone());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(total));

    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            let combos = &combos;
            let config = &config;
            let shared_platform = &shared_platform;
            s.spawn(move || {
                // Catch panics inside the worker: an escaped panic would
                // re-raise from the scope join and take the caller down
                // with it. A dead worker instead leaves its points
                // unmeasured, which the caller detects and repairs.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // One runner per worker: its solve cache persists over
                    // all the points this worker measures.
                    let runner = BenchRunner::from_arc(Arc::clone(shared_platform), *config);
                    let mut points_measured = 0_u64;
                    loop {
                        let item = next.fetch_add(1, Ordering::Relaxed);
                        if item >= total {
                            break;
                        }
                        let (combo, n) = (item / max_n, item % max_n + 1);
                        let (m_comp, m_comm) = combos[combo];
                        let point = runner.measure_point(n, m_comp, m_comm);
                        points_measured += 1;
                        // Measurement data is plain-old-data: a mutex
                        // poisoned by some other worker's panic cannot hold
                        // a broken invariant, so recover the Vec and go on.
                        results
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .push((item, point));
                    }
                    // One sample per worker: the spread of this histogram
                    // is the pool's load-balance quality.
                    if let Some(rec) = mc_obs::recorder() {
                        rec.observe(
                            "sweep.worker_points",
                            &[("platform", mc_obs::TagValue::Str(shared_platform.name()))],
                            points_measured as f64,
                        );
                    }
                }));
            });
        }
    });

    let mut measured = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if measured.len() < total {
        // A worker died before covering its share (it panicked inside a
        // measurement). Degrade gracefully: measure the whole platform
        // sequentially rather than return a truncated sweep.
        if let Some(rec) = mc_obs::recorder() {
            rec.add(
                "sweep.fallback_sequential",
                &[("platform", mc_obs::TagValue::Str(platform.name()))],
                1,
            );
        }
        return sweep_platform(platform, config);
    }
    measured.sort_unstable_by_key(|&(item, _)| item);
    let mut points = measured.into_iter().map(|(_, point)| point);
    let sweeps = combos
        .iter()
        .map(|&(m_comp, m_comm)| PlacementSweep {
            m_comp,
            m_comm,
            points: points.by_ref().take(max_n).collect(),
        })
        .collect();
    PlatformSweep {
        platform: platform.name().to_string(),
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    #[test]
    fn calibration_placements_follow_the_paper() {
        let p = platforms::henri_subnuma();
        let ((lc, lm), (rc, rm)) = calibration_placements(&p);
        // First NUMA node of socket 0 and first of socket 1 (#m = 2 → node 2).
        assert_eq!(lc, NumaId::new(0));
        assert_eq!(lm, NumaId::new(0));
        assert_eq!(rc, NumaId::new(2));
        assert_eq!(rm, NumaId::new(2));
    }

    #[test]
    fn full_sweep_covers_all_placements() {
        let p = platforms::henri();
        let sweep = sweep_platform(&p, BenchConfig::exact());
        assert_eq!(sweep.sweeps.len(), 4);
        let p4 = platforms::henri_subnuma();
        let sweep4 = sweep_platform(&p4, BenchConfig::exact());
        assert_eq!(sweep4.sweeps.len(), 16);
    }

    #[test]
    fn parallel_sweep_equals_sequential() {
        let p = platforms::henri();
        let cfg = BenchConfig::default(); // noisy: exercises determinism too
        let seq = sweep_platform(&p, cfg);
        let par = sweep_platform_parallel(&p, cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn pooled_sweep_is_deterministic_on_four_numa_platform() {
        // 16 placements × 17 core counts on henri-subnuma: enough points
        // that the pooled scheduler interleaves placements arbitrarily.
        // The stateless noise keeps every point bit-identical to the
        // sequential sweep, and repeated pooled runs agree exactly.
        let p = platforms::henri_subnuma();
        let cfg = BenchConfig::default();
        let seq = sweep_platform(&p, cfg);
        let par1 = sweep_platform_parallel(&p, cfg);
        let par2 = sweep_platform_parallel(&p, cfg);
        assert_eq!(seq, par1);
        assert_eq!(par1, par2);
    }

    #[test]
    fn pooled_sweep_matches_sequential_event_driven() {
        // The event-driven backend exercises the memoized engine inside
        // pooled workers; results must still be bit-identical.
        let p = platforms::henri();
        let mut cfg = BenchConfig::event_driven();
        cfg.window = 0.05;
        cfg.warmup = 0.02;
        let seq = sweep_platform(&p, cfg);
        let par = sweep_platform_parallel(&p, cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn calibration_sweeps_are_the_diagonal_configs() {
        let p = platforms::henri();
        let (local, remote) = calibration_sweeps(&p, BenchConfig::exact());
        assert_eq!(local.m_comp, local.m_comm);
        assert_eq!(remote.m_comp, remote.m_comm);
        assert_ne!(local.m_comp, remote.m_comp);
    }
}
