//! The benchmark runner: measures one placement configuration.
//!
//! For every core count `n` the paper's program executes three phases —
//! computations alone, communications alone, both in parallel — with the
//! computation buffers bound to `m_comp` and the communication buffers to
//! `m_comm`. The runner reproduces the three phases against the simulated
//! platform, through either the analytic solver or full event-driven runs,
//! and applies the platform's deterministic measurement noise.

use std::cell::RefCell;
use std::sync::Arc;

use mc_memsim::engine::{Activity, ActivityKind, Engine, SolveCache, SolverStats};
use mc_memsim::fabric::{Fabric, StreamSpec};
use mc_memsim::noise::Noise;
use mc_netsim::nic_model::NicModel;
use mc_topology::{NumaId, Platform};

use crate::config::{Backend, BenchConfig};
use crate::record::{PlacementSweep, SweepPoint};

/// Phase tags for the stateless noise source.
mod phase {
    pub const COMP_ALONE: u64 = 1;
    pub const COMM_ALONE: u64 = 2;
    pub const PAR_COMP: u64 = 3;
    pub const PAR_COMM: u64 = 4;
}

/// Measures bandwidths on one simulated platform.
///
/// The runner keeps one [`SolveCache`] for its lifetime: every engine run
/// it performs (any phase, any core count) shares it, so a placement sweep
/// re-solves each distinct machine state only once.
#[derive(Debug, Clone)]
pub struct BenchRunner {
    platform: Arc<Platform>,
    fabric: Fabric,
    nic: NicModel,
    config: BenchConfig,
    noise: Noise,
    solve_cache: RefCell<SolveCache>,
}

impl BenchRunner {
    /// Create a runner for a platform with the given configuration
    /// (clones the platform once; use [`BenchRunner::from_arc`] to share
    /// an existing handle).
    pub fn new(platform: &Platform, config: BenchConfig) -> Self {
        Self::from_arc(Arc::new(platform.clone()), config)
    }

    /// Create a runner around a shared platform without cloning it — the
    /// runner and its fabric both hold the same [`Arc`].
    pub fn from_arc(platform: Arc<Platform>, config: BenchConfig) -> Self {
        let fabric = Fabric::from_arc(Arc::clone(&platform));
        let nic = NicModel::new(&fabric);
        let noise = Noise::new(platform.behavior.noise.seed);
        BenchRunner {
            platform,
            fabric,
            nic,
            config,
            noise,
            solve_cache: RefCell::new(SolveCache::new()),
        }
    }

    /// The platform under measurement.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Cumulative solver counters over every engine run this runner has
    /// performed (how many solves actually ran vs were answered from the
    /// memoization cache).
    pub fn solver_stats(&self) -> SolverStats {
        self.solve_cache.borrow().stats()
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// Effective CPU demand scale for `n` computing cores: the kernel's
    /// traffic factor, reduced by the LLC hit ratio when the kernel is
    /// cacheable and a cache model is configured.
    fn cpu_scale(&self, n: usize) -> f64 {
        let kernel = &self.config.kernel;
        let mut scale = kernel.traffic_scale;
        if !kernel.bypasses_llc {
            if let Some(llc) = self.config.llc {
                scale *= llc.miss_ratio(n, self.config.bytes_per_pass as f64);
            }
        }
        scale.max(1e-3)
    }

    /// The DMA streams of the configured communication pattern.
    fn comm_streams(&self, m_comm: NumaId) -> Vec<StreamSpec> {
        self.config.comm_pattern.streams(m_comm)
    }

    fn jitter(&self, value: f64, sigma: f64, tags: [u64; 4]) -> f64 {
        if !self.config.noisy {
            return value;
        }
        value * self.noise.multiplier(sigma, &tags)
    }

    /// Computations-alone bandwidth for `n` cores writing to `m_comp`.
    pub fn comp_alone(&self, n: usize, m_comp: NumaId) -> f64 {
        let raw = match self.config.backend {
            Backend::Analytic => {
                let streams = Fabric::benchmark_streams(n, Some(m_comp), None);
                self.fabric
                    .solve_with(&streams, self.cpu_scale(n))
                    .cpu_total(&streams)
            }
            Backend::EventDriven => {
                let acts = self.compute_activities(n, m_comp);
                let report = self.engine_run(&acts, n);
                report.compute_bandwidth(&acts)
            }
        };
        self.jitter(
            raw,
            self.platform.behavior.noise.compute_sigma,
            [phase::COMP_ALONE, m_comp.0 as u64, 0, n as u64],
        )
    }

    /// Communications-alone bandwidth into `m_comm`. `n` only tags the
    /// noise sample (the paper measures the phase once per core count).
    pub fn comm_alone(&self, n: usize, m_comm: NumaId) -> f64 {
        let raw = match self.config.backend {
            Backend::Analytic => {
                let streams = self.comm_streams(m_comm);
                let solved = self.fabric.solve(&streams);
                let per_flow = solved.dma_total(&streams) / streams.len() as f64;
                self.observed_comm(per_flow)
            }
            Backend::EventDriven => {
                let acts = self.comm_activities(m_comm);
                let report = self.engine_run(&acts, 0);
                report.comm_bandwidth(&acts) / acts.len() as f64
            }
        };
        self.jitter(
            raw,
            self.platform.behavior.noise.comm_sigma,
            [phase::COMM_ALONE, 0, m_comm.0 as u64, n as u64],
        )
    }

    /// Parallel phase: `(compute bandwidth, communication bandwidth)` for
    /// `n` cores on `m_comp` with the NIC receiving into `m_comm`.
    pub fn parallel(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> (f64, f64) {
        let (comp_raw, comm_raw) = match self.config.backend {
            Backend::Analytic => {
                let mut streams = Fabric::benchmark_streams(n, Some(m_comp), None);
                let comm_streams = self.comm_streams(m_comm);
                let n_comm = comm_streams.len();
                streams.extend(comm_streams);
                let solved = self.fabric.solve_with(&streams, self.cpu_scale(n));
                let comp = solved.cpu_total(&streams);
                let per_flow = solved.dma_total(&streams) / n_comm as f64;
                (comp, self.observed_comm(per_flow))
            }
            Backend::EventDriven => {
                let mut acts = self.compute_activities(n, m_comp);
                let comm_acts = self.comm_activities(m_comm);
                let n_comm = comm_acts.len();
                acts.extend(comm_acts);
                let report = self.engine_run(&acts, n);
                (
                    report.compute_bandwidth(&acts),
                    report.comm_bandwidth(&acts) / n_comm as f64,
                )
            }
        };
        let comp = self.jitter(
            comp_raw,
            self.platform.behavior.noise.compute_sigma,
            [phase::PAR_COMP, m_comp.0 as u64, m_comm.0 as u64, n as u64],
        );
        let comm = self.jitter(
            comm_raw,
            self.platform.behavior.noise.comm_sigma,
            [phase::PAR_COMM, m_comp.0 as u64, m_comm.0 as u64, n as u64],
        );
        (comp, comm)
    }

    /// Full sweep over `1..=max_compute_cores` for one placement.
    pub fn run_placement(&self, m_comp: NumaId, m_comm: NumaId) -> PlacementSweep {
        let points = (1..=self.platform.max_compute_cores())
            .map(|n| self.measure_point(n, m_comp, m_comm))
            .collect();
        PlacementSweep {
            m_comp,
            m_comm,
            points,
        }
    }

    /// One core count, all three phases.
    pub fn measure_point(&self, n: usize, m_comp: NumaId, m_comm: NumaId) -> SweepPoint {
        // Skip the Instant entirely when observability is off so the hot
        // sweep loop pays only one atomic load per point.
        let t0 = mc_obs::enabled().then(std::time::Instant::now);
        let comp_alone = self.comp_alone(n, m_comp);
        let comm_alone = self.comm_alone(n, m_comm);
        let (comp_par, comm_par) = self.parallel(n, m_comp, m_comm);
        if let (Some(t0), Some(rec)) = (t0, mc_obs::recorder()) {
            let tags = [
                ("platform", mc_obs::TagValue::Str(self.platform.name())),
                ("m_comp", mc_obs::TagValue::U64(m_comp.0 as u64)),
                ("m_comm", mc_obs::TagValue::U64(m_comm.0 as u64)),
            ];
            rec.add("sweep.points", &tags, 1);
            rec.observe("sweep.point_seconds", &tags, t0.elapsed().as_secs_f64());
        }
        SweepPoint {
            n_cores: n,
            comp_alone,
            comm_alone,
            comp_par,
            comm_par,
        }
    }

    /// Fold protocol overheads into a DMA payload rate: the benchmark
    /// reports "message size over the necessary time to receive data",
    /// which includes the rendezvous handshake.
    fn observed_comm(&self, payload_rate: f64) -> f64 {
        if payload_rate <= 0.0 {
            return 0.0;
        }
        self.nic
            .protocol()
            .plan(self.config.msg_bytes)
            .observed_bandwidth(payload_rate)
    }

    fn compute_activities(&self, n: usize, m_comp: NumaId) -> Vec<Activity> {
        (0..n)
            .map(|i| Activity {
                kind: ActivityKind::Compute {
                    numa: m_comp,
                    bytes_per_pass: self.config.bytes_per_pass as f64,
                    pass_overhead: self.config.pass_overhead,
                },
                // Stagger starts so kernel passes do not stay in lockstep.
                start: i as f64 * 1.3e-5,
            })
            .collect()
    }

    fn comm_activities(&self, m_comm: NumaId) -> Vec<Activity> {
        use crate::kernel::CommPattern;
        let recv = self
            .nic
            .receive_activity(m_comm, self.config.msg_bytes, 0.0);
        let send = self.nic.send_activity(m_comm, self.config.msg_bytes, 0.0);
        match self.config.comm_pattern {
            CommPattern::RecvOnly => vec![recv],
            CommPattern::SendOnly => vec![send],
            CommPattern::PingPong => vec![recv, send],
        }
    }

    fn engine_run(&self, acts: &[Activity], n: usize) -> mc_memsim::engine::RunReport {
        Engine::with_cpu_scale(&self.fabric, self.cpu_scale(n))
            .with_solve_cache(&self.solve_cache)
            .run(
                acts,
                self.config.warmup,
                self.config.warmup + self.config.window,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_topology::platforms;

    fn n(i: u16) -> NumaId {
        NumaId::new(i)
    }

    #[test]
    fn exact_comp_alone_matches_solver() {
        let p = platforms::henri();
        let r = BenchRunner::new(&p, BenchConfig::exact());
        assert!((r.comp_alone(4, n(0)) - 4.0 * 5.6).abs() < 1e-9);
    }

    #[test]
    fn noisy_measurements_jitter_but_stay_close() {
        let p = platforms::henri();
        let exact = BenchRunner::new(&p, BenchConfig::exact());
        let noisy = BenchRunner::new(&p, BenchConfig::default());
        let e = exact.comp_alone(4, n(0));
        let m = noisy.comp_alone(4, n(0));
        assert_ne!(e, m);
        assert!((m - e).abs() / e < 0.05, "e={e}, m={m}");
    }

    #[test]
    fn noise_is_deterministic() {
        let p = platforms::henri();
        let a = BenchRunner::new(&p, BenchConfig::default()).comp_alone(4, n(0));
        let b = BenchRunner::new(&p, BenchConfig::default()).comp_alone(4, n(0));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_shows_contention_on_henri_local() {
        let p = platforms::henri();
        let r = BenchRunner::new(&p, BenchConfig::exact());
        let comm_alone = r.comm_alone(17, n(0));
        let (_, comm_par) = r.parallel(17, n(0), n(0));
        assert!(
            comm_par < 0.4 * comm_alone,
            "comm_par={comm_par}, alone={comm_alone}"
        );
    }

    #[test]
    fn placement_sweep_has_all_core_counts() {
        let p = platforms::occigen();
        let r = BenchRunner::new(&p, BenchConfig::exact());
        let sweep = r.run_placement(n(0), n(0));
        assert_eq!(sweep.points.len(), 13);
        assert_eq!(sweep.points[0].n_cores, 1);
        assert_eq!(sweep.max_cores(), 13);
    }

    #[test]
    fn event_driven_close_to_analytic() {
        let p = platforms::henri();
        let exact = BenchRunner::new(&p, BenchConfig::exact());
        let mut ed_cfg = BenchConfig::event_driven();
        ed_cfg.noisy = false;
        let ed = BenchRunner::new(&p, ed_cfg);
        for &nn in &[1usize, 8, 14, 17] {
            let (ca, ma) = exact.parallel(nn, n(0), n(0));
            let (ce, me) = ed.parallel(nn, n(0), n(0));
            assert!(
                (ca - ce).abs() / ca < 0.03,
                "n={nn}: comp analytic {ca} vs event {ce}"
            );
            assert!(
                (ma - me).abs() / ma < 0.05,
                "n={nn}: comm analytic {ma} vs event {me}"
            );
        }
    }

    #[test]
    fn comm_alone_includes_protocol_overhead() {
        let p = platforms::henri();
        let r = BenchRunner::new(&p, BenchConfig::exact());
        let fabric = Fabric::new(&p);
        let demand = fabric.dma_demand(n(0));
        let observed = r.comm_alone(1, n(0));
        assert!(observed < demand);
        assert!(observed > demand * 0.99);
    }
}
