//! Benchmark configuration.

use serde::{Deserialize, Serialize};

use mc_memsim::cache::LlcSpec;

use crate::kernel::{CommPattern, ComputeKernel};

/// How bandwidths are obtained from the simulated hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Steady-state rates straight from the tiered max-min solver, with
    /// protocol overheads folded in analytically. Fast — used by the test
    /// suite and the model-calibration path.
    Analytic,
    /// Full discrete-event runs of the `mc-memsim` engine: kernel passes,
    /// rendezvous handshakes and message gaps are simulated, bandwidths are
    /// integrated over a measurement window. Slower, more faithful — used
    /// by the reproduction harness for figures.
    EventDriven,
}

/// Parameters of the benchmark suite, mirroring the paper's choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Message size in bytes; the paper uses 64 MB receives.
    pub msg_bytes: u64,
    /// Bytes each computing core writes per kernel pass (weak scaling:
    /// "each computing core always work on the same amount of data").
    pub bytes_per_pass: u64,
    /// Per-pass loop overhead in seconds.
    pub pass_overhead: f64,
    /// Warm-up portion of event-driven runs, seconds of simulated time.
    pub warmup: f64,
    /// Measurement window of event-driven runs, seconds of simulated time.
    pub window: f64,
    /// Simulation backend.
    pub backend: Backend,
    /// Whether to apply the platform's deterministic measurement noise.
    pub noisy: bool,
    /// Compute kernel run by the computing cores.
    pub kernel: ComputeKernel,
    /// Communication pattern (the paper receives only).
    pub comm_pattern: CommPattern,
    /// Optional last-level-cache model; `None` reproduces the paper's
    /// setup (non-temporal accesses bypass the cache anyway).
    pub llc: Option<LlcSpec>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            msg_bytes: 64 << 20,
            bytes_per_pass: 256 << 20,
            pass_overhead: 2e-6,
            warmup: 0.05,
            window: 0.25,
            backend: Backend::Analytic,
            noisy: true,
            kernel: ComputeKernel::memset_nt(),
            comm_pattern: CommPattern::RecvOnly,
            llc: None,
        }
    }
}

impl BenchConfig {
    /// Analytic, noise-free configuration — useful for tests that compare
    /// against exact solver output.
    pub fn exact() -> Self {
        BenchConfig {
            noisy: false,
            ..BenchConfig::default()
        }
    }

    /// Event-driven configuration with default windows.
    pub fn event_driven() -> Self {
        BenchConfig {
            backend: Backend::EventDriven,
            ..BenchConfig::default()
        }
    }

    /// Same configuration with a different compute kernel.
    pub fn with_kernel(mut self, kernel: ComputeKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Same configuration with a different communication pattern.
    pub fn with_pattern(mut self, pattern: CommPattern) -> Self {
        self.comm_pattern = pattern;
        self
    }

    /// Same configuration with a last-level-cache model.
    pub fn with_llc(mut self, llc: LlcSpec) -> Self {
        self.llc = Some(llc);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_64mb_messages() {
        let c = BenchConfig::default();
        assert_eq!(c.msg_bytes, 64 << 20);
        assert_eq!(c.backend, Backend::Analytic);
        assert!(c.noisy);
    }

    #[test]
    fn exact_is_noise_free() {
        assert!(!BenchConfig::exact().noisy);
    }

    #[test]
    fn event_driven_switches_backend() {
        assert_eq!(BenchConfig::event_driven().backend, Backend::EventDriven);
    }
}
