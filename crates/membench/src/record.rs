//! Measurement records produced by the benchmark suite, plus a small
//! hand-rolled CSV codec (no extra dependencies).
//!
//! The paper's benchmark (§IV-A1) executes, for every possible number of
//! computing cores: 1) computations alone; 2) communications alone; 3) both
//! in parallel — for a given placement of computation data and
//! communication data on NUMA nodes. One [`SweepPoint`] holds the four
//! bandwidths of one core count; one [`PlacementSweep`] holds a full core
//! sweep for one `(m_comp, m_comm)` placement; one [`PlatformSweep`] holds
//! every placement combination of a machine.

use serde::{Deserialize, Serialize};

use mc_topology::NumaId;

/// One of the four bandwidth columns of a [`SweepPoint`] — used by sweep
/// validation (to report *which* measurement is broken) and by the fault
/// injector (to choose *what* to perturb).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepColumn {
    /// Computations-alone bandwidth.
    CompAlone,
    /// Communications-alone bandwidth.
    CommAlone,
    /// Computation bandwidth of the parallel phase.
    CompPar,
    /// Communication bandwidth of the parallel phase.
    CommPar,
}

impl SweepColumn {
    /// Every column, in record order.
    pub const ALL: [SweepColumn; 4] = [
        SweepColumn::CompAlone,
        SweepColumn::CommAlone,
        SweepColumn::CompPar,
        SweepColumn::CommPar,
    ];

    /// Read this column of a point.
    pub fn get(self, point: &SweepPoint) -> f64 {
        match self {
            SweepColumn::CompAlone => point.comp_alone,
            SweepColumn::CommAlone => point.comm_alone,
            SweepColumn::CompPar => point.comp_par,
            SweepColumn::CommPar => point.comm_par,
        }
    }

    /// Overwrite this column of a point.
    pub fn set(self, point: &mut SweepPoint, value: f64) {
        match self {
            SweepColumn::CompAlone => point.comp_alone = value,
            SweepColumn::CommAlone => point.comm_alone = value,
            SweepColumn::CompPar => point.comp_par = value,
            SweepColumn::CommPar => point.comm_par = value,
        }
    }
}

impl std::fmt::Display for SweepColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SweepColumn::CompAlone => "comp_alone",
            SweepColumn::CommAlone => "comm_alone",
            SweepColumn::CompPar => "comp_par",
            SweepColumn::CommPar => "comm_par",
        })
    }
}

/// Bandwidths measured for one number of computing cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of computing cores `n`.
    pub n_cores: usize,
    /// Memory bandwidth of computations executed alone, GB/s.
    pub comp_alone: f64,
    /// Network bandwidth of communications executed alone, GB/s.
    pub comm_alone: f64,
    /// Memory bandwidth of computations with communications in parallel.
    pub comp_par: f64,
    /// Network bandwidth of communications with computations in parallel.
    pub comm_par: f64,
}

impl SweepPoint {
    /// Total (stacked) bandwidth of the parallel phase — the quantity
    /// plotted in the paper's Fig. 2.
    pub fn total_par(&self) -> f64 {
        self.comp_par + self.comm_par
    }
}

/// A full core-count sweep for one data placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSweep {
    /// NUMA node holding computation data (the paper's `m_comp`).
    pub m_comp: NumaId,
    /// NUMA node holding communication data (the paper's `m_comm`).
    pub m_comm: NumaId,
    /// One point per core count, ascending `n_cores` starting at 1.
    pub points: Vec<SweepPoint>,
}

impl PlacementSweep {
    /// The point for `n` computing cores, if measured.
    pub fn at(&self, n: usize) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.n_cores == n)
    }

    /// Largest measured core count.
    pub fn max_cores(&self) -> usize {
        self.points.iter().map(|p| p.n_cores).max().unwrap_or(0)
    }

    /// Communications-alone bandwidth averaged over the sweep (it does not
    /// depend on the core count, so averaging suppresses measurement
    /// noise).
    pub fn comm_alone_mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.comm_alone).sum::<f64>() / self.points.len() as f64
    }
}

/// Every placement sweep of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSweep {
    /// Platform name (Table I).
    pub platform: String,
    /// One sweep per `(m_comp, m_comm)` combination, in
    /// [`mc_topology::MachineTopology::placement_combinations`] order.
    pub sweeps: Vec<PlacementSweep>,
}

impl PlatformSweep {
    /// The sweep for a given placement.
    pub fn placement(&self, m_comp: NumaId, m_comm: NumaId) -> Option<&PlacementSweep> {
        self.sweeps
            .iter()
            .find(|s| s.m_comp == m_comp && s.m_comm == m_comm)
    }

    /// Serialise to CSV (`platform,m_comp,m_comm,n,comp_alone,comm_alone,
    /// comp_par,comm_par`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "platform,m_comp,m_comm,n_cores,comp_alone,comm_alone,comp_par,comm_par\n",
        );
        for s in &self.sweeps {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{},{},{:.6},{:.6},{:.6},{:.6}\n",
                    self.platform,
                    s.m_comp.0,
                    s.m_comm.0,
                    p.n_cores,
                    p.comp_alone,
                    p.comm_alone,
                    p.comp_par,
                    p.comm_par
                ));
            }
        }
        out
    }

    /// Parse the CSV produced by [`PlatformSweep::to_csv`].
    pub fn from_csv(text: &str) -> Result<PlatformSweep, CsvError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(CsvError::Empty)?;
        if !header.starts_with("platform,m_comp,m_comm,n_cores") {
            return Err(CsvError::BadHeader);
        }
        let mut platform = String::new();
        let mut sweeps: Vec<PlacementSweep> = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(CsvError::BadRow(lineno + 2));
            }
            // Bandwidth cells must be finite *here*: "NaN" and "inf" parse
            // as Ok(f64) and would otherwise surface much later, inside
            // calibrate(), with the file/line context lost.
            let parse_f = |s: &str, column: SweepColumn| {
                let v = s.parse::<f64>().map_err(|_| CsvError::BadRow(lineno + 2))?;
                if !v.is_finite() {
                    return Err(CsvError::NonFinite {
                        line: lineno + 2,
                        column,
                    });
                }
                Ok(v)
            };
            let parse_u = |s: &str| s.parse::<u64>().map_err(|_| CsvError::BadRow(lineno + 2));
            if platform.is_empty() {
                platform = fields[0].to_string();
            } else if platform != fields[0] {
                return Err(CsvError::MixedPlatforms);
            }
            let m_comp = NumaId::new(parse_u(fields[1])? as u16);
            let m_comm = NumaId::new(parse_u(fields[2])? as u16);
            let point = SweepPoint {
                n_cores: parse_u(fields[3])? as usize,
                comp_alone: parse_f(fields[4], SweepColumn::CompAlone)?,
                comm_alone: parse_f(fields[5], SweepColumn::CommAlone)?,
                comp_par: parse_f(fields[6], SweepColumn::CompPar)?,
                comm_par: parse_f(fields[7], SweepColumn::CommPar)?,
            };
            match sweeps
                .iter_mut()
                .find(|s| s.m_comp == m_comp && s.m_comm == m_comm)
            {
                Some(s) => s.points.push(point),
                None => sweeps.push(PlacementSweep {
                    m_comp,
                    m_comm,
                    points: vec![point],
                }),
            }
        }
        Ok(PlatformSweep { platform, sweeps })
    }
}

/// CSV parsing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvError {
    /// No header line.
    Empty,
    /// Unexpected header.
    BadHeader,
    /// Malformed row (1-based line number).
    BadRow(usize),
    /// A bandwidth cell parsed but is NaN or infinite.
    NonFinite {
        /// 1-based line number of the offending row.
        line: usize,
        /// Which bandwidth column held the non-finite value.
        column: SweepColumn,
    },
    /// Rows from several platforms in one file.
    MixedPlatforms,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "empty CSV"),
            CsvError::BadHeader => write!(f, "unexpected CSV header"),
            CsvError::BadRow(n) => write!(f, "malformed CSV row at line {n}"),
            CsvError::NonFinite { line, column } => {
                write!(f, "non-finite {column} value at CSV line {line}")
            }
            CsvError::MixedPlatforms => write!(f, "CSV mixes several platforms"),
        }
    }
}

impl std::error::Error for CsvError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlatformSweep {
        PlatformSweep {
            platform: "henri".into(),
            sweeps: vec![PlacementSweep {
                m_comp: NumaId::new(0),
                m_comm: NumaId::new(1),
                points: vec![
                    SweepPoint {
                        n_cores: 1,
                        comp_alone: 5.6,
                        comm_alone: 11.2,
                        comp_par: 5.6,
                        comm_par: 11.2,
                    },
                    SweepPoint {
                        n_cores: 2,
                        comp_alone: 11.2,
                        comm_alone: 11.3,
                        comp_par: 11.1,
                        comm_par: 11.0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn csv_round_trip() {
        let s = sample();
        let parsed = PlatformSweep::from_csv(&s.to_csv()).unwrap();
        assert_eq!(parsed.platform, "henri");
        assert_eq!(parsed.sweeps.len(), 1);
        assert_eq!(parsed.sweeps[0].points.len(), 2);
        let p = parsed.sweeps[0].at(2).unwrap();
        assert!((p.comm_par - 11.0).abs() < 1e-6);
    }

    #[test]
    fn total_par_is_stacked() {
        let p = sample().sweeps[0].points[1];
        assert!((p.total_par() - 22.1).abs() < 1e-9);
    }

    #[test]
    fn comm_alone_mean_averages() {
        let s = sample();
        assert!((s.sweeps[0].comm_alone_mean() - 11.25).abs() < 1e-9);
    }

    #[test]
    fn placement_lookup() {
        let s = sample();
        assert!(s.placement(NumaId::new(0), NumaId::new(1)).is_some());
        assert!(s.placement(NumaId::new(1), NumaId::new(0)).is_none());
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert_eq!(PlatformSweep::from_csv(""), Err(CsvError::Empty));
        assert_eq!(
            PlatformSweep::from_csv("nope\n1,2,3"),
            Err(CsvError::BadHeader)
        );
        let bad = "platform,m_comp,m_comm,n_cores,a,b,c,d\nhenri,0,0,xx,1,2,3,4\n";
        assert_eq!(PlatformSweep::from_csv(bad), Err(CsvError::BadRow(2)));
    }

    #[test]
    fn from_csv_rejects_non_finite_cells_with_location() {
        let nan = "platform,m_comp,m_comm,n_cores,a,b,c,d\n\
                   henri,0,0,1,1,2,3,4\n\
                   henri,0,0,2,1,NaN,3,4\n";
        assert_eq!(
            PlatformSweep::from_csv(nan),
            Err(CsvError::NonFinite {
                line: 3,
                column: SweepColumn::CommAlone,
            })
        );
        let inf = "platform,m_comp,m_comm,n_cores,a,b,c,d\n\
                   henri,0,0,1,1,2,3,-inf\n";
        assert_eq!(
            PlatformSweep::from_csv(inf),
            Err(CsvError::NonFinite {
                line: 2,
                column: SweepColumn::CommPar,
            })
        );
        let msg = PlatformSweep::from_csv(nan).unwrap_err().to_string();
        assert!(msg.contains("comm_alone"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn from_csv_rejects_mixed_platforms() {
        let text = "platform,m_comp,m_comm,n_cores,a,b,c,d\n\
                    henri,0,0,1,1,2,3,4\n\
                    dahu,0,0,1,1,2,3,4\n";
        assert_eq!(PlatformSweep::from_csv(text), Err(CsvError::MixedPlatforms));
    }

    #[test]
    fn max_cores_and_missing_at() {
        let s = sample();
        assert_eq!(s.sweeps[0].max_cores(), 2);
        assert!(s.sweeps[0].at(7).is_none());
    }
}
