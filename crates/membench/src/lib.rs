//! # mc-membench — the paper's benchmarking suite
//!
//! Reimplementation of the memory-contention benchmark of §IV-A1 against
//! the simulated platforms: for every number of computing cores it
//! measures computations alone, then communications alone, then both in
//! parallel, with computation and communication buffers explicitly bound
//! to chosen NUMA nodes. Computing cores run non-temporal `memset`-style streams
//! (weak scaling), the communication thread receives 64 MB messages on a
//! dedicated core.
//!
//! Two backends are available: a fast analytic path straight from the
//! `mc-memsim` solver, and a full event-driven path where kernel passes,
//! rendezvous handshakes and message gaps are simulated. Both honour the
//! platform's deterministic measurement noise.
//!
//! ```
//! use mc_membench::{BenchConfig, BenchRunner};
//! use mc_topology::{platforms, NumaId};
//!
//! let platform = platforms::henri();
//! let runner = BenchRunner::new(&platform, BenchConfig::exact());
//! let sweep = runner.run_placement(NumaId::new(0), NumaId::new(0));
//! assert_eq!(sweep.points.len(), platform.max_compute_cores());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod faults;
pub mod kernel;
pub mod record;
pub mod runner;
pub mod sweep;

pub use config::{Backend, BenchConfig};
pub use faults::{Fault, FaultInjector};
pub use kernel::{CommPattern, ComputeKernel};
pub use record::{CsvError, PlacementSweep, PlatformSweep, SweepColumn, SweepPoint};
pub use runner::BenchRunner;
pub use sweep::{
    calibration_placements, calibration_sweeps, sweep_platform, sweep_platform_parallel,
};
