//! Compute kernels and communication patterns — the knobs of the paper's
//! future work (§VI: "similar computing kernels (e.g. copying an array into
//! another instead of just initializing an array with a single value)" and
//! "communications with bidirectional data movements (i.e. ping-pongs
//! instead of only pongs)").
//!
//! The model's validity is explicitly scoped to "the computation kernels
//! executed by computing cores and the message size used by communications"
//! (§IV-C1): changing the kernel or pattern changes the parameters, and the
//! model must be recalibrated — which the extension tests do.

use serde::{Deserialize, Serialize};

use mc_memsim::fabric::StreamSpec;
use mc_topology::NumaId;

/// Kernel families available to the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelFamily {
    /// Non-temporal `memset` (the paper's kernel).
    MemsetNt,
    /// Non-temporal array copy.
    CopyNt,
    /// Non-temporal STREAM triad.
    TriadNt,
    /// Cacheable `memset`.
    MemsetCacheable,
    /// Kernel with non-trivial arithmetic intensity.
    ComputeBound,
}

impl KernelFamily {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelFamily::MemsetNt => "memset-nt",
            KernelFamily::CopyNt => "copy-nt",
            KernelFamily::TriadNt => "triad-nt",
            KernelFamily::MemsetCacheable => "memset",
            KernelFamily::ComputeBound => "compute-bound",
        }
    }
}

/// A compute kernel, characterised by how much memory traffic it issues
/// relative to the paper's non-temporal `memset`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeKernel {
    /// Kernel family (display/dispatch).
    pub family: KernelFamily,
    /// Memory traffic per core relative to a non-temporal memset at the
    /// same element rate: a copy kernel reads one stream and writes
    /// another (≈ 1.15× the pressure of a pure store stream at NT-store
    /// rates), a compute-bound kernel issues far less.
    pub traffic_scale: f64,
    /// Whether the kernel's accesses bypass the last-level cache
    /// (non-temporal stores do; regular loads/stores do not).
    pub bypasses_llc: bool,
}

impl ComputeKernel {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        self.family.name()
    }

    /// The paper's kernel: `memset` with non-temporal stores.
    pub const fn memset_nt() -> Self {
        ComputeKernel {
            family: KernelFamily::MemsetNt,
            traffic_scale: 1.0,
            bypasses_llc: true,
        }
    }

    /// Copy an array into another with non-temporal stores: one read
    /// stream plus one write stream per core (future work, §VI).
    pub const fn copy_nt() -> Self {
        ComputeKernel {
            family: KernelFamily::CopyNt,
            traffic_scale: 1.15,
            bypasses_llc: true,
        }
    }

    /// STREAM-triad-like kernel: two read streams, one write stream.
    pub const fn triad_nt() -> Self {
        ComputeKernel {
            family: KernelFamily::TriadNt,
            traffic_scale: 1.25,
            bypasses_llc: true,
        }
    }

    /// Regular (cacheable) store kernel — same traffic as `memset_nt` when
    /// it misses, but the LLC can absorb it if the working set fits.
    pub const fn memset_cacheable() -> Self {
        ComputeKernel {
            family: KernelFamily::MemsetCacheable,
            traffic_scale: 1.0,
            bypasses_llc: false,
        }
    }

    /// A kernel with arithmetic intensity `flops_per_byte`: the memory
    /// traffic it can issue shrinks as the cores spend time computing.
    /// The paper observed (via its ICPP'21 companion study) that
    /// contention fades as arithmetic intensity grows.
    pub fn compute_bound(flops_per_byte: f64) -> Self {
        assert!(flops_per_byte >= 0.0, "negative arithmetic intensity");
        ComputeKernel {
            family: KernelFamily::ComputeBound,
            traffic_scale: 1.0 / (1.0 + flops_per_byte),
            bypasses_llc: true,
        }
    }
}

impl Default for ComputeKernel {
    fn default() -> Self {
        ComputeKernel::memset_nt()
    }
}

/// The communication pattern of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CommPattern {
    /// The paper's pattern: this node only receives ("pongs").
    #[default]
    RecvOnly,
    /// This node only sends (NIC reads from memory).
    SendOnly,
    /// Bidirectional ping-pong: simultaneous send and receive streams
    /// (future work, §VI).
    PingPong,
}

impl CommPattern {
    /// The DMA streams this pattern puts on the fabric, all using the
    /// communication buffer on `numa`.
    pub fn streams(self, numa: NumaId) -> Vec<StreamSpec> {
        match self {
            CommPattern::RecvOnly => vec![StreamSpec::DmaRecv { numa }],
            CommPattern::SendOnly => vec![StreamSpec::DmaSend { numa }],
            CommPattern::PingPong => {
                vec![StreamSpec::DmaRecv { numa }, StreamSpec::DmaSend { numa }]
            }
        }
    }

    /// Number of concurrent DMA flows.
    pub fn flow_count(self) -> usize {
        match self {
            CommPattern::RecvOnly | CommPattern::SendOnly => 1,
            CommPattern::PingPong => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memset_is_the_reference() {
        let k = ComputeKernel::default();
        assert_eq!(k.name(), "memset-nt");
        assert_eq!(k.traffic_scale, 1.0);
        assert!(k.bypasses_llc);
    }

    #[test]
    fn kernels_are_ordered_by_traffic() {
        assert!(ComputeKernel::copy_nt().traffic_scale > ComputeKernel::memset_nt().traffic_scale);
        assert!(ComputeKernel::triad_nt().traffic_scale > ComputeKernel::copy_nt().traffic_scale);
    }

    #[test]
    fn arithmetic_intensity_shrinks_traffic() {
        assert_eq!(ComputeKernel::compute_bound(0.0).traffic_scale, 1.0);
        assert!((ComputeKernel::compute_bound(4.0).traffic_scale - 0.2).abs() < 1e-12);
        assert!(
            ComputeKernel::compute_bound(10.0).traffic_scale
                < ComputeKernel::compute_bound(1.0).traffic_scale
        );
    }

    #[test]
    #[should_panic(expected = "negative arithmetic intensity")]
    fn negative_intensity_panics() {
        ComputeKernel::compute_bound(-1.0);
    }

    #[test]
    fn patterns_produce_the_right_streams() {
        let numa = NumaId::new(1);
        assert_eq!(CommPattern::RecvOnly.streams(numa).len(), 1);
        assert_eq!(CommPattern::SendOnly.streams(numa).len(), 1);
        let pp = CommPattern::PingPong.streams(numa);
        assert_eq!(pp.len(), 2);
        assert!(pp.iter().all(|s| s.is_dma()));
        assert_eq!(CommPattern::PingPong.flow_count(), 2);
    }

    #[test]
    fn default_pattern_is_the_papers() {
        assert_eq!(CommPattern::default(), CommPattern::RecvOnly);
    }
}
