//! Fault injection for benchmark sweeps.
//!
//! The paper attributes its worst prediction errors to "unstable input
//! data" (§IV-C): real calibration sweeps suffer dropped measurements,
//! outlier spikes from background activity, and occasionally whole broken
//! columns (a misconfigured counter reporting zeros or NaN). This module
//! produces those pathologies *on demand and deterministically*, so the
//! calibration pipeline's behaviour under each of them can be quantified
//! and asserted in tests:
//!
//! - *survivable* faults ([`Fault::DropPoints`], [`Fault::OutlierSpike`])
//!   leave a sweep that must still calibrate, with a bounded parameter
//!   shift (see `mc_model::robustness::fault_spread`);
//! - *poisoning* faults ([`Fault::ZeroColumn`], [`Fault::NanPoison`])
//!   leave a sweep that must be **rejected with a typed error**, never a
//!   panic or a silently wrong model.
//!
//! All randomness comes from a splitmix64 generator seeded per injector,
//! so every perturbation is reproducible from `(seed, fault list)` alone.

use crate::record::{PlacementSweep, SweepColumn};

/// A deterministic splitmix64 stream (same construction as
/// `mc_memsim::noise`; hand-rolled to keep the dependency set unchanged).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..bound` (`bound` must be non-zero).
    fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// One way to corrupt a [`PlacementSweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Drop roughly `fraction` of the *interior* points. The `n = 1` point
    /// (needed for `Bcomp_seq`) and the last point (needed for `δr`) are
    /// never dropped: this fault models an incomplete sweep, not an
    /// unusable one.
    DropPoints {
        /// Fraction of interior points to drop, in `[0, 1]`.
        fraction: f64,
    },
    /// Multiply one randomly chosen point's `column` by `factor` — a
    /// transient interference spike (factor > 1) or dip (factor < 1).
    OutlierSpike {
        /// The column to perturb.
        column: SweepColumn,
        /// Multiplicative factor applied to the chosen point.
        factor: f64,
    },
    /// Zero an entire column — a dead performance counter.
    ZeroColumn {
        /// The column to zero.
        column: SweepColumn,
    },
    /// Poison one randomly chosen point's `column` with NaN — a failed
    /// individual measurement that was recorded anyway.
    NanPoison {
        /// The column to poison.
        column: SweepColumn,
    },
    /// Shuffle the order of the points (the sweep's *content* is intact
    /// but the producer emitted rows out of order).
    ShufflePoints,
    /// Duplicate one randomly chosen point with its `comp_alone` value
    /// perturbed by `factor` — two conflicting measurements for the same
    /// core count.
    ConflictingDuplicate {
        /// Multiplicative factor applied to the duplicate's `comp_alone`.
        factor: f64,
    },
}

/// Applies [`Fault`]s to sweeps, deterministically per seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// An injector whose random choices are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Apply every fault in order to a copy of `sweep` and return it.
    pub fn perturbed(&self, sweep: &PlacementSweep, faults: &[Fault]) -> PlacementSweep {
        let mut out = sweep.clone();
        // Mix the seed once; fault order then advances the stream, so two
        // faults of the same kind in one list make different choices.
        let mut rng = Rng(self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed);
        for fault in faults {
            Self::apply(&mut rng, &mut out, fault);
        }
        out
    }

    fn apply(rng: &mut Rng, sweep: &mut PlacementSweep, fault: &Fault) {
        if sweep.points.is_empty() {
            return;
        }
        let len = sweep.points.len();
        match *fault {
            Fault::DropPoints { fraction } => {
                let last_n = sweep.max_cores();
                sweep.points.retain(|p| {
                    p.n_cores == 1 || p.n_cores == last_n || rng.next_f64() >= fraction
                });
            }
            Fault::OutlierSpike { column, factor } => {
                let p = &mut sweep.points[rng.index(len)];
                column.set(p, column.get(p) * factor);
            }
            Fault::ZeroColumn { column } => {
                for p in &mut sweep.points {
                    column.set(p, 0.0);
                }
            }
            Fault::NanPoison { column } => {
                column.set(&mut sweep.points[rng.index(len)], f64::NAN);
            }
            Fault::ShufflePoints => {
                // Fisher–Yates with the injector's stream.
                for i in (1..len).rev() {
                    sweep.points.swap(i, rng.index(i + 1));
                }
            }
            Fault::ConflictingDuplicate { factor } => {
                let mut dup = sweep.points[rng.index(len)];
                dup.comp_alone *= factor;
                sweep.points.push(dup);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BenchConfig;
    use crate::runner::BenchRunner;
    use mc_topology::{platforms, NumaId};

    fn henri_sweep() -> PlacementSweep {
        let p = platforms::henri();
        BenchRunner::new(&p, BenchConfig::default()).run_placement(NumaId::new(0), NumaId::new(0))
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let sweep = henri_sweep();
        let faults = [
            Fault::DropPoints { fraction: 0.3 },
            Fault::OutlierSpike {
                column: SweepColumn::CompPar,
                factor: 1.5,
            },
        ];
        let a = FaultInjector::new(7).perturbed(&sweep, &faults);
        let b = FaultInjector::new(7).perturbed(&sweep, &faults);
        let c = FaultInjector::new(8).perturbed(&sweep, &faults);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn drop_points_preserves_anchor_points() {
        let sweep = henri_sweep();
        let last = sweep.max_cores();
        for seed in 0..20 {
            let got =
                FaultInjector::new(seed).perturbed(&sweep, &[Fault::DropPoints { fraction: 0.9 }]);
            assert!(got.at(1).is_some(), "n = 1 must survive");
            assert!(got.at(last).is_some(), "last core count must survive");
        }
    }

    #[test]
    fn zero_column_zeroes_every_point() {
        let got = FaultInjector::new(0).perturbed(
            &henri_sweep(),
            &[Fault::ZeroColumn {
                column: SweepColumn::CommAlone,
            }],
        );
        assert!(got.points.iter().all(|p| p.comm_alone == 0.0));
        assert!(got.points.iter().all(|p| p.comp_alone > 0.0));
    }

    #[test]
    fn nan_poison_hits_exactly_one_point() {
        let got = FaultInjector::new(3).perturbed(
            &henri_sweep(),
            &[Fault::NanPoison {
                column: SweepColumn::CompPar,
            }],
        );
        let poisoned = got.points.iter().filter(|p| p.comp_par.is_nan()).count();
        assert_eq!(poisoned, 1);
    }

    #[test]
    fn shuffle_keeps_the_multiset_of_points() {
        let sweep = henri_sweep();
        let got = FaultInjector::new(11).perturbed(&sweep, &[Fault::ShufflePoints]);
        assert_ne!(
            got.points, sweep.points,
            "a 17-point shuffle must move something"
        );
        let mut sorted = got.points.clone();
        sorted.sort_by_key(|p| p.n_cores);
        assert_eq!(sorted, sweep.points);
    }

    #[test]
    fn conflicting_duplicate_adds_a_clashing_core_count() {
        let sweep = henri_sweep();
        let got =
            FaultInjector::new(5).perturbed(&sweep, &[Fault::ConflictingDuplicate { factor: 2.0 }]);
        assert_eq!(got.points.len(), sweep.points.len() + 1);
        let dup = got.points.last().unwrap();
        let original = sweep.at(dup.n_cores).unwrap();
        assert!((dup.comp_alone - 2.0 * original.comp_alone).abs() < 1e-9);
    }

    #[test]
    fn empty_sweep_is_left_alone() {
        let empty = PlacementSweep {
            m_comp: NumaId::new(0),
            m_comm: NumaId::new(0),
            points: vec![],
        };
        let got = FaultInjector::new(0).perturbed(
            &empty,
            &[Fault::NanPoison {
                column: SweepColumn::CompAlone,
            }],
        );
        assert!(got.points.is_empty());
    }
}
