//! Scheduler acceptance properties.
//!
//! * **Oracle equivalence** — on every property-tested small case
//!   (fleets of ≤ 3 nodes, queues of ≤ 5 jobs) the contention-aware
//!   heuristic (greedy + anneal) reaches exactly the exhaustive
//!   oracle's score: same violation count, bit-identical makespan.
//! * **Determinism** — the same queue, fleet and seed produce a
//!   byte-identical schedule report, end to end from a fresh registry.

use proptest::prelude::*;

use mc_model::{ModelRegistry, PhaseProfile};
use mc_sched::report::render;
use mc_sched::{exhaustive, parse_jobs, policy_by_name, policy_names, Evaluator, Fleet, JobSpec};
use mc_topology::platforms;

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        0.0f64..30.0,
        0.0f64..12.0,
        prop_oneof![Just(0usize), Just(2), Just(4), Just(8)],
    )
        .prop_map(|(compute_gb, comm_gb, max_cores)| JobSpec {
            name: "p".into(),
            profile: PhaseProfile {
                // Keep at least a sliver of work so no job is empty.
                compute_bytes: compute_gb * 1e9 + 1e6,
                comm_bytes: comm_gb * 1e9,
                max_cores,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heuristic_matches_the_exhaustive_oracle_on_small_cases(
        jobs in proptest::collection::vec(arb_job(), 1..6),
        nodes in 1usize..4,
        slack in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let max_slowdown = 1.0 + slack;
        let reg = ModelRegistry::new(8);
        let fleet = Fleet::build(vec![platforms::henri(); nodes], &reg).unwrap();
        let mut ev = Evaluator::new(&jobs, &fleet);
        let (_, oracle) = exhaustive(&mut ev, max_slowdown);
        let heur = policy_by_name("contention_aware", max_slowdown, seed)
            .unwrap()
            .assign(&mut ev);
        let score = ev.score(&heur, max_slowdown);
        prop_assert_eq!(score.violations, oracle.violations);
        prop_assert_eq!(
            score.makespan.to_bits(),
            oracle.makespan.to_bits(),
            "heuristic {} vs oracle {}",
            score.makespan,
            oracle.makespan
        );
    }
}

const QUEUE: &str = r#"{"name":"solver","compute_gb":28,"comm_gb":2,"max_cores":8}
{"name":"shuffle","compute_gb":2,"comm_gb":11,"max_cores":8}
{"name":"train","pattern":"allreduce","ranks":4,"iters":2,"cores":2,"compute_mb":512,"comm_mb":64}
{"name":"halo","pattern":"halo2d","ranks":4,"iters":2,"cores":2,"compute_mb":128,"comm_mb":256}
{"name":"filler","comm_gb":4}
"#;

/// One full pipeline run from scratch: registry, fleet, parse, all
/// three policies, rendered report.
fn full_report(seed: u64) -> String {
    let reg = ModelRegistry::new(8);
    let fleet = Fleet::build(vec![platforms::henri(); 2], &reg).unwrap();
    let jobs = parse_jobs(QUEUE).unwrap();
    fleet.validate_jobs(&jobs).unwrap();
    let mut ev = Evaluator::new(&jobs, &fleet);
    let plans: Vec<_> = policy_names()
        .iter()
        .map(|name| {
            let a = policy_by_name(name, 1.25, seed).unwrap().assign(&mut ev);
            ev.plan(name, &a, 1.25)
        })
        .collect();
    render(&fleet, &jobs, &plans, 1.25)
}

#[test]
fn same_queue_and_seed_give_a_byte_identical_report() {
    let a = full_report(42);
    let b = full_report(42);
    assert_eq!(a, b);
    assert!(a.contains("policy contention_aware"));
    assert!(a.contains("policy comparison"));
}
