//! Typed scheduler errors, mapped onto the workspace's exit-code
//! contract (invalid data → 3, I/O → 4) through
//! [`SchedError::category`]. Degenerate inputs — an empty job queue, a
//! zero-node fleet, a job no node can host — are errors, never panics.

use std::fmt;

use mc_model::{ErrorCategory, McError};

/// Why scheduling failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The job queue parsed to zero jobs.
    EmptyQueue,
    /// The fleet has zero nodes.
    EmptyFleet,
    /// A job requests more cores than any node in the fleet has, so no
    /// placement can honour it.
    JobTooWide {
        /// Job name.
        job: String,
        /// Cores the job requested.
        max_cores: usize,
        /// Compute cores of the widest fleet node.
        widest: usize,
    },
    /// A job-queue line failed to parse or validate.
    BadJob {
        /// 1-based line number in the queue file.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Reading a referenced trace file failed.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error.
        message: String,
    },
    /// Calibrating a fleet node's model failed.
    Model(McError),
}

impl SchedError {
    /// Which exit-code class the error belongs to.
    pub fn category(&self) -> ErrorCategory {
        match self {
            SchedError::Io { .. } => ErrorCategory::Io,
            SchedError::Model(e) => e.category(),
            _ => ErrorCategory::InvalidData,
        }
    }
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::EmptyQueue => write!(f, "the job queue is empty: nothing to schedule"),
            SchedError::EmptyFleet => write!(f, "the fleet has no nodes: nowhere to schedule"),
            SchedError::JobTooWide {
                job,
                max_cores,
                widest,
            } => write!(
                f,
                "job '{job}' requests {max_cores} cores but the widest fleet node \
                 has {widest}: no node can host it"
            ),
            SchedError::BadJob { line, message } => {
                write!(f, "job queue line {line}: {message}")
            }
            SchedError::Io { path, message } => write!(f, "{path}: {message}"),
            SchedError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<McError> for SchedError {
    fn from(e: McError) -> Self {
        SchedError::Model(e)
    }
}
