//! Placement search: the exhaustive small-case oracle and the seeded
//! annealing heuristic that replaces it at fleet scale.
//!
//! PR 5's brute-force placement search enumerates a NUMA grid — a
//! handful of points. Cluster assignment is `nodes^jobs` points, so the
//! oracle ([`exhaustive`]) only defines ground truth on small cases;
//! realistic fleets run [`anneal`]: a move/swap random walk with
//! simulated-annealing acceptance over the memoized evaluator, seeded
//! and therefore byte-reproducible. The walk tracks the best
//! *evaluated* assignment (not merely the best accepted one), so on
//! small instances it effectively enumerates the space and the
//! oracle-equivalence property holds with margin.

use crate::plan::{Evaluator, Score};

/// xorshift64* — the same tiny deterministic PRNG the loadgen bench
/// uses; good enough to drive proposals, trivially seedable.
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Seed the generator (0 is mapped away).
    pub fn new(seed: u64) -> Self {
        Xorshift(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Lexicographic comparison used for tie-breaking assignments whose
/// scores are equal, so every search layer agrees on one canonical
/// winner.
fn assignment_lt(a: &[usize], b: &[usize]) -> bool {
    a.iter().lt(b.iter())
}

/// Exhaustively enumerate all `nodes^jobs` assignments and return the
/// optimum (fewest violations, then smallest makespan; ties break to
/// the lexicographically smallest assignment). Cost is exponential —
/// the caller bounds the case size; the node-set memoization keeps
/// distinct simulations far below the assignment count.
pub fn exhaustive(ev: &mut Evaluator<'_>, max_slowdown: f64) -> (Vec<usize>, Score) {
    let jobs = ev.jobs.len();
    let nodes = ev.fleet.nodes.len();
    let mut current = vec![0usize; jobs];
    let mut best = current.clone();
    let mut best_score = ev.score(&current, max_slowdown);
    loop {
        // Odometer increment enumerates assignments in lexicographic
        // order, so the first optimum found is the canonical one.
        let mut i = jobs;
        loop {
            if i == 0 {
                return (best, best_score);
            }
            i -= 1;
            current[i] += 1;
            if current[i] < nodes {
                break;
            }
            current[i] = 0;
        }
        let score = ev.score(&current, max_slowdown);
        if score.order(&best_score) == std::cmp::Ordering::Less {
            best = current.clone();
            best_score = score;
        }
    }
}

/// Proposal count the anneal defaults to for a queue/fleet size.
pub fn default_iters(jobs: usize, nodes: usize) -> usize {
    (400 + 120 * jobs * nodes).min(12_000)
}

/// Refine `start` by a seeded annealing walk: single-job moves and
/// cross-node swaps, accepted when they don't worsen the score or with
/// Boltzmann probability on a linearly cooling temperature. Returns the
/// best assignment *evaluated* anywhere along the walk. Deterministic
/// in (start, seed, iters).
pub fn anneal(
    ev: &mut Evaluator<'_>,
    max_slowdown: f64,
    start: &[usize],
    seed: u64,
    iters: usize,
) -> (Vec<usize>, Score) {
    let jobs = ev.jobs.len();
    let nodes = ev.fleet.nodes.len();
    let mut rng = Xorshift::new(seed);
    let mut cur = start.to_vec();
    let mut cur_score = ev.score(&cur, max_slowdown);
    let mut best = cur.clone();
    let mut best_score = cur_score;
    if nodes < 2 || jobs == 0 {
        return (best, best_score);
    }
    // Violations dominate the scalarised energy by a margin no makespan
    // difference can offset.
    let base = best_score.makespan.max(1e-9);
    let energy = |s: &Score| s.makespan + s.violations as f64 * 100.0 * base;
    let t0 = 0.5 * base;
    for i in 0..iters {
        let temp = t0 * (1.0 - i as f64 / iters as f64) + 1e-12;
        let mut next = cur.clone();
        if rng.below(3) == 0 && jobs >= 2 {
            // Swap two jobs on different nodes (fall back to a move when
            // the draw lands on the same node).
            let a = rng.below(jobs);
            let b = rng.below(jobs);
            if next[a] != next[b] {
                next.swap(a, b);
            } else {
                next[a] = (next[a] + 1 + rng.below(nodes - 1)) % nodes;
            }
        } else {
            let j = rng.below(jobs);
            next[j] = (next[j] + 1 + rng.below(nodes - 1)) % nodes;
        }
        let next_score = ev.score(&next, max_slowdown);
        match next_score.order(&best_score) {
            std::cmp::Ordering::Less => {
                best = next.clone();
                best_score = next_score;
            }
            std::cmp::Ordering::Equal if assignment_lt(&next, &best) => {
                best = next.clone();
            }
            _ => {}
        }
        let delta = energy(&next_score) - energy(&cur_score);
        if delta <= 0.0 || rng.unit() < (-delta / temp).exp() {
            cur = next;
            cur_score = next_score;
        }
    }
    (best, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::job::JobSpec;
    use mc_model::{ModelRegistry, PhaseProfile};
    use mc_topology::platforms;

    fn fixture(n_jobs: usize) -> (Vec<JobSpec>, Fleet) {
        let reg = ModelRegistry::new(4);
        let p = platforms::henri();
        let fleet = Fleet::build(vec![p.clone(), p], &reg).unwrap();
        let jobs = (0..n_jobs)
            .map(|i| JobSpec {
                name: format!("j{i}"),
                profile: PhaseProfile {
                    compute_bytes: if i % 2 == 0 { 20e9 } else { 2e9 },
                    comm_bytes: if i % 2 == 0 { 1e9 } else { 10e9 },
                    max_cores: 8,
                },
            })
            .collect();
        (jobs, fleet)
    }

    #[test]
    fn exhaustive_beats_or_matches_any_fixed_assignment() {
        let (jobs, fleet) = fixture(4);
        let mut ev = Evaluator::new(&jobs, &fleet);
        let (best, score) = exhaustive(&mut ev, 1.5);
        assert_eq!(best.len(), 4);
        for fixed in [[0, 0, 0, 0], [0, 1, 0, 1], [1, 1, 0, 0]] {
            let s = ev.score(&fixed, 1.5);
            assert!(score.order(&s) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn anneal_is_deterministic_in_the_seed() {
        let (jobs, fleet) = fixture(5);
        let mut ev = Evaluator::new(&jobs, &fleet);
        let start = vec![0usize; 5];
        let a = anneal(&mut ev, 1.5, &start, 7, 500);
        let b = anneal(&mut ev, 1.5, &start, 7, 500);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.makespan.to_bits(), b.1.makespan.to_bits());
    }

    #[test]
    fn anneal_never_returns_worse_than_its_start() {
        let (jobs, fleet) = fixture(5);
        let mut ev = Evaluator::new(&jobs, &fleet);
        let start = vec![0usize; 5]; // everything piled on node 0
        let start_score = ev.score(&start, 1.5);
        let (_, refined) = anneal(&mut ev, 1.5, &start, 3, 800);
        assert!(refined.order(&start_score) != std::cmp::Ordering::Greater);
    }
}
