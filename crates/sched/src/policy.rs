//! Placement policies: one trait, three implementations.
//!
//! * [`FirstFit`] packs by free-core counting — the classic scheduler
//!   that believes cores are the only resource and lands comm-heavy
//!   jobs on top of each other;
//! * [`RoundRobin`] spreads by index — balanced counts, blind to what
//!   each job actually does to the memory bus;
//! * [`ContentionAware`] consults the calibrated model and the node
//!   simulation: jobs are ordered by model-predicted solo makespan
//!   (longest first), greedily placed where the predicted cluster
//!   makespan grows least while co-location keeps every affected job
//!   under the `max_slowdown` threshold, then the assignment is refined
//!   by the seeded annealing search.

use mc_model::{recommend, PhaseProfile};

use crate::plan::Evaluator;
use crate::search::{anneal, default_iters};

/// A placement policy: maps the queue onto fleet node indices.
pub trait Policy {
    /// Stable identifier (`first_fit`, `round_robin`,
    /// `contention_aware`).
    fn name(&self) -> &'static str;
    /// Assign every job to a node. `ev` carries the queue, fleet,
    /// calibrated models and the memoized node simulator.
    fn assign(&self, ev: &mut Evaluator<'_>) -> Vec<usize>;
}

/// The policy names [`policy_by_name`] accepts, in comparison order.
pub fn policy_names() -> &'static [&'static str] {
    &["first_fit", "round_robin", "contention_aware"]
}

/// Look a policy up by name; `max_slowdown` and `seed` parameterise the
/// contention-aware policy and are ignored by the naive ones.
pub fn policy_by_name(name: &str, max_slowdown: f64, seed: u64) -> Option<Box<dyn Policy>> {
    match name {
        "first_fit" => Some(Box::new(FirstFit)),
        "round_robin" => Some(Box::new(RoundRobin)),
        "contention_aware" => Some(Box::new(ContentionAware { max_slowdown, seed })),
        _ => None,
    }
}

/// Core-counting first fit, blind to memory contention.
pub struct FirstFit;

impl Policy for FirstFit {
    fn name(&self) -> &'static str {
        "first_fit"
    }

    fn assign(&self, ev: &mut Evaluator<'_>) -> Vec<usize> {
        let nodes = &ev.fleet.nodes;
        let mut free: Vec<usize> = nodes.iter().map(|n| n.cores).collect();
        ev.jobs
            .iter()
            .map(|job| {
                let req = |d: usize| {
                    let cap = job.profile.max_cores;
                    if cap == 0 {
                        nodes[d].cores
                    } else {
                        cap.min(nodes[d].cores)
                    }
                };
                match (0..nodes.len()).find(|&d| free[d] >= req(d)) {
                    Some(d) => {
                        free[d] -= req(d);
                        d
                    }
                    None => {
                        // Everything is full: overflow onto the node with
                        // the most remaining cores (ties to the lowest
                        // index), exactly what a core-counting scheduler
                        // does when forced.
                        let d = (0..nodes.len()).max_by_key(|&d| (free[d], nodes.len() - d));
                        let d = d.unwrap_or(0);
                        free[d] = 0;
                        d
                    }
                }
            })
            .collect()
    }
}

/// Index-striping round robin.
pub struct RoundRobin;

impl Policy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn assign(&self, ev: &mut Evaluator<'_>) -> Vec<usize> {
        let n = ev.fleet.nodes.len();
        (0..ev.jobs.len()).map(|j| j % n).collect()
    }
}

/// Lexicographic order on the greedy candidate key: (threshold
/// violated, resulting cluster makespan, worst slowdown, prior node
/// load, node index).
fn key_lt(a: &(bool, f64, f64, usize, usize), b: &(bool, f64, f64, usize, usize)) -> bool {
    a.0.cmp(&b.0)
        .then(a.1.total_cmp(&b.1))
        .then(a.2.total_cmp(&b.2))
        .then(a.3.cmp(&b.3))
        .then(a.4.cmp(&b.4))
        == std::cmp::Ordering::Less
}

/// Model-guided greedy packing under a slowdown threshold, refined by
/// seeded annealing.
pub struct ContentionAware {
    /// Largest slowdown a co-located job may be predicted to suffer.
    pub max_slowdown: f64,
    /// Seed for the annealing refinement.
    pub seed: u64,
}

impl ContentionAware {
    /// Model-predicted solo makespan of `job` on its best fleet node —
    /// the queue is ordered longest-first by this weight, the calibrated
    /// model's contribution to the packing order.
    fn model_weight(ev: &Evaluator<'_>, job: &PhaseProfile) -> f64 {
        let mut best = f64::INFINITY;
        for node in &ev.fleet.nodes {
            let capped = PhaseProfile {
                max_cores: if job.max_cores == 0 {
                    node.cores
                } else {
                    job.max_cores.min(node.cores)
                },
                ..*job
            };
            if let Some(r) = recommend(&node.model, &capped) {
                best = best.min(r.makespan);
            }
        }
        if best.is_finite() {
            best
        } else {
            (job.compute_bytes + job.comm_bytes) / 1e9
        }
    }

    fn greedy(&self, ev: &mut Evaluator<'_>) -> Vec<usize> {
        let jobs = ev.jobs.len();
        let nodes = ev.fleet.nodes.len();
        let weights: Vec<f64> = ev
            .jobs
            .iter()
            .map(|j| Self::model_weight(ev, &j.profile))
            .collect();
        let mut order: Vec<usize> = (0..jobs).collect();
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        let mut sets: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        let mut node_ms = vec![0.0f64; nodes];
        let mut assignment = vec![0usize; jobs];
        for &j in &order {
            // (threshold violated, resulting cluster makespan, worst
            // slowdown on the node, prior load, index) — smallest wins.
            let mut best: Option<(bool, f64, f64, usize, usize)> = None;
            for (d, existing) in sets.iter().enumerate() {
                let mut set = existing.clone();
                let pos = set.partition_point(|&x| x < j as u32);
                set.insert(pos, j as u32);
                let (slow, ms) = ev.slowdowns(d, &set);
                let worst = slow.iter().fold(1.0f64, |a, &b| a.max(b));
                let violated = set.len() > 1 && worst > self.max_slowdown * (1.0 + 1e-9);
                let cluster = node_ms
                    .iter()
                    .enumerate()
                    .map(|(e, &m)| if e == d { ms } else { m })
                    .fold(0.0f64, f64::max);
                let key = (violated, cluster, worst, existing.len(), d);
                if best.as_ref().is_none_or(|cur| key_lt(&key, cur)) {
                    best = Some(key);
                }
            }
            let d = best.map(|k| k.4).unwrap_or(0);
            let pos = sets[d].partition_point(|&x| x < j as u32);
            sets[d].insert(pos, j as u32);
            let (_, ms) = ev.slowdowns(d, &sets[d]);
            node_ms[d] = ms;
            assignment[j] = d;
        }
        assignment
    }
}

impl Policy for ContentionAware {
    fn name(&self) -> &'static str {
        "contention_aware"
    }

    fn assign(&self, ev: &mut Evaluator<'_>) -> Vec<usize> {
        let start = self.greedy(ev);
        let iters = default_iters(ev.jobs.len(), ev.fleet.nodes.len());
        let (best, _) = anneal(ev, self.max_slowdown, &start, self.seed, iters);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::job::JobSpec;
    use mc_model::ModelRegistry;
    use mc_topology::platforms;

    fn mixed_queue() -> Vec<JobSpec> {
        // Interleaved comm-heavy / compute-heavy jobs: the adversarial
        // order for round robin on an even fleet.
        (0..4)
            .map(|i| JobSpec {
                name: format!("j{i}"),
                profile: PhaseProfile {
                    compute_bytes: if i % 2 == 0 { 2e9 } else { 25e9 },
                    comm_bytes: if i % 2 == 0 { 12e9 } else { 1e9 },
                    max_cores: 8,
                },
            })
            .collect()
    }

    fn fleet(n: usize) -> Fleet {
        let reg = ModelRegistry::new(4);
        Fleet::build(vec![platforms::henri(); n], &reg).unwrap()
    }

    #[test]
    fn every_policy_assigns_every_job_to_a_real_node() {
        let jobs = mixed_queue();
        let fleet = fleet(2);
        let mut ev = Evaluator::new(&jobs, &fleet);
        for name in policy_names() {
            let p = policy_by_name(name, 1.5, 42).unwrap();
            assert_eq!(p.name(), *name);
            let a = p.assign(&mut ev);
            assert_eq!(a.len(), jobs.len());
            assert!(a.iter().all(|&d| d < 2), "{name}: {a:?}");
        }
        assert!(policy_by_name("nope", 1.5, 42).is_none());
    }

    #[test]
    fn contention_aware_beats_or_matches_the_naive_policies() {
        let jobs = mixed_queue();
        let fleet = fleet(2);
        let mut ev = Evaluator::new(&jobs, &fleet);
        let score_of = |ev: &mut Evaluator<'_>, name: &str| {
            let a = policy_by_name(name, 1.5, 42).unwrap().assign(ev);
            ev.score(&a, 1.5)
        };
        let aware = score_of(&mut ev, "contention_aware");
        let ff = score_of(&mut ev, "first_fit");
        let rr = score_of(&mut ev, "round_robin");
        assert!(
            aware.makespan <= ff.makespan + 1e-12,
            "aware {} vs first_fit {}",
            aware.makespan,
            ff.makespan
        );
        assert!(
            aware.makespan <= rr.makespan + 1e-12,
            "aware {} vs round_robin {}",
            aware.makespan,
            rr.makespan
        );
    }

    #[test]
    fn round_robin_stripes_and_first_fit_packs() {
        let jobs = mixed_queue();
        let fleet = fleet(2);
        let mut ev = Evaluator::new(&jobs, &fleet);
        assert_eq!(RoundRobin.assign(&mut ev), vec![0, 1, 0, 1]);
        // 8-core requests: two fit per 17-core henri node.
        assert_eq!(FirstFit.assign(&mut ev), vec![0, 0, 1, 1]);
    }
}
