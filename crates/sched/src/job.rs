//! The job queue: JSON-lines job descriptors distilled to
//! [`PhaseProfile`]s.
//!
//! One job per line, three spellings:
//!
//! ```text
//! {"name":"solver","compute_gb":40,"comm_gb":8,"max_cores":16}
//! {"name":"train","pattern":"allreduce","ranks":4,"iters":2,"compute_mb":256,"comm_mb":64}
//! {"name":"capture","trace":"app.trace.jsonl","max_cores":32}
//! ```
//!
//! Pattern and trace jobs run through the replay distiller
//! ([`mc_replay::phase_profile`]) — which counts **both** communication
//! directions, so send-heavy applications keep their comm volume — and
//! are scaled from per-rank averages to whole-application totals: a
//! scheduled job is the entire application co-located on one node.
//! `max_cores` is the job's requested core budget; `0` (or absent)
//! means "as many as the node offers". Co-location may shrink the grant
//! below the request (two-layer allocation); a request wider than every
//! fleet node is a [`SchedError::JobTooWide`] at validation time.

use mc_json::Json;
use mc_model::PhaseProfile;
use mc_replay::generate::{self, GenParams};
use mc_replay::search::native_cores;
use mc_replay::{phase_profile, Trace};

use crate::error::SchedError;

/// One job waiting to be placed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name (defaults to `job<index>`).
    pub name: String,
    /// Whole-application workload: total compute bytes, total comm
    /// bytes, requested core budget (`max_cores == 0` → uncapped).
    pub profile: PhaseProfile,
}

fn bad(line: usize, message: impl Into<String>) -> SchedError {
    SchedError::BadJob {
        line,
        message: message.into(),
    }
}

/// A finite, non-negative f64 field (default when absent).
fn f64_field(obj: &Json, key: &str, default: f64, line: usize) -> Result<f64, SchedError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| bad(line, format!("field '{key}' must be a number")))?;
            if !x.is_finite() || x < 0.0 {
                return Err(bad(
                    line,
                    format!("field '{key}' must be finite and non-negative, got {x}"),
                ));
            }
            Ok(x)
        }
    }
}

fn usize_field(obj: &Json, key: &str, default: usize, line: usize) -> Result<usize, SchedError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().map(|x| x as usize).ok_or_else(|| {
            bad(
                line,
                format!("field '{key}' must be a non-negative integer"),
            )
        }),
    }
}

/// Distill a trace into a whole-application job profile: per-rank
/// averages from [`phase_profile`] scaled back up by the rank count.
fn distill(trace: &Trace, max_cores: Option<usize>) -> PhaseProfile {
    let ranks = trace.ranks().max(1);
    let avg = phase_profile(trace, 0);
    PhaseProfile {
        compute_bytes: avg.compute_bytes * ranks as f64,
        comm_bytes: avg.comm_bytes * ranks as f64,
        max_cores: max_cores.unwrap_or(ranks * native_cores(trace)),
    }
}

/// Parse a JSON-lines job queue. Blank lines are skipped; anything else
/// must be a job object. Errors carry 1-based line numbers.
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, SchedError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(raw).map_err(|e| bad(line, format!("not valid JSON: {e}")))?;
        if !matches!(obj, Json::Obj(_)) {
            return Err(bad(line, "a job must be a JSON object"));
        }
        let name = match obj.get("name") {
            None => format!("job{}", jobs.len()),
            Some(v) => v
                .as_str()
                .ok_or_else(|| bad(line, "field 'name' must be a string"))?
                .to_string(),
        };
        let explicit_cap = match obj.get("max_cores") {
            None => None,
            Some(_) => Some(usize_field(&obj, "max_cores", 0, line)?),
        };
        let profile = if let Some(pattern) = obj.get("pattern") {
            let pattern = pattern
                .as_str()
                .ok_or_else(|| bad(line, "field 'pattern' must be a string"))?;
            let ranks = usize_field(&obj, "ranks", 4, line)?;
            if ranks < 2 {
                return Err(bad(line, "field 'ranks' must be at least 2"));
            }
            let iters = usize_field(&obj, "iters", 2, line)?;
            if iters == 0 {
                return Err(bad(line, "field 'iters' must be at least 1"));
            }
            let cores = usize_field(&obj, "cores", 4, line)?;
            if cores == 0 {
                return Err(bad(line, "field 'cores' must be at least 1"));
            }
            let params = GenParams {
                ranks,
                iters,
                cores,
                compute_bytes: (f64_field(&obj, "compute_mb", 256.0, line)? * (1 << 20) as f64)
                    as u64,
                comm_bytes: (f64_field(&obj, "comm_mb", 8.0, line)? * (1 << 20) as f64) as u64,
                ..GenParams::default()
            };
            let trace = generate::by_name(pattern, &params).ok_or_else(|| {
                bad(
                    line,
                    format!(
                        "unknown pattern '{pattern}' (expected one of: {})",
                        generate::names().join(", ")
                    ),
                )
            })?;
            distill(&trace, explicit_cap)
        } else if let Some(path) = obj.get("trace") {
            let path = path
                .as_str()
                .ok_or_else(|| bad(line, "field 'trace' must be a file path string"))?;
            let text = std::fs::read_to_string(path).map_err(|e| SchedError::Io {
                path: path.to_string(),
                message: e.to_string(),
            })?;
            let trace = Trace::from_json_lines(&text)
                .map_err(|e| bad(line, format!("trace '{path}': {e}")))?;
            distill(&trace, explicit_cap)
        } else {
            let compute_gb = f64_field(&obj, "compute_gb", 0.0, line)?;
            let comm_gb = f64_field(&obj, "comm_gb", 0.0, line)?;
            if compute_gb == 0.0 && comm_gb == 0.0 {
                return Err(bad(
                    line,
                    "a job needs compute_gb and/or comm_gb (or a 'pattern'/'trace' field)",
                ));
            }
            PhaseProfile {
                compute_bytes: compute_gb * 1e9,
                comm_bytes: comm_gb * 1e9,
                max_cores: explicit_cap.unwrap_or(0),
            }
        };
        jobs.push(JobSpec { name, profile });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_profiles() {
        let jobs = parse_jobs(
            "{\"name\":\"a\",\"compute_gb\":40,\"comm_gb\":8,\"max_cores\":16}\n\
             \n\
             {\"comm_gb\":2.5}\n",
        )
        .unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "a");
        assert_eq!(jobs[0].profile.compute_bytes, 40e9);
        assert_eq!(jobs[0].profile.max_cores, 16);
        assert_eq!(jobs[1].name, "job1");
        assert_eq!(jobs[1].profile.comm_bytes, 2.5e9);
        assert_eq!(jobs[1].profile.max_cores, 0); // uncapped
    }

    #[test]
    fn pattern_jobs_distill_whole_application_totals() {
        let jobs = parse_jobs(
            "{\"name\":\"t\",\"pattern\":\"allreduce\",\"ranks\":4,\"iters\":2,\
             \"cores\":2,\"compute_mb\":1,\"comm_mb\":1}",
        )
        .unwrap();
        let p = &jobs[0].profile;
        // 4 ranks × 2 iters × 1 MB compute each.
        assert_eq!(p.compute_bytes, 8.0 * (1 << 20) as f64);
        assert!(p.comm_bytes > 0.0);
        assert_eq!(p.max_cores, 8); // ranks × per-phase cores
    }

    #[test]
    fn send_heavy_pattern_jobs_keep_their_comm_volume() {
        // halo2d communicates via matched send/recv pairs; before the
        // send-accounting fix its distilled comm volume was halved.
        let jobs = parse_jobs(
            "{\"pattern\":\"halo2d\",\"ranks\":4,\"iters\":1,\"cores\":2,\
             \"compute_mb\":0,\"comm_mb\":10}",
        )
        .unwrap();
        let trace = generate::halo2d(&GenParams {
            ranks: 4,
            iters: 1,
            cores: 2,
            compute_bytes: 0,
            comm_bytes: 10 << 20,
            ..GenParams::default()
        });
        let recv: u64 = trace
            .events
            .iter()
            .flatten()
            .filter_map(|ev| match ev {
                mc_replay::EventKind::Recv { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(jobs[0].profile.comm_bytes, 2.0 * recv as f64);
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let e = parse_jobs("{\"compute_gb\":1}\nnot json\n").unwrap_err();
        assert!(matches!(e, SchedError::BadJob { line: 2, .. }), "{e}");
        let e = parse_jobs("{\"compute_gb\":-1}").unwrap_err();
        assert!(matches!(e, SchedError::BadJob { line: 1, .. }), "{e}");
        let e = parse_jobs("{\"name\":\"x\"}").unwrap_err();
        assert!(e.to_string().contains("compute_gb"), "{e}");
        let e = parse_jobs("{\"pattern\":\"nope\"}").unwrap_err();
        assert!(e.to_string().contains("unknown pattern"), "{e}");
        let e = parse_jobs("{\"trace\":\"/nonexistent/x.jsonl\"}").unwrap_err();
        assert!(matches!(e, SchedError::Io { .. }), "{e}");
        assert_eq!(e.category(), mc_model::ErrorCategory::Io);
    }
}
